//! Native partial snapshots, exercised directly on the cores.
//!
//! Two claims are checked here. **Cost**: a quiescent `core_scan_subset`
//! over k segments of an n-segment object performs O(k) register
//! operations, not O(n) — counted independently by the instrumentation
//! layer's `OpCounters`, with n = 64 and k = 2 so a full-collect
//! implementation could not sneak past the bounds. **Safety**: seeded
//! concurrent histories of subset scans racing updates on the bounded
//! and multi-writer native paths (plus the unbounded borrow path)
//! linearize against the projected sequential spec under the Wing & Gong
//! checker.

use std::sync::{Arc, Mutex};

use snapshot_core::{
    BoundedSnapshot, MultiWriterSnapshot, SnapshotCore, UnboundedSnapshot,
};
use snapshot_lin::{check_partial_history, PartialOp, WgOp, WgResult};
use snapshot_obs::Clock;
use snapshot_registers::{EpochBackend, Instrumented, OpCounters, ProcessId};

// ---------------------------------------------------------------------------
// O(touched) cost, counted by the instrumentation layer
// ---------------------------------------------------------------------------

#[test]
fn quiescent_subset_scans_cost_o_touched_not_o_n() {
    const N: usize = 64;
    let subset = [5usize, 60];
    let k = subset.len() as u64;
    let lane = ProcessId::new(0);

    // Unbounded: two collect passes over the subset — 2k reads, no
    // writes, no borrow.
    {
        let counters = Arc::new(OpCounters::new(N));
        let backend =
            Instrumented::new(EpochBackend::new()).with_counters(Arc::clone(&counters));
        let object = UnboundedSnapshot::with_backend(N, 0u64, &backend);
        let _ = object.core_update(ProcessId::new(5), 5, 55);
        let before = counters.snapshot(lane);
        let (values, stats) = object.core_scan_subset(lane, &subset).expect("native");
        let delta = counters.snapshot(lane) - before;
        assert_eq!(values, vec![55, 0]);
        assert!(!stats.borrowed);
        assert_eq!(stats.double_collects, 1);
        assert_eq!(delta.reads, 2 * k, "O(k) reads, not O({N})");
        assert_eq!(delta.writes, 0);
    }

    // Bounded: one round is a k-pair subset handshake (k reads + k
    // writes) plus two k-register collects — 3k reads, k writes.
    {
        let counters = Arc::new(OpCounters::new(N));
        let backend =
            Instrumented::new(EpochBackend::new()).with_counters(Arc::clone(&counters));
        let object = BoundedSnapshot::with_backend(N, 0u64, &backend);
        let _ = object.core_update(ProcessId::new(5), 5, 55);
        let before = counters.snapshot(lane);
        let (values, stats) = object.core_scan_subset(lane, &subset).expect("native");
        let delta = counters.snapshot(lane) - before;
        assert_eq!(values, vec![55, 0]);
        assert!(!stats.borrowed);
        assert_eq!(delta.reads, 3 * k, "O(k) reads, not O({N})");
        assert_eq!(delta.writes, k);
    }

    // Multi-writer: version probes (uncounted hints) certify around a
    // single k-word read pass.
    {
        let counters = Arc::new(OpCounters::new(2));
        let backend =
            Instrumented::new(EpochBackend::new()).with_counters(Arc::clone(&counters));
        let object = MultiWriterSnapshot::with_backend(2, N, 0u64, &backend);
        let _ = object.core_update(ProcessId::new(1), 5, 55);
        let before = counters.snapshot(lane);
        let (values, stats) = object.core_scan_subset(lane, &subset).expect("quiescent");
        let delta = counters.snapshot(lane) - before;
        assert_eq!(values, vec![55, 0]);
        assert!(delta.reads <= 2 * k, "O(k) reads, not O({N}): {}", delta.reads);
        assert_eq!(delta.writes, 0);
        assert_eq!(stats.writes, 0);
    }
}

// ---------------------------------------------------------------------------
// Seeded concurrent histories against the projected spec
// ---------------------------------------------------------------------------

/// Deterministic xorshift64 generator, one per (seed, lane).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Drives every lane with a seeded mix of updates and native subset
/// scans directly on `core`, recording a `PartialOp` history on one
/// shared logical clock, and returns the checker's verdict.
fn run_native_history<C: SnapshotCore<u64>>(core: C, seed: u64, ops_per_thread: usize) -> WgResult {
    let single_writer = core.single_writer();
    let words = core.segments();
    let threads = core.lanes();
    let clock = Clock::new();
    let ops: Mutex<Vec<WgOp<PartialOp<u64>>>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for lane in 0..threads {
            let core = &core;
            let clock = &clock;
            let ops = &ops;
            s.spawn(move || {
                let pid = ProcessId::new(lane);
                let mut rng =
                    XorShift::new(seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(lane as u64 + 1));
                for k in 0..ops_per_thread {
                    if rng.below(2) == 0 {
                        let word = if single_writer { lane } else { rng.below(words) };
                        let value = ((lane as u64) << 32) | (k as u64 + 1);
                        let inv = clock.tick();
                        let _ = core.core_update(pid, word, value);
                        let res = Some(clock.tick());
                        ops.lock().unwrap().push(WgOp {
                            pid,
                            inv,
                            res,
                            op: PartialOp::Update { word, value },
                        });
                    } else {
                        let a = rng.below(words);
                        let b = rng.below(words);
                        let mut subset = vec![a, b];
                        subset.sort_unstable();
                        subset.dedup();
                        let inv = clock.tick();
                        let view = match core.core_scan_subset(pid, &subset) {
                            Some((values, _)) => values,
                            // The bounded interference budget ran out (the
                            // multi-writer path under heavy contention):
                            // project a full scan, exactly as the service
                            // fallback does.
                            None => {
                                let (full, _) = core.core_scan(pid);
                                subset.iter().map(|&s| full[s]).collect()
                            }
                        };
                        let res = Some(clock.tick());
                        ops.lock().unwrap().push(WgOp {
                            pid,
                            inv,
                            res,
                            op: PartialOp::ScanSubset { segments: subset, view },
                        });
                    }
                }
            });
        }
    });

    let mut ops = ops.into_inner().unwrap();
    ops.sort_by_key(|op| op.inv);
    check_partial_history(words, 0u64, single_writer, &ops)
}

#[test]
fn seeded_subset_histories_linearize_on_the_unbounded_borrow_path() {
    for seed in [0xA11CEu64, 0x5EED_0001, 0x5EED_0002] {
        let verdict = run_native_history(UnboundedSnapshot::new(3, 0u64), seed, 10);
        assert!(
            matches!(verdict, WgResult::Linearizable { .. }),
            "seed {seed:#x}: unbounded native history rejected: {verdict:?}"
        );
    }
}

#[test]
fn seeded_subset_histories_linearize_on_the_bounded_native_path() {
    for seed in [0xB0Bu64, 0x5EED_0003, 0x5EED_0004] {
        let verdict = run_native_history(BoundedSnapshot::new(3, 0u64), seed, 10);
        assert!(
            matches!(verdict, WgResult::Linearizable { .. }),
            "seed {seed:#x}: bounded native history rejected: {verdict:?}"
        );
    }
}

#[test]
fn seeded_subset_histories_linearize_on_the_multiwriter_native_path() {
    for seed in [0xC0FFEEu64, 0x5EED_0005, 0x5EED_0006] {
        let verdict = run_native_history(MultiWriterSnapshot::new(3, 4, 0u64), seed, 10);
        assert!(
            matches!(verdict, WgResult::Linearizable { .. }),
            "seed {seed:#x}: multi-writer native history rejected: {verdict:?}"
        );
    }
}
