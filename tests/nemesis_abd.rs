//! Nemesis soak tests for the message-passing emulation: seeded
//! drop + duplicate + reorder + delay link faults, runtime partitions and
//! replica crash/restart schedules, driven against concurrent ABD readers
//! and writers on a 5-replica network.
//!
//! The paper's Section 6 resilience claim is *"as long as a majority of
//! the system remains connected"* — so these tests pin both sides of that
//! boundary:
//!
//! * every fault mix that preserves a reachable majority must leave the
//!   recorded history linearizable (`snapshot_lin::check_history`), with
//!   the faults *provably* injected (nonzero `messages_dropped`,
//!   `messages_duplicated`, `retries`);
//! * once a majority is partitioned or crashed away, operations must
//!   surface `AbdError::QuorumUnavailable` within the configured timeout
//!   — not a panic, not a hang — and recover after healing.
//!
//! Fault decisions (which message is dropped/duplicated/held back) are
//! drawn from per-link RNGs seeded by the test's fixed seed, so a failing
//! run reproduces; thread interleavings still vary, which is fine — the
//! assertions must hold for *every* interleaving.

use std::sync::Arc;
use std::time::{Duration, Instant};

use snapshot_abd::{
    AbdError, AbdPhase, AbdRegister, Dwell, FaultPlan, LinkFault, Nemesis, NemesisEvent, Network,
    NetworkConfig, RetryPolicy,
};
use snapshot_lin::{check_history, Recorder};
use snapshot_registers::ProcessId;

const WRITERS: usize = 2;
const READERS: usize = 2;
const OPS_PER_WRITER: u64 = 8;
const OPS_PER_READER: u64 = 8;

fn lossy_link() -> LinkFault {
    LinkFault::healthy()
        .with_drop(0.12)
        .with_duplicate(0.10)
        .with_reorder(0.15, 3)
        .with_reply_drop(0.06)
        .with_delay(Duration::from_micros(5), Duration::from_micros(150))
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        initial_backoff: Duration::from_micros(500),
        max_backoff: Duration::from_millis(8),
        multiplier: 2,
        jitter: 0.5,
    }
}

/// The schedule the issue asks for: heal → partition a minority → flap a
/// replica → heal, with an asymmetric cut thrown in. At every instant at
/// least 3 of the 5 replicas are reachable, so the workload stays live.
fn minority_nemesis() -> Nemesis {
    Nemesis::new()
        .phase(vec![NemesisEvent::Heal], Dwell::Millis(5))
        .phase(
            vec![NemesisEvent::Partition {
                replicas: vec![0, 1],
                symmetric: true,
            }],
            Dwell::Millis(20),
        )
        .phase(
            vec![NemesisEvent::Heal, NemesisEvent::Crash(2)],
            Dwell::Millis(20),
        )
        .phase(
            vec![
                NemesisEvent::Restart(2),
                NemesisEvent::Heal,
                NemesisEvent::Partition {
                    replicas: vec![3],
                    symmetric: false, // asymmetric: requests cut, replies pass
                },
            ],
            Dwell::Millis(15),
        )
        .phase(vec![NemesisEvent::Heal], Dwell::Millis(5))
}

fn run_nemesis_soak(seed: u64) {
    let network = Arc::new(Network::with_config(
        NetworkConfig::new(5)
            .with_jitter(seed)
            .with_faults(FaultPlan::seeded(seed).with_default(lossy_link()))
            .with_retry(fast_retry()),
    ));
    let reg = Arc::new(AbdRegister::new(Arc::clone(&network), 0u64));
    // One multi-writer register modeled as a 1-word snapshot object:
    // writes are updates to word 0, reads are scans returning the single
    // word — `check_history` then runs the Wing–Gong search against the
    // multi-writer snapshot spec, which for one word is exactly an atomic
    // multi-writer register.
    let recorder = Recorder::new(WRITERS + READERS, 1, 0u64);

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let reg = Arc::clone(&reg);
            let recorder = &recorder;
            s.spawn(move || {
                let pid = ProcessId::new(w);
                for k in 1..=OPS_PER_WRITER {
                    let value = (w as u64 + 1) * 1000 + k; // globally unique
                    let inv = recorder.begin();
                    match reg.try_write(pid, value) {
                        Ok(()) => recorder.end_update(pid, 0, value, inv),
                        // Indeterminate: may or may not have taken effect.
                        Err(e) => {
                            recorder.pending_update(pid, 0, value, inv);
                            panic!("writer {w} lost a live majority: {e}");
                        }
                    }
                }
            });
        }
        for r in 0..READERS {
            let reg = Arc::clone(&reg);
            let recorder = &recorder;
            s.spawn(move || {
                let pid = ProcessId::new(WRITERS + r);
                for _ in 0..OPS_PER_READER {
                    let inv = recorder.begin();
                    let value = reg
                        .try_read(pid)
                        .unwrap_or_else(|e| panic!("reader {r} lost a live majority: {e}"));
                    recorder.end_scan(pid, vec![value], inv);
                }
            });
        }
        let network = Arc::clone(&network);
        s.spawn(move || minority_nemesis().run(&network));
    });

    let history = recorder.finish();
    let result = check_history(&history);
    assert!(
        result.is_linearizable(),
        "seed {seed}: nemesis history not linearizable: {history:?}"
    );

    let stats = network.stats();
    assert!(stats.messages_dropped > 0, "seed {seed}: {stats:?}");
    assert!(stats.messages_duplicated > 0, "seed {seed}: {stats:?}");
    assert!(stats.messages_reordered > 0, "seed {seed}: {stats:?}");
    assert!(stats.retries > 0, "seed {seed}: {stats:?}");
    let latency = network.quorum_latency();
    assert!(latency.count() > 0, "seed {seed}: no quorum phases recorded");
    assert!(!network.poisoned(), "seed {seed}: a replica thread panicked");
}

#[test]
fn nemesis_soak_keeps_abd_linearizable_seed_7() {
    run_nemesis_soak(7);
}

#[test]
fn nemesis_soak_keeps_abd_linearizable_seed_21() {
    run_nemesis_soak(21);
}

#[test]
fn nemesis_soak_keeps_abd_linearizable_seed_1990() {
    run_nemesis_soak(1990);
}

/// Crossing the liveness boundary must produce a typed error within the
/// configured timeout — never a panic or a hang — and the client must
/// recover once the partition heals.
#[test]
fn majority_partition_yields_quorum_unavailable_not_panic() {
    let op_timeout = Duration::from_millis(200);
    let network = Arc::new(Network::with_config(
        NetworkConfig::new(5)
            .with_op_timeout(op_timeout)
            .with_retry(fast_retry()),
    ));
    let reg = AbdRegister::new(Arc::clone(&network), 0u64);
    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    reg.try_write(p0, 11).unwrap();

    network.partition(&[0, 1, 2]); // majority gone
    let started = Instant::now();
    let err = reg.try_read(p1).expect_err("no majority is reachable");
    let took = started.elapsed();
    match err {
        AbdError::QuorumUnavailable {
            phase,
            acks,
            needed,
            elapsed,
        } => {
            assert_eq!(phase, AbdPhase::Query);
            assert_eq!(needed, 3);
            assert!(acks <= 2, "only a minority could have answered: {acks}");
            assert!(elapsed >= op_timeout);
        }
        other => panic!("expected QuorumUnavailable, got {other:?}"),
    }
    assert!(
        took < Duration::from_secs(10),
        "timed out in {took:?}, far beyond the configured {op_timeout:?}"
    );
    assert!(reg.try_write(p0, 12).is_err(), "writes starve too");
    let stats = network.stats();
    assert!(stats.retries > 0, "starved phases retransmit: {stats:?}");

    network.heal();
    let v = reg.try_read(p1).expect("majority healed");
    assert!(v == 11 || v == 12, "indeterminate write may have landed: {v}");

    // Same boundary via crashes instead of partitions.
    network.crash(2);
    network.crash(3);
    network.crash(4);
    let err = reg.try_write(p0, 13).expect_err("3 of 5 replicas crashed");
    assert!(matches!(err, AbdError::QuorumUnavailable { .. }), "{err:?}");
    network.restart(2);
    network.restart(3);
    network.restart(4);
    reg.try_write(p0, 14).expect("restarted majority acks");
    assert_eq!(reg.try_read(p1).unwrap(), 14);
}

/// A poisoned network fails fast with a typed, *terminal* error: every
/// subsequent operation returns `AbdError::NetworkPoisoned` immediately —
/// no retransmission burn, no waiting out the op timeout. Poisoning
/// models an unrecoverable deployment fault (a replica thread died), so
/// unlike partitions there is no heal path.
#[test]
fn poisoned_network_fails_fast_without_retry_burn() {
    let op_timeout = Duration::from_secs(5); // deliberately long: fail-fast must not wait it out
    let network = Arc::new(Network::with_config(
        NetworkConfig::new(3)
            .with_op_timeout(op_timeout)
            .with_retry(fast_retry()),
    ));
    let reg = AbdRegister::new(Arc::clone(&network), 0u64);
    let p0 = ProcessId::new(0);
    reg.try_write(p0, 7).unwrap();
    let retries_before = network.stats().retries;

    network.poison();
    assert!(network.poisoned());
    for _ in 0..3 {
        let started = Instant::now();
        let read = reg.try_read(p0);
        let write = reg.try_write(p0, 8);
        let took = started.elapsed();
        assert!(matches!(read, Err(AbdError::NetworkPoisoned)), "{read:?}");
        assert!(matches!(write, Err(AbdError::NetworkPoisoned)), "{write:?}");
        assert!(
            took < op_timeout / 2,
            "poisoned ops must fail fast, not ride the {op_timeout:?} timeout (took {took:?})"
        );
    }
    assert_eq!(
        network.stats().retries,
        retries_before,
        "a poisoned fleet must not burn retransmissions"
    );
    // Healing fixes partitions, not poison: the mark is terminal.
    network.heal();
    assert!(matches!(reg.try_read(p0), Err(AbdError::NetworkPoisoned)));
}

/// An operation that *starts* against a partitioned majority completes
/// (rather than erroring) if the partition heals before the timeout:
/// retransmissions carry it across the healing boundary.
#[test]
fn retries_carry_an_operation_across_a_healing_partition() {
    let network = Arc::new(Network::with_config(
        NetworkConfig::new(5)
            .with_op_timeout(Duration::from_secs(30))
            .with_retry(fast_retry()),
    ));
    let reg = Arc::new(AbdRegister::new(Arc::clone(&network), 0u64));
    network.partition(&[0, 1, 2]);

    std::thread::scope(|s| {
        let reg = Arc::clone(&reg);
        let writer = s.spawn(move || reg.try_write(ProcessId::new(0), 5));
        std::thread::sleep(Duration::from_millis(30));
        network.heal();
        writer.join().unwrap().expect("write completes after heal");
    });
    assert_eq!(reg.try_read(ProcessId::new(1)).unwrap(), 5);
    assert!(
        network.stats().retries > 0,
        "the blocked phase must have retransmitted: {:?}",
        network.stats()
    );
}
