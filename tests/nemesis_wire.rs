//! Nemesis coverage for the real transport: the unmodified
//! `snapshot-service` stack over `AbdSnapshotCore::remote`, against
//! in-process `snapshotd` replica servers on real Unix-domain and TCP
//! sockets — with a replica killed and restarted mid-soak.
//!
//! This is the paper's Section 6 claim with the simulator taken away:
//! the faults here are a listener actually closing, connections actually
//! resetting, and the client's reconnect-with-backoff plus ABD
//! retransmission riding it out. The contract mirrors `nemesis_abd` /
//! `nemesis_service`:
//!
//! * with a majority of replica processes up (f = 1 of 3), every
//!   operation completes and the recorded history passes the Wing & Gong
//!   checker;
//! * with a majority down, operations surface typed errors
//!   (`ServiceError::Backend`/`Degraded`, rooted in
//!   `AbdError::QuorumUnavailable`) within their budgets — never a panic,
//!   never a hang;
//! * after restart (state intact, same sockets) the same client stack
//!   recovers without reconstruction.
//!
//! On top of the crash/restart rounds, two byte-level nemeses (seeded via
//! `SNAPSHOT_NEMESIS_SEED`, default 7):
//!
//! * a [`HostileProxy`] fronting one replica, corrupting / stalling /
//!   partial-writing / resetting / slow-lorising its stream phase by
//!   phase while the recorded history must still linearize;
//! * a torn-write storm over real `snapshotd` *processes*: each replica
//!   SIGKILLed in turn with its fsync'd state log mangled between
//!   restarts — corruption always CRC-detected in the recovery banner,
//!   never silently replayed.

use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use snapshot_abd::{AbdSnapshotCore, RemoteConfig, RemoteTransport, RetryPolicy};
use snapshot_lin::{check_history, Recorder};
use snapshot_obs::{Event, Registry, RingSink, Sink, Trace, TraceEvent};
use snapshot_registers::ProcessId;
use snapshot_service::{RetryConfig, ServiceConfig, ServiceError, SnapshotService};
use snapshot_wire::{
    drive_phases, Endpoint, HostileKnobs, HostilePhase, HostileProfile, HostileProxy,
    ReplicaServer, ReplicaStore, ServerConfig,
};

const LANES: usize = 3;
const REPLICAS: usize = 3;

/// Seed for the fault plans; override with `SNAPSHOT_NEMESIS_SEED` (the
/// CI matrix runs 7, 21 and 1990).
fn nemesis_seed() -> u64 {
    std::env::var("SNAPSHOT_NEMESIS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// xorshift64* — the same generator the hostile proxy uses, kept local
/// so the test's own choices are reproducible from the seed alone.
struct TestRng(u64);

impl TestRng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn uds_endpoint(tag: &str, i: usize) -> Endpoint {
    let mut path = std::env::temp_dir();
    path.push(format!("nemesis-wire-{}-{tag}-{i}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    Endpoint::Uds(path)
}

fn spawn_cluster(
    registry: &Arc<Registry>,
    make_endpoint: impl Fn(usize) -> Endpoint,
) -> (Vec<ReplicaServer>, Vec<Endpoint>) {
    let mut servers = Vec::new();
    let mut endpoints = Vec::new();
    for i in 0..REPLICAS {
        let server = ReplicaServer::spawn(
            ServerConfig::new(make_endpoint(i), i as u32).with_registry(Arc::clone(registry)),
        )
        .expect("spawning in-process snapshotd replica");
        endpoints.push(server.endpoint().clone());
        servers.push(server);
    }
    (servers, endpoints)
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        initial_backoff: Duration::from_micros(500),
        max_backoff: Duration::from_millis(8),
        multiplier: 2,
        jitter: 0.5,
    }
}

fn remote_config(endpoints: Vec<Endpoint>) -> RemoteConfig {
    RemoteConfig::new(endpoints)
        .with_op_timeout(Duration::from_millis(500))
        .with_retry(fast_retry())
        .with_redial(Duration::from_millis(5), Duration::from_millis(50))
}

fn service_over(
    transport: Arc<RemoteTransport>,
) -> SnapshotService<u64, AbdSnapshotCore<u64>> {
    SnapshotService::with_config(
        AbdSnapshotCore::remote(transport, LANES, 0u64),
        ServiceConfig {
            retry: RetryConfig {
                max_attempts: 4,
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(20),
                multiplier: 2,
                deadline: Duration::from_secs(30),
            },
            ..ServiceConfig::default()
        },
    )
}

/// One round of concurrent service traffic: every lane updates then
/// scans `iters` times; successes are recorded for the checker, failures
/// collected. Returns the errors seen.
fn soak_round(
    service: &SnapshotService<u64, AbdSnapshotCore<u64>>,
    recorder: &Recorder<u64>,
    iters: u64,
    epoch: u64,
) -> Vec<ServiceError> {
    let errors: Mutex<Vec<ServiceError>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for lane in 0..LANES {
            let errors = &errors;
            s.spawn(move || {
                let pid = ProcessId::new(lane);
                let mut client = service.client(lane);
                for k in 1..=iters {
                    let value = (epoch << 48) | ((lane as u64) << 32) | k;
                    let inv = recorder.begin();
                    match client.update(lane, value) {
                        Ok(()) => recorder.end_update(pid, lane, value, inv),
                        Err(e @ ServiceError::Backend { .. }) => {
                            // Indeterminate: the store may have reached a
                            // quorum whose acks we never saw.
                            recorder.pending_update(pid, lane, value, inv);
                            errors.lock().unwrap().push(e);
                        }
                        Err(e @ ServiceError::Degraded { .. }) => errors.lock().unwrap().push(e),
                        Err(other) => panic!("lane {lane}: unexpected error {other:?}"),
                    }
                    let inv = recorder.begin();
                    match client.scan() {
                        Ok(view) => recorder.end_scan(pid, view.to_vec(), inv),
                        Err(e @ (ServiceError::Backend { .. } | ServiceError::Degraded { .. })) => {
                            errors.lock().unwrap().push(e)
                        }
                        Err(other) => panic!("lane {lane}: unexpected error {other:?}"),
                    }
                }
            });
        }
    });
    errors.into_inner().unwrap()
}

/// The tentpole acceptance scenario: a 3-replica UDS cluster serving the
/// unmodified service stack, with replica 2 killed mid-soak and
/// restarted (state intact, same socket) — every success linearizable,
/// f = 1 survived without a single error required.
#[test]
fn uds_cluster_survives_replica_kill_and_restart_linearizably() {
    let server_registry = Arc::new(Registry::new());
    let (mut servers, endpoints) =
        spawn_cluster(&server_registry, |i| uds_endpoint("soak", i));
    let transport = Arc::new(RemoteTransport::connect(remote_config(endpoints)));
    assert!(
        transport.wait_connected(REPLICAS, Duration::from_secs(10)),
        "all replicas must handshake"
    );
    let service = service_over(Arc::clone(&transport));
    // 3 lanes × 2 ops × 7 iters × 3 phases = 126 ops ≤ the checker's 128.
    let recorder = Recorder::new(LANES, LANES, 0u64);

    // Phase 1: full fleet.
    let errors = soak_round(&service, &recorder, 7, 1);
    assert!(
        errors.is_empty(),
        "full fleet over uds must not error: {errors:?}"
    );

    // Phase 2: kill replica 2 (listener closed, connections reset) and
    // soak through it — 2 of 3 is still a majority, so every operation
    // must still complete.
    let killed = servers.remove(2);
    let store = killed.store();
    let endpoint = killed.endpoint().clone();
    drop(killed);
    let errors = soak_round(&service, &recorder, 7, 2);
    assert!(
        errors.is_empty(),
        "f=1 must be survived without surfacing errors: {errors:?}"
    );

    // Phase 3: restart it on the same socket with its state intact; the
    // transport's managers redial and the fleet heals to 3/3.
    servers.push(
        ReplicaServer::spawn_with_store(
            ServerConfig::new(endpoint, 2).with_registry(Arc::clone(&server_registry)),
            store,
        )
        .expect("restarting replica 2"),
    );
    assert!(
        transport.wait_connected(REPLICAS, Duration::from_secs(10)),
        "restarted replica must be redialed"
    );
    let errors = soak_round(&service, &recorder, 7, 3);
    assert!(errors.is_empty(), "healed fleet must not error: {errors:?}");

    // Every recorded operation — spanning the kill and the restart —
    // forms one linearizable snapshot history.
    let history = recorder.finish();
    let result = check_history(&history);
    assert!(
        result.is_linearizable(),
        "wire soak history rejected ({result:?}): {history:?}"
    );

    // The faults were real: the killed replica's connection dropped and
    // was redialed (visible in the client's abd.wire.* counters).
    let registry = Arc::clone(transport.registry());
    assert!(
        registry.counter("abd.wire.disconnects").get() >= 1,
        "the kill must register as a disconnect"
    );
    assert!(
        registry.counter("abd.wire.connects").get() >= (REPLICAS + 1) as u64,
        "the restart must register as a reconnect"
    );
    assert_eq!(registry.gauge("abd.transport.uds").get(), 1);
    assert!(transport.stats().messages_sent > 0);
}

/// Killing a majority crosses the liveness boundary: requests fail with
/// typed service errors within their budgets, and the *same* service
/// object recovers once the replicas are back.
#[test]
fn uds_majority_kill_yields_typed_errors_then_recovers() {
    let server_registry = Arc::new(Registry::new());
    let (mut servers, endpoints) =
        spawn_cluster(&server_registry, |i| uds_endpoint("blackout", i));
    let transport = Arc::new(RemoteTransport::connect(remote_config(endpoints)));
    assert!(transport.wait_connected(REPLICAS, Duration::from_secs(10)));
    let service = service_over(Arc::clone(&transport));

    let mut client = service.client(0);
    client.update(0, 41).expect("update with full fleet");

    // Kill replicas 1 and 2: only a minority remains.
    let dead: Vec<_> = (0..2)
        .map(|_| {
            let s = servers.pop().expect("two replicas to kill");
            let (store, endpoint, index) =
                (s.store(), s.endpoint().clone(), s.replica_index());
            drop(s);
            (store, endpoint, index)
        })
        .collect();

    let mut typed_failures = 0;
    for _ in 0..2 {
        match client.scan() {
            Ok(view) => panic!("a minority fleet served a scan: {view:?}"),
            Err(ServiceError::Backend { .. } | ServiceError::Degraded { .. }) => {
                typed_failures += 1
            }
            Err(other) => panic!("unexpected error shape: {other:?}"),
        }
    }
    assert_eq!(typed_failures, 2, "every blackout request fails typed");

    // Restart both (same sockets, state intact): the service heals.
    for (store, endpoint, index) in dead {
        servers.push(
            ReplicaServer::spawn_with_store(
                ServerConfig::new(endpoint, index).with_registry(Arc::clone(&server_registry)),
                store,
            )
            .expect("restarting a killed replica"),
        );
    }
    assert!(transport.wait_connected(REPLICAS, Duration::from_secs(10)));
    let mut view = None;
    for _ in 0..50 {
        match client.scan() {
            Ok(v) => {
                view = Some(v);
                break;
            }
            Err(ServiceError::Degraded { retry_after, .. }) => std::thread::sleep(retry_after),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let view = view.expect("service must recover after the fleet returns");
    assert_eq!(view[0], 41, "the pre-blackout update survived the kill");
}

/// The same stack over TCP loopback: ephemeral ports, the `tcp`
/// transport label, and scan/update round-trips through the service.
#[test]
fn tcp_loopback_cluster_serves_the_service_stack() {
    let server_registry = Arc::new(Registry::new());
    let (servers, endpoints) = spawn_cluster(&server_registry, |_| {
        Endpoint::parse("tcp:127.0.0.1:0").expect("loopback endpoint")
    });
    let transport = Arc::new(RemoteTransport::connect(remote_config(endpoints)));
    assert!(transport.wait_connected(REPLICAS, Duration::from_secs(10)));
    assert_eq!(snapshot_abd::Transport::kind(&*transport), "tcp");
    let service = service_over(Arc::clone(&transport));
    let recorder = Recorder::new(LANES, LANES, 0u64);

    let errors = soak_round(&service, &recorder, 8, 1);
    assert!(errors.is_empty(), "loopback tcp must not error: {errors:?}");

    let history = recorder.finish();
    let result = check_history(&history);
    assert!(
        result.is_linearizable(),
        "tcp history rejected ({result:?}): {history:?}"
    );

    // Transport label + unified metric names: the same `abd.*` keys the
    // simulated network reports, under the `tcp` marker gauge.
    let registry = Arc::clone(transport.registry());
    assert_eq!(registry.gauge("abd.transport.tcp").get(), 1);
    let rendered = registry.render();
    assert!(rendered.contains("abd.messages_sent"), "{rendered}");
    assert!(rendered.contains("abd.quorum_latency_us"), "{rendered}");
    // And the replica side accounted for the traffic it served.
    assert!(server_registry.counter("snapshotd.frames_in").get() > 0);
    assert!(server_registry.counter("snapshotd.stores_applied").get() > 0);
    drop(service);
    drop(transport);
    drop(servers);
}

// ---------------------------------------------------------------------
// Byte-level hostility: the HostileProxy nemesis.
// ---------------------------------------------------------------------

/// A sink that forwards only connection-lifecycle events to the inner
/// ring, so high-rate per-op traffic cannot evict the dial/drop record
/// the hostile test asserts on.
struct TransportLifecycleOnly(Arc<RingSink>);

impl Sink for TransportLifecycleOnly {
    fn emit(&self, event: TraceEvent) {
        if matches!(
            event.event,
            Event::TransportDial { .. }
                | Event::TransportConnected { .. }
                | Event::TransportDropped { .. }
        ) {
            self.0.emit(event);
        }
    }
}

/// Replica 0's traffic routed through a [`HostileProxy`] driven through
/// the canned fault phases — corruption, stalls + partial writes,
/// mid-frame resets, slow-loris — while replicas 1 and 2 stay clean. A
/// majority is always healthy, so every recorded success must still
/// linearize; the damaged connection costs only itself, absorbed by the
/// client's typed-error reconnect paths (visible as `TransportDropped` /
/// `TransportConnected` trace events and `abd.wire.*` counters).
#[test]
fn hostile_proxy_byte_faults_keep_successes_linearizable() {
    let seed = nemesis_seed();
    let server_registry = Arc::new(Registry::new());
    let (servers, endpoints) = spawn_cluster(&server_registry, |i| uds_endpoint("hostile", i));
    let knobs = HostileKnobs::new();
    let proxy = HostileProxy::spawn(
        uds_endpoint("hostile-proxy", 0),
        endpoints[0].clone(),
        Arc::clone(&knobs),
        seed,
    )
    .expect("spawning hostile proxy");
    let mut client_endpoints = endpoints.clone();
    client_endpoints[0] = proxy.endpoint().clone();

    // The scan loop below emits tens of thousands of per-op events; a
    // plain ring would evict the handful of connection-lifecycle events
    // this test is actually about, so the sink keeps only those.
    let ring = Arc::new(RingSink::new(REPLICAS, 16_384));
    let lifecycle = Arc::new(TransportLifecycleOnly(Arc::clone(&ring)));
    let transport = Arc::new(RemoteTransport::connect(
        remote_config(client_endpoints).with_trace(Trace::new(lifecycle)),
    ));
    assert!(
        transport.wait_connected(REPLICAS, Duration::from_secs(10)),
        "all replicas must handshake through the (still clean) proxy"
    );
    let service = service_over(Arc::clone(&transport));
    let recorder = Recorder::new(LANES, LANES, 0u64);

    // Clean warm-up: 3 lanes × 2 ops × 3 iters = 18 ops.
    let errors = soak_round(&service, &recorder, 3, 1);
    assert!(errors.is_empty(), "clean warm-up must not error: {errors:?}");

    // Fault phases over the proxy while two kinds of traffic flow: a
    // recorded soak (successes checked below) and an unrecorded scan
    // loop that keeps bytes on the wire for every phase's full dwell.
    // Reset runs first, against a fresh connection under full traffic:
    // once a fault kills the proxied connection, a damaged re-handshake
    // can park the redial loop for its full 2 s timeout, so later phases
    // only see trickles — which is itself part of the hostility.
    let phases = [
        HostilePhase::new(HostileProfile::Reset, Duration::from_millis(150)),
        HostilePhase::new(HostileProfile::Corrupt, Duration::from_millis(150)),
        HostilePhase::new(HostileProfile::Stall, Duration::from_millis(150)),
        HostilePhase::new(HostileProfile::SlowLoris, Duration::from_millis(150)),
    ];
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let knobs = &knobs;
        let done = &done;
        let phases = &phases;
        s.spawn(move || {
            drive_phases(knobs, phases);
            done.store(true, Ordering::Release);
        });
        // Lane claims are exclusive per service, so the filler gets its
        // own service instance over the same transport.
        let filler = service_over(Arc::clone(&transport));
        s.spawn(move || {
            let mut client = filler.client(0);
            while !done.load(Ordering::Acquire) {
                let _ = client.scan();
            }
        });
        // Recorded traffic through the storm: quorum 2/3 stays clean, so
        // ops complete; typed failures are tolerated (updates recorded
        // as pending), anything untyped panics inside soak_round.
        let _storm_errors = soak_round(&service, &recorder, 7, 2);
    });

    // The faults were real and the reconnect machinery absorbed them.
    assert!(
        knobs.total_faults() > 0,
        "the proxy must have injected at least one fault"
    );
    assert!(
        knobs.resets() > 0,
        "the reset phase must have cut at least one connection"
    );
    let registry = Arc::clone(transport.registry());
    assert!(
        registry.counter("abd.wire.disconnects").get() >= 1,
        "a proxy reset must surface as a transport disconnect"
    );

    // drive_phases ends on Clean: the fleet heals to 3/3 and a final
    // recorded round is error-free. 18 + 42 + 18 = 78 ops ≤ 128.
    assert!(
        transport.wait_connected(REPLICAS, Duration::from_secs(10)),
        "the proxied replica must be redialed once the knobs go clean"
    );
    let errors = soak_round(&service, &recorder, 3, 3);
    assert!(errors.is_empty(), "healed fleet must not error: {errors:?}");

    let history = recorder.finish();
    let result = check_history(&history);
    assert!(
        result.is_linearizable(),
        "hostile-wire history rejected ({result:?}): {history:?}"
    );

    // The drop and the redial were observable on the trace plane too.
    let events = ring.drain();
    let transport_events: Vec<_> = events
        .iter()
        .filter(|e| {
            matches!(
                e.event,
                Event::TransportDial { .. }
                    | Event::TransportConnected { .. }
                    | Event::TransportDropped { .. }
            )
        })
        .collect();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, Event::TransportDropped { replica: 0, .. })),
        "expected a TransportDropped event for the proxied replica; saw {transport_events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, Event::TransportConnected { replica: 0, .. })),
        "expected a TransportConnected event for the proxied replica; saw {transport_events:?}"
    );

    drop(service);
    drop(transport);
    proxy.shutdown();
    drop(servers);
}

// ---------------------------------------------------------------------
// The torn-write storm: real processes, mangled fsync'd logs.
// ---------------------------------------------------------------------

fn snapshotd_bin() -> Option<String> {
    option_env!("CARGO_BIN_EXE_snapshotd")
        .map(str::to_owned)
        .or_else(|| std::env::var("SNAPSHOTD_BIN").ok())
}

/// Spawns one durable `snapshotd` process (`--fsync always --recover
/// truncate`) and blocks until its "listening on" banner; returns the
/// child plus the `recovered:` banner line the storm asserts against.
fn spawn_durable_replica(
    bin: &str,
    endpoint: &Endpoint,
    index: usize,
    state: &Path,
) -> (Child, String) {
    let mut child = Command::new(bin)
        .args([
            "--listen",
            &endpoint.to_string(),
            "--replica",
            &index.to_string(),
            "--state",
            &state.display().to_string(),
            "--fsync",
            "always",
            "--recover",
            "truncate",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawning durable snapshotd process");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let mut recovered = String::new();
    loop {
        let line = lines
            .next()
            .expect("snapshotd exited before its banner")
            .expect("reading snapshotd banner");
        if line.contains("recovered:") {
            recovered = line;
        } else if line.contains("listening on") {
            break;
        }
    }
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, recovered)
}

/// Extracts `key=value` from a recovery banner line.
fn banner_field(banner: &str, key: &str) -> String {
    banner
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).map(str::to_owned))
        .unwrap_or_default()
}

/// What the storm did to a victim's state log between restarts.
#[derive(Debug)]
enum Mangle {
    /// Flipped a byte inside the last (complete, fsync'd) record — a
    /// CRC-detectable mid-record corruption.
    Flip,
    /// Sheared a few bytes off the end — a torn final write.
    Shear,
}

/// Mangles only the log's *tail* (the victim's own latest record): with
/// fsync=always and a full fleet during every soak, that record is also
/// durable on both other replicas, so recovery-by-truncation never
/// destroys a value's last surviving copy and the checked history stays
/// honest.
fn mangle_log_tail(path: &Path, flip: bool) -> Option<Mangle> {
    let len = std::fs::metadata(path).ok()?.len();
    if len <= 16 {
        return None; // header only: nothing worth mangling
    }
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .ok()?;
    if flip {
        // len-5 always lands inside the final record's body (records are
        // ≥ 37 bytes), so the replayed CRC cannot match.
        file.seek(SeekFrom::Start(len - 5)).ok()?;
        let mut byte = [0u8; 1];
        file.read_exact(&mut byte).ok()?;
        file.seek(SeekFrom::Start(len - 5)).ok()?;
        file.write_all(&[byte[0] ^ 0x40]).ok()?;
        file.sync_all().ok()?;
        Some(Mangle::Flip)
    } else {
        // A 3-byte shear can never land on a record boundary, so the
        // final record is torn and recovery must count the drop.
        file.set_len(len - 3).ok()?;
        file.sync_all().ok()?;
        Some(Mangle::Shear)
    }
}

/// The crash-recovery acceptance scenario: three `snapshotd` *processes*
/// with fsync=always state logs over UDS, each SIGKILLed in turn with
/// its log tail mangled — a flipped byte (CRC corruption) or a sheared
/// tail (torn write) — before restarting under `--recover=truncate`.
/// Every mangle is detected and reported in the recovery banner (never
/// silently replayed), the fleet heals after every restart, and all
/// recorded successes across the storm form one linearizable history.
#[test]
fn snapshotd_torn_write_storm_recovers_with_crc_detection() {
    let Some(bin) = snapshotd_bin() else {
        eprintln!("skipping: no snapshotd binary (set SNAPSHOTD_BIN or run under cargo)");
        return;
    };
    let mut rng = TestRng(nemesis_seed() | 1);

    let endpoints: Vec<Endpoint> = (0..REPLICAS).map(|i| uds_endpoint("storm", i)).collect();
    let logs: Vec<PathBuf> = (0..REPLICAS)
        .map(|i| {
            std::env::temp_dir().join(format!("nemesis-storm-{}-{i}.log", std::process::id()))
        })
        .collect();
    for log in &logs {
        let _ = std::fs::remove_file(log);
        let _ = std::fs::remove_file(ReplicaStore::checkpoint_path_for(log));
    }
    let mut children: Vec<Child> = (0..REPLICAS)
        .map(|i| spawn_durable_replica(&bin, &endpoints[i], i, &logs[i]).0)
        .collect();

    let transport = Arc::new(RemoteTransport::connect(remote_config(endpoints.clone())));
    assert!(
        transport.wait_connected(REPLICAS, Duration::from_secs(10)),
        "handshake with all durable replica processes"
    );
    let service = service_over(Arc::clone(&transport));
    // 4 soaks × (3 lanes × 2 ops × 3 iters) = 72 ops ≤ the checker's 128.
    let recorder = Recorder::new(LANES, LANES, 0u64);

    let errors = soak_round(&service, &recorder, 3, 1);
    assert!(errors.is_empty(), "durable full fleet must not error: {errors:?}");

    let mut mangled_rounds = 0u32;
    for victim in 0..REPLICAS {
        children[victim].kill().expect("SIGKILL the victim replica");
        children[victim].wait().expect("reaping the victim replica");

        let mangle = mangle_log_tail(&logs[victim], rng.next() & 1 == 0);
        let (child, recovered) =
            spawn_durable_replica(&bin, &endpoints[victim], victim, &logs[victim]);
        children[victim] = child;
        match mangle {
            Some(Mangle::Flip) => {
                mangled_rounds += 1;
                let corrupt = banner_field(&recovered, "corrupt=");
                assert!(
                    corrupt.parse::<u64>().is_ok(),
                    "flipped byte must be CRC-detected (corrupt=<offset>), got: {recovered}"
                );
            }
            Some(Mangle::Shear) => {
                mangled_rounds += 1;
                let torn: u64 = banner_field(&recovered, "truncated_bytes=")
                    .parse()
                    .unwrap_or_else(|_| panic!("unparseable recovery banner: {recovered}"));
                assert!(torn > 0, "sheared tail must be counted, got: {recovered}");
            }
            None => {}
        }

        assert!(
            transport.wait_connected(REPLICAS, Duration::from_secs(10)),
            "restarted replica {victim} must be redialed"
        );
        let errors = soak_round(&service, &recorder, 3, victim as u64 + 2);
        assert!(errors.is_empty(), "healed fleet must not error: {errors:?}");
    }
    assert!(
        mangled_rounds >= 2,
        "the storm must actually have mangled state logs"
    );
    assert!(
        transport.registry().counter("abd.wire.disconnects").get() >= REPLICAS as u64,
        "every SIGKILL must surface as a connection drop"
    );

    let history = recorder.finish();
    let result = check_history(&history);
    assert!(
        result.is_linearizable(),
        "torn-write storm history rejected ({result:?})"
    );

    for child in &mut children {
        let _ = child.kill();
        let _ = child.wait();
    }
    for log in &logs {
        let _ = std::fs::remove_file(log);
        let _ = std::fs::remove_file(ReplicaStore::checkpoint_path_for(log));
    }
}
