//! Nemesis coverage for the real transport: the unmodified
//! `snapshot-service` stack over `AbdSnapshotCore::remote`, against
//! in-process `snapshotd` replica servers on real Unix-domain and TCP
//! sockets — with a replica killed and restarted mid-soak.
//!
//! This is the paper's Section 6 claim with the simulator taken away:
//! the faults here are a listener actually closing, connections actually
//! resetting, and the client's reconnect-with-backoff plus ABD
//! retransmission riding it out. The contract mirrors `nemesis_abd` /
//! `nemesis_service`:
//!
//! * with a majority of replica processes up (f = 1 of 3), every
//!   operation completes and the recorded history passes the Wing & Gong
//!   checker;
//! * with a majority down, operations surface typed errors
//!   (`ServiceError::Backend`/`Degraded`, rooted in
//!   `AbdError::QuorumUnavailable`) within their budgets — never a panic,
//!   never a hang;
//! * after restart (state intact, same sockets) the same client stack
//!   recovers without reconstruction.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use snapshot_abd::{AbdSnapshotCore, RemoteConfig, RemoteTransport, RetryPolicy};
use snapshot_lin::{check_history, Recorder};
use snapshot_obs::Registry;
use snapshot_registers::ProcessId;
use snapshot_service::{RetryConfig, ServiceConfig, ServiceError, SnapshotService};
use snapshot_wire::{Endpoint, ReplicaServer, ServerConfig};

const LANES: usize = 3;
const REPLICAS: usize = 3;

fn uds_endpoint(tag: &str, i: usize) -> Endpoint {
    let mut path = std::env::temp_dir();
    path.push(format!("nemesis-wire-{}-{tag}-{i}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    Endpoint::Uds(path)
}

fn spawn_cluster(
    registry: &Arc<Registry>,
    make_endpoint: impl Fn(usize) -> Endpoint,
) -> (Vec<ReplicaServer>, Vec<Endpoint>) {
    let mut servers = Vec::new();
    let mut endpoints = Vec::new();
    for i in 0..REPLICAS {
        let server = ReplicaServer::spawn(
            ServerConfig::new(make_endpoint(i), i as u32).with_registry(Arc::clone(registry)),
        )
        .expect("spawning in-process snapshotd replica");
        endpoints.push(server.endpoint().clone());
        servers.push(server);
    }
    (servers, endpoints)
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        initial_backoff: Duration::from_micros(500),
        max_backoff: Duration::from_millis(8),
        multiplier: 2,
        jitter: 0.5,
    }
}

fn remote_config(endpoints: Vec<Endpoint>) -> RemoteConfig {
    RemoteConfig::new(endpoints)
        .with_op_timeout(Duration::from_millis(500))
        .with_retry(fast_retry())
        .with_redial(Duration::from_millis(5), Duration::from_millis(50))
}

fn service_over(
    transport: Arc<RemoteTransport>,
) -> SnapshotService<u64, AbdSnapshotCore<u64>> {
    SnapshotService::with_config(
        AbdSnapshotCore::remote(transport, LANES, 0u64),
        ServiceConfig {
            retry: RetryConfig {
                max_attempts: 4,
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(20),
                multiplier: 2,
                deadline: Duration::from_secs(30),
            },
            ..ServiceConfig::default()
        },
    )
}

/// One round of concurrent service traffic: every lane updates then
/// scans `iters` times; successes are recorded for the checker, failures
/// collected. Returns the errors seen.
fn soak_round(
    service: &SnapshotService<u64, AbdSnapshotCore<u64>>,
    recorder: &Recorder<u64>,
    iters: u64,
    epoch: u64,
) -> Vec<ServiceError> {
    let errors: Mutex<Vec<ServiceError>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for lane in 0..LANES {
            let errors = &errors;
            s.spawn(move || {
                let pid = ProcessId::new(lane);
                let mut client = service.client(lane);
                for k in 1..=iters {
                    let value = (epoch << 48) | ((lane as u64) << 32) | k;
                    let inv = recorder.begin();
                    match client.update(lane, value) {
                        Ok(()) => recorder.end_update(pid, lane, value, inv),
                        Err(e @ ServiceError::Backend { .. }) => {
                            // Indeterminate: the store may have reached a
                            // quorum whose acks we never saw.
                            recorder.pending_update(pid, lane, value, inv);
                            errors.lock().unwrap().push(e);
                        }
                        Err(e @ ServiceError::Degraded { .. }) => errors.lock().unwrap().push(e),
                        Err(other) => panic!("lane {lane}: unexpected error {other:?}"),
                    }
                    let inv = recorder.begin();
                    match client.scan() {
                        Ok(view) => recorder.end_scan(pid, view.to_vec(), inv),
                        Err(e @ (ServiceError::Backend { .. } | ServiceError::Degraded { .. })) => {
                            errors.lock().unwrap().push(e)
                        }
                        Err(other) => panic!("lane {lane}: unexpected error {other:?}"),
                    }
                }
            });
        }
    });
    errors.into_inner().unwrap()
}

/// The tentpole acceptance scenario: a 3-replica UDS cluster serving the
/// unmodified service stack, with replica 2 killed mid-soak and
/// restarted (state intact, same socket) — every success linearizable,
/// f = 1 survived without a single error required.
#[test]
fn uds_cluster_survives_replica_kill_and_restart_linearizably() {
    let server_registry = Arc::new(Registry::new());
    let (mut servers, endpoints) =
        spawn_cluster(&server_registry, |i| uds_endpoint("soak", i));
    let transport = Arc::new(RemoteTransport::connect(remote_config(endpoints)));
    assert!(
        transport.wait_connected(REPLICAS, Duration::from_secs(10)),
        "all replicas must handshake"
    );
    let service = service_over(Arc::clone(&transport));
    // 3 lanes × 2 ops × 7 iters × 3 phases = 126 ops ≤ the checker's 128.
    let recorder = Recorder::new(LANES, LANES, 0u64);

    // Phase 1: full fleet.
    let errors = soak_round(&service, &recorder, 7, 1);
    assert!(
        errors.is_empty(),
        "full fleet over uds must not error: {errors:?}"
    );

    // Phase 2: kill replica 2 (listener closed, connections reset) and
    // soak through it — 2 of 3 is still a majority, so every operation
    // must still complete.
    let killed = servers.remove(2);
    let store = killed.store();
    let endpoint = killed.endpoint().clone();
    drop(killed);
    let errors = soak_round(&service, &recorder, 7, 2);
    assert!(
        errors.is_empty(),
        "f=1 must be survived without surfacing errors: {errors:?}"
    );

    // Phase 3: restart it on the same socket with its state intact; the
    // transport's managers redial and the fleet heals to 3/3.
    servers.push(
        ReplicaServer::spawn_with_store(
            ServerConfig::new(endpoint, 2).with_registry(Arc::clone(&server_registry)),
            store,
        )
        .expect("restarting replica 2"),
    );
    assert!(
        transport.wait_connected(REPLICAS, Duration::from_secs(10)),
        "restarted replica must be redialed"
    );
    let errors = soak_round(&service, &recorder, 7, 3);
    assert!(errors.is_empty(), "healed fleet must not error: {errors:?}");

    // Every recorded operation — spanning the kill and the restart —
    // forms one linearizable snapshot history.
    let history = recorder.finish();
    let result = check_history(&history);
    assert!(
        result.is_linearizable(),
        "wire soak history rejected ({result:?}): {history:?}"
    );

    // The faults were real: the killed replica's connection dropped and
    // was redialed (visible in the client's abd.wire.* counters).
    let registry = Arc::clone(transport.registry());
    assert!(
        registry.counter("abd.wire.disconnects").get() >= 1,
        "the kill must register as a disconnect"
    );
    assert!(
        registry.counter("abd.wire.connects").get() >= (REPLICAS + 1) as u64,
        "the restart must register as a reconnect"
    );
    assert_eq!(registry.gauge("abd.transport.uds").get(), 1);
    assert!(transport.stats().messages_sent > 0);
}

/// Killing a majority crosses the liveness boundary: requests fail with
/// typed service errors within their budgets, and the *same* service
/// object recovers once the replicas are back.
#[test]
fn uds_majority_kill_yields_typed_errors_then_recovers() {
    let server_registry = Arc::new(Registry::new());
    let (mut servers, endpoints) =
        spawn_cluster(&server_registry, |i| uds_endpoint("blackout", i));
    let transport = Arc::new(RemoteTransport::connect(remote_config(endpoints)));
    assert!(transport.wait_connected(REPLICAS, Duration::from_secs(10)));
    let service = service_over(Arc::clone(&transport));

    let mut client = service.client(0);
    client.update(0, 41).expect("update with full fleet");

    // Kill replicas 1 and 2: only a minority remains.
    let dead: Vec<_> = (0..2)
        .map(|_| {
            let s = servers.pop().expect("two replicas to kill");
            let (store, endpoint, index) =
                (s.store(), s.endpoint().clone(), s.replica_index());
            drop(s);
            (store, endpoint, index)
        })
        .collect();

    let mut typed_failures = 0;
    for _ in 0..2 {
        match client.scan() {
            Ok(view) => panic!("a minority fleet served a scan: {view:?}"),
            Err(ServiceError::Backend { .. } | ServiceError::Degraded { .. }) => {
                typed_failures += 1
            }
            Err(other) => panic!("unexpected error shape: {other:?}"),
        }
    }
    assert_eq!(typed_failures, 2, "every blackout request fails typed");

    // Restart both (same sockets, state intact): the service heals.
    for (store, endpoint, index) in dead {
        servers.push(
            ReplicaServer::spawn_with_store(
                ServerConfig::new(endpoint, index).with_registry(Arc::clone(&server_registry)),
                store,
            )
            .expect("restarting a killed replica"),
        );
    }
    assert!(transport.wait_connected(REPLICAS, Duration::from_secs(10)));
    let mut view = None;
    for _ in 0..50 {
        match client.scan() {
            Ok(v) => {
                view = Some(v);
                break;
            }
            Err(ServiceError::Degraded { retry_after, .. }) => std::thread::sleep(retry_after),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let view = view.expect("service must recover after the fleet returns");
    assert_eq!(view[0], 41, "the pre-blackout update survived the kill");
}

/// The same stack over TCP loopback: ephemeral ports, the `tcp`
/// transport label, and scan/update round-trips through the service.
#[test]
fn tcp_loopback_cluster_serves_the_service_stack() {
    let server_registry = Arc::new(Registry::new());
    let (servers, endpoints) = spawn_cluster(&server_registry, |_| {
        Endpoint::parse("tcp:127.0.0.1:0").expect("loopback endpoint")
    });
    let transport = Arc::new(RemoteTransport::connect(remote_config(endpoints)));
    assert!(transport.wait_connected(REPLICAS, Duration::from_secs(10)));
    assert_eq!(snapshot_abd::Transport::kind(&*transport), "tcp");
    let service = service_over(Arc::clone(&transport));
    let recorder = Recorder::new(LANES, LANES, 0u64);

    let errors = soak_round(&service, &recorder, 8, 1);
    assert!(errors.is_empty(), "loopback tcp must not error: {errors:?}");

    let history = recorder.finish();
    let result = check_history(&history);
    assert!(
        result.is_linearizable(),
        "tcp history rejected ({result:?}): {history:?}"
    );

    // Transport label + unified metric names: the same `abd.*` keys the
    // simulated network reports, under the `tcp` marker gauge.
    let registry = Arc::clone(transport.registry());
    assert_eq!(registry.gauge("abd.transport.tcp").get(), 1);
    let rendered = registry.render();
    assert!(rendered.contains("abd.messages_sent"), "{rendered}");
    assert!(rendered.contains("abd.quorum_latency_us"), "{rendered}");
    // And the replica side accounted for the traffic it served.
    assert!(server_registry.counter("snapshotd.frames_in").get() > 0);
    assert!(server_registry.counter("snapshotd.stores_applied").get() > 0);
    drop(service);
    drop(transport);
    drop(servers);
}
