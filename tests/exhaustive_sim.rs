//! Exhaustive model checking of the snapshot constructions on small
//! configurations: every schedule of the register-operation interleaving
//! is executed under the deterministic simulator, and every resulting
//! history must be linearizable (Wing–Gong) — with the witness
//! cross-validated against the paper's SWS specification automaton.
//!
//! This is the machine-checked analogue of Theorems 3.5 / 4.5 / 5.4 on
//! bounded instances.

use snapshot_bench::harness::{run_mw_sim, run_sw_sim, MwStep, SwStep};
use snapshot_core::{BoundedSnapshot, MultiWriterSnapshot, UnboundedSnapshot};
use snapshot_lin::{check_history, witness_accepted_by_sws, WgResult};
use snapshot_sim::{ExploreLimits, Explorer, SimConfig};

/// Explores schedules of a single-writer workload, checking every history;
/// returns (runs executed, whether the tree was fully covered).
macro_rules! exhaust_sw {
    ($n:expr, $scripts:expr, $max_runs:expr, $make:expr) => {{
        let n: usize = $n;
        let scripts: Vec<Vec<SwStep>> = $scripts;
        let mut runs_checked = 0u64;
        let outcome = Explorer::new(ExploreLimits {
            max_runs: $max_runs,
            max_depth: 4096,
        })
        .explore::<String>(|policy| {
            let (history, _report) = run_sw_sim(n, &scripts, policy, SimConfig::default(), $make)
                .map_err(|e| e.to_string())?;
            match check_history(&history) {
                WgResult::Linearizable { witness } => {
                    if !witness_accepted_by_sws(&history, &witness) {
                        return Err(format!("witness rejected by SWS automaton for {history:?}"));
                    }
                }
                other => return Err(format!("history not linearizable: {other:?} {history:?}")),
            }
            runs_checked += 1;
            Ok(())
        })
        .unwrap_or_else(|e| panic!("exploration failed: {e}"));
        (runs_checked, outcome.is_complete())
    }};
}

#[test]
fn unbounded_two_processes_update_vs_scan_complete() {
    let (runs, complete) = exhaust_sw!(
        2,
        vec![vec![SwStep::Update], vec![SwStep::Scan]],
        200_000,
        |b| UnboundedSnapshot::with_backend(2, 0u64, b)
    );
    assert!(complete, "schedule tree not fully covered");
    assert!(runs > 10, "suspiciously few schedules: {runs}");
}

#[test]
fn unbounded_two_processes_update_scan_each() {
    let (runs, complete) = exhaust_sw!(
        2,
        vec![
            vec![SwStep::Update, SwStep::Scan],
            vec![SwStep::Scan, SwStep::Update]
        ],
        30_000,
        |b| UnboundedSnapshot::with_backend(2, 0u64, b)
    );
    assert!(runs > 1_000, "suspiciously few schedules: {runs}");
    // Full coverage is asserted only if the budget sufficed; either way
    // every executed schedule was linearizable.
    let _ = complete;
}

#[test]
fn unbounded_double_update_vs_scanner() {
    // Two updates against one scan: exercises the borrowed-view path
    // (the scanner can observe the updater moving twice).
    let (runs, _complete) = exhaust_sw!(
        2,
        vec![
            vec![SwStep::Update, SwStep::Update],
            vec![SwStep::Scan, SwStep::Scan]
        ],
        30_000,
        |b| UnboundedSnapshot::with_backend(2, 0u64, b)
    );
    assert!(runs > 1_000);
}

#[test]
fn bounded_two_processes_update_vs_scan_complete() {
    // The bounded algorithm's handshake traffic (plus the handle-claim
    // restore read) makes even this tiny config's full tree large; cover
    // a deterministic 100k prefix.
    let (runs, complete) = exhaust_sw!(
        2,
        vec![vec![SwStep::Update], vec![SwStep::Scan]],
        100_000,
        |b| BoundedSnapshot::with_backend(2, 0u64, b)
    );
    assert!(runs == 100_000 || complete, "covered only {runs} runs");
}

#[test]
fn bounded_update_vs_update() {
    let (runs, complete) = exhaust_sw!(
        2,
        vec![vec![SwStep::Update], vec![SwStep::Update]],
        60_000,
        |b| BoundedSnapshot::with_backend(2, 0u64, b)
    );
    // Two concurrent bounded updates have ~700k interleavings; cover a
    // deterministic 60k prefix of the tree.
    assert!(runs == 60_000 || complete, "covered only {runs} runs");
}

#[test]
fn bounded_three_processes_budgeted() {
    let (runs, _) = exhaust_sw!(
        3,
        vec![
            vec![SwStep::Update],
            vec![SwStep::Update],
            vec![SwStep::Scan]
        ],
        12_000,
        |b| BoundedSnapshot::with_backend(3, 0u64, b)
    );
    assert!(
        runs > 5_000 || runs == 12_000,
        "explored only {runs} schedules"
    );
}

#[test]
fn multiwriter_two_processes_shared_word() {
    // Both processes write the SAME word — the case the single-writer
    // algorithms cannot express at all.
    let n = 2;
    let m = 1;
    let scripts: Vec<Vec<MwStep>> = vec![vec![MwStep::Update(0)], vec![MwStep::Scan]];
    let mut runs_checked = 0u64;
    Explorer::new(ExploreLimits {
        max_runs: 30_000,
        max_depth: 4096,
    })
    .explore::<String>(|policy| {
        let (history, _) = run_mw_sim(n, m, &scripts, policy, SimConfig::default(), |b| {
            MultiWriterSnapshot::with_backend(n, m, 0u64, b)
        })
        .map_err(|e| e.to_string())?;
        if !check_history(&history).is_linearizable() {
            return Err(format!("not linearizable: {history:?}"));
        }
        runs_checked += 1;
        Ok(())
    })
    .unwrap_or_else(|e| panic!("exploration failed: {e}"));
    assert!(runs_checked > 10);
}

#[test]
fn multiwriter_contending_writers_budgeted() {
    let n = 2;
    let m = 1;
    let scripts: Vec<Vec<MwStep>> = vec![
        vec![MwStep::Update(0)],
        vec![MwStep::Update(0), MwStep::Scan],
    ];
    let mut runs_checked = 0u64;
    Explorer::new(ExploreLimits {
        max_runs: 10_000,
        max_depth: 4096,
    })
    .explore::<String>(|policy| {
        let (history, _) = run_mw_sim(n, m, &scripts, policy, SimConfig::default(), |b| {
            MultiWriterSnapshot::with_backend(n, m, 0u64, b)
        })
        .map_err(|e| e.to_string())?;
        if !check_history(&history).is_linearizable() {
            return Err(format!("not linearizable: {history:?}"));
        }
        runs_checked += 1;
        Ok(())
    })
    .unwrap_or_else(|e| panic!("exploration failed: {e}"));
    assert!(runs_checked > 4_000);
}

#[test]
fn random_schedules_large_single_writer_configs() {
    // Randomized (seeded) deep runs on configurations too big to exhaust:
    // n = 3..4, several rounds each, hundreds of schedules.
    use snapshot_bench::harness::sw_mixed_scripts;
    use snapshot_sim::RandomPolicy;

    for n in [3usize, 4] {
        let scripts = sw_mixed_scripts(n, 2);
        for seed in 0..150u64 {
            let (history, _) = run_sw_sim(
                n,
                &scripts,
                &mut RandomPolicy::seeded(seed),
                SimConfig::default(),
                |b| BoundedSnapshot::with_backend(n, 0u64, b),
            )
            .unwrap();
            match check_history(&history) {
                WgResult::Linearizable { witness } => {
                    assert!(witness_accepted_by_sws(&history, &witness), "seed {seed}");
                }
                other => panic!("n={n} seed={seed}: {other:?}"),
            }
        }
    }
}
