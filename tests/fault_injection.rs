//! Crash-fault injection: wait-freedom means every operation of a *live*
//! process terminates no matter how many other processes crash
//! mid-operation. The simulator's `CrashPolicy` freezes processes after a
//! chosen number of steps — including in the middle of an update's
//! embedded scan or between its handshake and its register write, the
//! nastiest spots — and the survivors' histories must stay linearizable
//! (the crashed updates recorded as pending: they may or may not have
//! taken effect).

use snapshot_bench::harness::{run_mw_sim, run_sw_sim, MwStep, SwStep};
use snapshot_core::{BoundedSnapshot, MultiWriterSnapshot, UnboundedSnapshot};
use snapshot_lin::check_history;
use snapshot_registers::ProcessId;
use snapshot_sim::{CrashPolicy, RoundRobinPolicy, SimConfig};

/// Crash P0 after `crash_at` steps while P1 scans; the scan must complete
/// and the history must check out.
fn crash_updater_sw<F, O>(n: usize, crash_at: u64, build: F)
where
    O: snapshot_core::SwSnapshot<u64>,
    F: FnOnce(&snapshot_bench::harness::GatedBackend) -> O,
{
    let mut scripts: Vec<Vec<SwStep>> = vec![vec![SwStep::Update; 5]; n - 1];
    scripts.push(vec![SwStep::Scan, SwStep::Scan]);
    let mut policy =
        CrashPolicy::new(RoundRobinPolicy::new()).crash_after(ProcessId::new(0), crash_at);
    let (history, report) = run_sw_sim(
        n,
        &scripts,
        &mut policy,
        SimConfig {
            max_steps: Some(1_000_000),
            stop_when_done: vec![ProcessId::new(n - 1)],
            record_trace: false,
        },
        build,
    )
    .expect("simulation failed");
    assert!(
        report.completed(ProcessId::new(n - 1)),
        "scanner must complete despite the crash (crash_at={crash_at}, halt={:?})",
        report.halt
    );
    assert!(
        check_history(&history).is_linearizable(),
        "crash_at={crash_at}: {history:?}"
    );
}

#[test]
fn unbounded_survives_updater_crash_at_every_early_step() {
    // Sweep the crash point across the whole window of the first update:
    // mid-embedded-scan, just before the write, just after.
    for crash_at in 0..14 {
        crash_updater_sw(2, crash_at, |b| UnboundedSnapshot::with_backend(2, 0u64, b));
    }
}

#[test]
fn bounded_survives_updater_crash_at_every_early_step() {
    for crash_at in 0..20 {
        crash_updater_sw(2, crash_at, |b| BoundedSnapshot::with_backend(2, 0u64, b));
    }
}

#[test]
fn bounded_survives_multiple_crashed_updaters() {
    let n = 4;
    let mut scripts: Vec<Vec<SwStep>> = vec![vec![SwStep::Update; 5]; n - 1];
    scripts.push(vec![SwStep::Scan, SwStep::Scan, SwStep::Scan]);
    let mut policy = CrashPolicy::new(RoundRobinPolicy::new())
        .crash_after(ProcessId::new(0), 3)
        .crash_after(ProcessId::new(1), 17)
        .crash_after(ProcessId::new(2), 40);
    let (history, report) = run_sw_sim(
        n,
        &scripts,
        &mut policy,
        SimConfig {
            max_steps: Some(1_000_000),
            stop_when_done: vec![ProcessId::new(n - 1)],
            record_trace: false,
        },
        |b| BoundedSnapshot::with_backend(n, 0u64, b),
    )
    .unwrap();
    assert!(report.completed(ProcessId::new(n - 1)));
    assert!(check_history(&history).is_linearizable(), "{history:?}");
}

#[test]
fn multiwriter_survives_crash_between_handshake_and_value_write() {
    // The multi-writer update publishes handshake bits, view and value in
    // three separate writes; crash in each gap.
    let n = 3;
    let m = 2;
    for crash_at in [2u64, 6, 8, 15, 25, 40] {
        let scripts: Vec<Vec<MwStep>> = vec![
            vec![MwStep::Update(0); 3],
            vec![MwStep::Update(1); 3],
            vec![MwStep::Scan, MwStep::Scan],
        ];
        let mut policy =
            CrashPolicy::new(RoundRobinPolicy::new()).crash_after(ProcessId::new(0), crash_at);
        let (history, report) = run_mw_sim(
            n,
            m,
            &scripts,
            &mut policy,
            SimConfig {
                max_steps: Some(1_000_000),
                stop_when_done: vec![ProcessId::new(2)],
                record_trace: false,
            },
            |b| MultiWriterSnapshot::with_backend(n, m, 0u64, b),
        )
        .unwrap();
        assert!(
            report.completed(ProcessId::new(2)),
            "crash_at={crash_at}: scanner did not complete"
        );
        assert!(
            check_history(&history).is_linearizable(),
            "crash_at={crash_at}: {history:?}"
        );
    }
}

/// Crash/restart *storm* on the message-passing side: the ABD emulation's
/// analogue of the simulator crash sweeps above. Two replicas of a
/// 5-replica network flap up and down at random (seeded) instants while
/// writers and readers run — at most 2 replicas are ever down, so a
/// majority stays reachable and, by the paper's Section 6 argument, every
/// operation must complete and the register must stay atomic. Composite
/// `(k, 3k)` values make torn or stale-mix reads detectable.
#[test]
fn abd_register_survives_replica_crash_restart_storm() {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    use snapshot_abd::{AbdRegister, Network, NetworkConfig};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    for seed in [3u64, 11, 42] {
        let network = Arc::new(Network::with_config(
            NetworkConfig::new(5).with_jitter(seed),
        ));
        let reg = Arc::new(AbdRegister::new(Arc::clone(&network), (0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));

        std::thread::scope(|s| {
            {
                // Storm driver: flap replicas 0 and 1 only, so at most a
                // minority (2 of 5) is ever crashed.
                let network = Arc::clone(&network);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut down = [false; 2];
                    while !stop.load(Ordering::Relaxed) {
                        let i = rng.random_range(0..2usize);
                        if down[i] {
                            network.restart(i);
                        } else {
                            network.crash(i);
                        }
                        down[i] = !down[i];
                        std::thread::sleep(Duration::from_micros(rng.random_range(200..2_000)));
                    }
                    for (i, d) in down.into_iter().enumerate() {
                        if d {
                            network.restart(i);
                        }
                    }
                });
            }
            for w in 0..2u64 {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    let pid = ProcessId::new(w as usize);
                    for i in 0..60 {
                        let k = w * 1_000 + i;
                        reg.try_write(pid, (k, k * 3))
                            .unwrap_or_else(|e| panic!("seed {seed}: write under storm: {e}"));
                    }
                });
            }
            let mut readers = Vec::new();
            for r in 0..2u64 {
                let reg = Arc::clone(&reg);
                readers.push(s.spawn(move || {
                    let pid = ProcessId::new(2 + r as usize);
                    for _ in 0..120 {
                        let (a, b) = reg
                            .try_read(pid)
                            .unwrap_or_else(|e| panic!("seed {seed}: read under storm: {e}"));
                        assert_eq!(b, a * 3, "seed {seed}: torn/mixed read ({a}, {b})");
                    }
                }));
            }
            // Stop the storm only after the workload is done; readers and
            // writers never observe a settled network.
            for h in readers {
                h.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });

        assert!(!network.poisoned(), "seed {seed}: replica thread panicked");
        // Crashed replicas swallow requests without acking, so the storm
        // itself must have forced some drops to be counted.
        let stats = network.stats();
        assert!(
            stats.messages_dropped > 0,
            "seed {seed}: storm never caught an op in flight: {stats:?}"
        );
    }
}

#[test]
fn all_but_one_crashed_scanner_still_terminates() {
    // Extreme case: every other process crashes almost immediately; the
    // lone survivor's scan terminates (wait-freedom needs no cooperation).
    let n = 4;
    let mut scripts: Vec<Vec<SwStep>> = vec![vec![SwStep::Update; 10]; n - 1];
    scripts.push(vec![SwStep::Scan]);
    let mut policy = CrashPolicy::new(RoundRobinPolicy::new())
        .crash_after(ProcessId::new(0), 1)
        .crash_after(ProcessId::new(1), 2)
        .crash_after(ProcessId::new(2), 1);
    let (history, report) = run_sw_sim(
        n,
        &scripts,
        &mut policy,
        SimConfig {
            max_steps: Some(1_000_000),
            stop_when_done: vec![ProcessId::new(n - 1)],
            record_trace: false,
        },
        |b| UnboundedSnapshot::with_backend(n, 0u64, b),
    )
    .unwrap();
    assert!(report.completed(ProcessId::new(n - 1)));
    assert!(check_history(&history).is_linearizable());
}
