//! Real-concurrency stress: the algorithms run on OS threads (no
//! simulator), and every recorded history passes the fast interval-based
//! linearizability checks. Small histories additionally go through the
//! complete Wing–Gong checker.

use snapshot_bench::harness::{
    mw_disjoint_scripts, run_mw_threaded, run_sw_threaded, sw_mixed_scripts, sw_random_scripts,
};
use snapshot_core::{BoundedSnapshot, LockSnapshot, MultiWriterSnapshot, UnboundedSnapshot};
use snapshot_lin::{check_history, check_intervals};

#[test]
fn unbounded_stress_intervals() {
    for n in [2usize, 4, 8] {
        let object = UnboundedSnapshot::new(n, 0u64);
        let history = run_sw_threaded(&object, &sw_mixed_scripts(n, 150));
        assert_eq!(
            check_intervals(&history),
            Ok(()),
            "n={n}: {} ops",
            history.len()
        );
    }
}

#[test]
fn bounded_stress_intervals() {
    for n in [2usize, 4, 8] {
        let object = BoundedSnapshot::new(n, 0u64);
        let history = run_sw_threaded(&object, &sw_mixed_scripts(n, 150));
        assert_eq!(
            check_intervals(&history),
            Ok(()),
            "n={n}: {} ops",
            history.len()
        );
    }
}

#[test]
fn multiwriter_stress_intervals_disjoint_words() {
    for n in [2usize, 4] {
        let m = n + 1;
        let object = MultiWriterSnapshot::new(n, m, 0u64);
        let history = run_mw_threaded(&object, &mw_disjoint_scripts(n, m, 100));
        assert_eq!(
            check_intervals(&history),
            Ok(()),
            "n={n} m={m}: {} ops",
            history.len()
        );
    }
}

#[test]
fn scan_heavy_and_update_heavy_mixes() {
    for prob in [0.1f64, 0.9] {
        let n = 4;
        let object = BoundedSnapshot::new(n, 0u64);
        let history = run_sw_threaded(&object, &sw_random_scripts(n, 200, prob, 99));
        assert_eq!(check_intervals(&history), Ok(()), "update_prob={prob}");
    }
}

#[test]
fn small_threaded_histories_pass_wing_gong() {
    // Repeated tiny threaded runs: complete checking with the exhaustive
    // checker, not just the interval conditions.
    for round in 0..30u64 {
        let n = 3;
        let object = UnboundedSnapshot::new(n, 0u64);
        let history = run_sw_threaded(&object, &sw_random_scripts(n, 3, 0.5, round));
        assert!(
            check_history(&history).is_linearizable(),
            "round {round}: {history:?}"
        );
    }
}

#[test]
fn lock_baseline_is_also_linearizable() {
    // The baseline should of course pass the same checks (it trades
    // wait-freedom, not safety).
    let n = 4;
    let object = LockSnapshot::new(n, 0u64);
    let history = run_sw_threaded(&object, &sw_mixed_scripts(n, 150));
    assert_eq!(check_intervals(&history), Ok(()));
}

#[test]
fn many_short_adversarial_thread_races() {
    // Lots of tiny objects and very short races maximize the chance of
    // hitting rare interleavings at thread startup.
    for round in 0..200u64 {
        let n = 2;
        let object = BoundedSnapshot::new(n, 0u64);
        let history = run_sw_threaded(&object, &sw_random_scripts(n, 2, 0.5, round));
        assert!(
            check_history(&history).is_linearizable(),
            "round {round}: {history:?}"
        );
    }
}
