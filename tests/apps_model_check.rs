//! Model checking and stress for the snapshot applications: bakery mutual
//! exclusion, checkpointable counters, concurrent timestamps, and the
//! snapshot-based multi-writer register.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use snapshot_apps::{BakeryMutex, CheckpointableCounter, SnapshotRegister, TimestampSystem};
use snapshot_lin::{check_linearizable, RegisterOp, RegisterSpec, WgOp};
use snapshot_registers::{EpochBackend, Instrumented, ProcessId};
use snapshot_sim::{RandomPolicy, Sim, SimConfig};

#[test]
fn bakery_mutual_exclusion_model_checked_over_random_schedules() {
    // Two processes each enter the critical section twice; 150 seeded
    // random schedules; a violation counter guarded by the scheduler's
    // serialization. The CS counter is a plain atomic (not a gated
    // register), so it observes true simultaneity.
    for seed in 0..150u64 {
        let n = 2;
        let sim = Sim::new(n);
        let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
        let mutex = BakeryMutex::with_backend(n, &backend);
        let in_cs = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);

        let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for i in 0..n {
            let mutex = &mutex;
            let in_cs = &in_cs;
            let violations = &violations;
            bodies.push(Box::new(move || {
                let mut h = mutex.handle(ProcessId::new(i));
                for _ in 0..2 {
                    h.lock();
                    if in_cs.fetch_add(1, Ordering::SeqCst) != 0 {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                    in_cs.fetch_sub(1, Ordering::SeqCst);
                    h.unlock();
                }
            }));
        }
        let report = sim
            .run(
                &mut RandomPolicy::seeded(seed),
                SimConfig {
                    max_steps: Some(500_000),
                    ..SimConfig::default()
                },
                bodies,
            )
            .unwrap();
        assert_eq!(
            violations.load(Ordering::SeqCst),
            0,
            "seed {seed}: mutual exclusion violated"
        );
        // Random schedules are fair enough in practice for the waiters to
        // get through; livelock would show as a step-limit halt.
        assert_eq!(
            report.halt,
            snapshot_sim::HaltReason::AllDone,
            "seed {seed}: bakery livelocked"
        );
    }
}

#[test]
fn counter_checkpoints_are_monotone_under_adversarial_schedules() {
    for seed in 0..40u64 {
        let n = 3;
        let sim = Sim::new(n);
        let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
        let counter = CheckpointableCounter::with_backend(n, &backend);
        let failed = AtomicUsize::new(0);

        let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for i in 0..n {
            let counter = &counter;
            let failed = &failed;
            bodies.push(Box::new(move || {
                let mut h = counter.handle(ProcessId::new(i));
                let mut prev = 0u64;
                for _ in 0..4 {
                    h.increment();
                    let total: u64 = h.checkpoint().iter().sum();
                    if total < prev {
                        failed.fetch_add(1, Ordering::SeqCst);
                    }
                    prev = total;
                }
            }));
        }
        sim.run(
            &mut RandomPolicy::seeded(seed),
            SimConfig::default(),
            bodies,
        )
        .unwrap();
        assert_eq!(failed.load(Ordering::SeqCst), 0, "seed {seed}");
        let mut h = counter.handle(ProcessId::new(0));
        assert_eq!(h.read(), (n * 4) as u64);
    }
}

#[test]
fn timestamps_respect_real_time_under_adversarial_schedules() {
    for seed in 0..40u64 {
        let n = 3;
        let sim = Sim::new(n);
        let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
        let system = TimestampSystem::with_backend(n, &backend);
        let clock = AtomicU64::new(0);
        let labeled: Mutex<Vec<(u64, u64, snapshot_apps::Timestamp)>> = Mutex::new(Vec::new());

        let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for i in 0..n {
            let system = &system;
            let clock = &clock;
            let labeled = &labeled;
            bodies.push(Box::new(move || {
                let mut h = system.handle(ProcessId::new(i));
                for _ in 0..3 {
                    let inv = clock.fetch_add(1, Ordering::SeqCst);
                    let ts = h.label();
                    let res = clock.fetch_add(1, Ordering::SeqCst);
                    labeled.lock().push((inv, res, ts));
                }
            }));
        }
        sim.run(
            &mut RandomPolicy::seeded(seed),
            SimConfig::default(),
            bodies,
        )
        .unwrap();

        let labeled = labeled.into_inner();
        // Distinct labels.
        let mut all: Vec<_> = labeled.iter().map(|x| x.2).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), labeled.len(), "seed {seed}: duplicate labels");
        // Real-time respecting.
        for a in &labeled {
            for b in &labeled {
                if a.1 < b.0 {
                    assert!(a.2 < b.2, "seed {seed}: {} !< {}", a.2, b.2);
                }
            }
        }
    }
}

#[test]
fn immediate_snapshot_properties_hold_on_every_schedule() {
    // Exhaustively explore every interleaving of a 2-process immediate
    // snapshot, and a deep budgeted prefix for 3 processes; on every
    // schedule the views must satisfy self-inclusion, containment and
    // immediacy.
    use snapshot_apps::{check_immediacy, ImmediateSnapshot};
    use snapshot_sim::{ExploreLimits, Explorer};

    for (n, max_runs, must_complete) in [(2usize, 60_000u64, true), (3, 12_000, false)] {
        let mut runs = 0u64;
        let outcome = Explorer::new(ExploreLimits {
            max_runs,
            max_depth: 4096,
        })
        .explore::<String>(|policy| {
            let sim = Sim::new(n);
            let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
            let object = ImmediateSnapshot::with_backend(n, &backend);
            let views: Arc<Mutex<Vec<Option<Vec<(ProcessId, u64)>>>>> =
                Arc::new(Mutex::new(vec![None; n]));
            let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            for i in 0..n {
                let object = &object;
                let views = Arc::clone(&views);
                bodies.push(Box::new(move || {
                    let view = object.write_read(ProcessId::new(i), i as u64);
                    views.lock()[i] = Some(view);
                }));
            }
            sim.run(policy, SimConfig::default(), bodies)
                .map_err(|e| e.to_string())?;
            check_immediacy(&views.lock())?;
            runs += 1;
            Ok(())
        })
        .unwrap_or_else(|e| panic!("n={n}: {e}"));
        if must_complete {
            assert!(outcome.is_complete(), "n={n}: tree not covered ({runs} runs)");
        }
        assert!(runs > 100, "n={n}: only {runs} runs");
    }
}

#[test]
fn snapshot_register_histories_are_register_linearizable() {
    // Drive the snapshot-built MRMW register from real threads and check
    // the resulting histories against the sequential register spec.
    for round in 0..40u64 {
        let n = 3;
        let reg = SnapshotRegister::new(n, 0u64);
        let clock = Arc::new(AtomicU64::new(0));
        let ops: Arc<Mutex<Vec<WgOp<RegisterOp<u64>>>>> = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for t in 0..n {
                let reg = &reg;
                let clock = Arc::clone(&clock);
                let ops = Arc::clone(&ops);
                s.spawn(move || {
                    let pid = ProcessId::new(t);
                    let mut h = reg.writer(pid);
                    for k in 0..2u64 {
                        if (t as u64 + k + round) % 2 == 0 {
                            let value = (t as u64 + 1) * 1000 + k + round;
                            let inv = clock.fetch_add(1, Ordering::SeqCst);
                            h.write(value);
                            let res = clock.fetch_add(1, Ordering::SeqCst);
                            ops.lock().push(WgOp {
                                pid,
                                inv,
                                res: Some(res),
                                op: RegisterOp::Write { value },
                            });
                        } else {
                            let inv = clock.fetch_add(1, Ordering::SeqCst);
                            let value = h.read();
                            let res = clock.fetch_add(1, Ordering::SeqCst);
                            ops.lock().push(WgOp {
                                pid,
                                inv,
                                res: Some(res),
                                op: RegisterOp::Read { value },
                            });
                        }
                    }
                });
            }
        });
        let ops = Arc::try_unwrap(ops).unwrap().into_inner();
        assert!(
            check_linearizable(&RegisterSpec::new(0u64), &ops).is_linearizable(),
            "round {round}: {ops:?}"
        );
    }
}
