//! Partial scans through the service, checked against the projected
//! sequential spec.
//!
//! The service serves `scan_subset` four ways — the backing's native
//! O(touched-segments) subset scan (all in-tree constructions),
//! service-level certified per-segment double collects, shard-coalesced
//! range views, and projected full scans (the wait-free fallback, the
//! only option for a backing with neither a native path nor
//! certificates) — and all four must produce views that are
//! instantaneous pictures of the requested projection. The concurrent
//! tests record every operation with a shared logical clock and hand the
//! histories to the Wing & Gong checker under
//! `snapshot_lin::check_partial_history`.

use std::sync::Mutex;

use snapshot_core::{
    BoundedSnapshot, MultiWriterSnapshot, ScanStats, SnapshotCore, SnapshotView,
    TrySnapshotCore, UnboundedSnapshot,
};
use snapshot_lin::{check_partial_history, PartialOp, WgOp, WgResult};
use snapshot_obs::Clock;
use snapshot_registers::ProcessId;
use snapshot_service::{ServiceConfig, SnapshotService};

// ---------------------------------------------------------------------------
// Quiescent ground truth
// ---------------------------------------------------------------------------

#[test]
fn quiescent_partial_scans_equal_the_projected_full_scan() {
    let service = SnapshotService::new(UnboundedSnapshot::new(6, 0u64));
    for lane in 0..6 {
        // Claim each lane transiently just to seed its segment.
        let mut writer = service.client(lane);
        writer.update(lane, 100 + lane as u64).unwrap();
    }
    let mut client = service.client(0);
    let full = client.scan().unwrap();
    for subset in [vec![0], vec![5], vec![1, 4], vec![0, 2, 3, 5], (0..6).collect()] {
        let view = client.scan_subset(&subset).unwrap();
        assert_eq!(view.segments(), subset.as_slice());
        let expected: Vec<u64> = subset.iter().map(|&s| full[s]).collect();
        assert_eq!(view.values(), expected.as_slice(), "subset {subset:?}");
    }
}

/// A backing with no certified reads and no native subset path: the
/// projected-full-scan fallback is its only way to answer a subset.
struct Opaque<C>(C);

impl<V, C: SnapshotCore<V>> SnapshotCore<V> for Opaque<C> {
    fn segments(&self) -> usize {
        self.0.segments()
    }
    fn lanes(&self) -> usize {
        self.0.lanes()
    }
    fn single_writer(&self) -> bool {
        self.0.single_writer()
    }
    fn core_scan(&self, lane: ProcessId) -> (SnapshotView<V>, ScanStats) {
        self.0.core_scan(lane)
    }
    fn core_update(&self, lane: ProcessId, segment: usize, value: V) -> ScanStats {
        self.0.core_update(lane, segment, value)
    }
    fn certified_read(&self, _reader: ProcessId, _segment: usize) -> Option<(V, u64)> {
        None
    }
    // `core_scan_subset` keeps its default: no native subset path.
}
snapshot_core::impl_try_snapshot_core!([V, C: SnapshotCore<V>] V, Opaque<C>);

#[test]
fn native_and_fallback_paths_report_themselves() {
    // Unbounded: the native subset scan answers at O(touched) cost — two
    // passes of two registers per round, no borrow when quiescent.
    let native = SnapshotService::with_config(
        UnboundedSnapshot::new(4, 0u64),
        ServiceConfig { coalesce: false, ..ServiceConfig::default() },
    );
    let mut c = native.client(0);
    let (_, stats) = c.scan_subset_with_stats(&[0, 3]).unwrap();
    assert!(stats.native_subset);
    assert!(!stats.fallback_full);
    assert!(stats.certified_rounds >= 1);
    assert_eq!(stats.underlying.reads, 2 * 2 * u64::from(stats.certified_rounds));

    // Bounded: no ABA-free certificates, but the subset handshake gives
    // it a native path too — no fallback anymore.
    let bounded = SnapshotService::with_config(
        BoundedSnapshot::new(4, 0u64),
        ServiceConfig { coalesce: false, ..ServiceConfig::default() },
    );
    let mut c = bounded.client(0);
    let (_, stats) = c.scan_subset_with_stats(&[0, 3]).unwrap();
    assert!(stats.native_subset);
    assert!(!stats.fallback_full);

    // Opaque wrapper: neither certificates nor a native path, so the
    // service projects a full scan instead.
    let fallback = SnapshotService::with_config(
        Opaque(BoundedSnapshot::new(4, 0u64)),
        ServiceConfig { coalesce: false, ..ServiceConfig::default() },
    );
    let mut c = fallback.client(0);
    let (_, stats) = c.scan_subset_with_stats(&[0, 3]).unwrap();
    assert!(stats.fallback_full);
    assert!(!stats.native_subset);
    assert_eq!(stats.certified_rounds, 0);
    assert!(stats.underlying.reads > 0, "the fallback runs a real collect");
}

// ---------------------------------------------------------------------------
// Concurrent histories against the projected spec
// ---------------------------------------------------------------------------

/// Drives `threads` lanes of mixed updates / subset scans / full scans
/// through a service over `core`, recording a `PartialOp` history on one
/// shared clock, and returns the checker's verdict.
fn run_partial_history<C: TrySnapshotCore<u64>>(core: C, ops_per_thread: usize) -> WgResult {
    let single_writer = core.single_writer();
    let words = core.segments();
    let threads = core.lanes();
    let service = SnapshotService::with_config(
        core,
        ServiceConfig { shards: 2, ..ServiceConfig::default() },
    );
    let clock = Clock::new();
    let ops: Mutex<Vec<WgOp<PartialOp<u64>>>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for lane in 0..threads {
            let service = &service;
            let clock = &clock;
            let ops = &ops;
            s.spawn(move || {
                let pid = ProcessId::new(lane);
                let mut client = service.client(lane);
                let record = |inv: u64, op: PartialOp<u64>| {
                    let res = Some(clock.tick());
                    ops.lock().unwrap().push(WgOp { pid, inv, res, op });
                };
                for k in 0..ops_per_thread {
                    match k % 3 {
                        0 => {
                            // Single-writer lanes own their segment;
                            // multi-writer lanes scatter.
                            let word =
                                if single_writer { lane } else { (lane + k) % words };
                            let value = ((lane as u64) << 32) | (k as u64 + 1);
                            let inv = clock.tick();
                            client.update(word, value).expect("legal update");
                            record(inv, PartialOp::Update { word, value });
                        }
                        1 => {
                            // A wrapping two-segment window: sometimes one
                            // shard (coalesced range view), sometimes two
                            // (direct certified collect or fallback).
                            let subset = {
                                let a = (lane + k) % words;
                                let b = (a + 1) % words;
                                let mut s = vec![a, b];
                                s.sort_unstable();
                                s.dedup();
                                s
                            };
                            let inv = clock.tick();
                            let view = client.scan_subset(&subset).expect("valid subset");
                            record(
                                inv,
                                PartialOp::ScanSubset {
                                    segments: view.segments().to_vec(),
                                    view: view.values().to_vec(),
                                },
                            );
                        }
                        _ => {
                            let inv = clock.tick();
                            let view = client.scan().expect("within budget");
                            record(inv, PartialOp::Scan { view: view.to_vec() });
                        }
                    }
                }
            });
        }
    });

    let mut ops = ops.into_inner().unwrap();
    ops.sort_by_key(|op| op.inv);
    check_partial_history(words, 0u64, single_writer, &ops)
}

#[test]
fn concurrent_partial_history_linearizes_on_the_certified_path() {
    for round in 0..4 {
        let verdict = run_partial_history(UnboundedSnapshot::new(3, 0u64), 9);
        assert!(
            matches!(verdict, WgResult::Linearizable { .. }),
            "round {round}: certified-path history rejected: {verdict:?}"
        );
    }
}

#[test]
fn concurrent_partial_history_linearizes_on_the_bounded_native_path() {
    for round in 0..4 {
        let verdict = run_partial_history(BoundedSnapshot::new(3, 0u64), 9);
        assert!(
            matches!(verdict, WgResult::Linearizable { .. }),
            "round {round}: bounded-native history rejected: {verdict:?}"
        );
    }
}

#[test]
fn concurrent_partial_history_linearizes_on_the_fallback_path() {
    for round in 0..4 {
        let verdict = run_partial_history(Opaque(BoundedSnapshot::new(3, 0u64)), 9);
        assert!(
            matches!(verdict, WgResult::Linearizable { .. }),
            "round {round}: fallback-path history rejected: {verdict:?}"
        );
    }
}

#[test]
fn concurrent_partial_history_linearizes_on_a_multiwriter_backing() {
    for round in 0..4 {
        let verdict = run_partial_history(MultiWriterSnapshot::new(3, 4, 0u64), 9);
        assert!(
            matches!(verdict, WgResult::Linearizable { .. }),
            "round {round}: multi-writer history rejected: {verdict:?}"
        );
    }
}
