//! Section 6's message-passing claim, end to end: the *same* snapshot
//! algorithm code runs over ABD-emulated registers on a simulated
//! asynchronous network, stays linearizable, and keeps operating while a
//! minority of replicas is crashed.

use std::sync::Arc;

use snapshot_abd::{AbdBackend, Network, NetworkConfig};
use snapshot_bench::harness::{run_sw_threaded, sw_mixed_scripts};
use snapshot_core::{BoundedSnapshot, SwSnapshot, SwSnapshotHandle, UnboundedSnapshot};
use snapshot_lin::{check_history, check_intervals};
use snapshot_registers::ProcessId;

#[test]
fn snapshot_over_message_passing_is_linearizable() {
    let network = Arc::new(Network::with_config(NetworkConfig::new(3).with_jitter(11)));
    let backend = AbdBackend::new(&network);
    let n = 3;
    let object = UnboundedSnapshot::with_backend(n, 0u64, &backend);
    let history = run_sw_threaded(&object, &sw_mixed_scripts(n, 10));
    assert_eq!(check_intervals(&history), Ok(()));
}

#[test]
fn small_message_passing_histories_pass_wing_gong() {
    for seed in 0..5u64 {
        let network = Arc::new(Network::with_config(NetworkConfig::new(3).with_jitter(seed)));
        let backend = AbdBackend::new(&network);
        let n = 2;
        let object = BoundedSnapshot::with_backend(n, 0u64, &backend);
        let history = run_sw_threaded(&object, &sw_mixed_scripts(n, 2));
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: {history:?}"
        );
    }
}

#[test]
fn snapshot_survives_minority_replica_crashes() {
    let network = Arc::new(Network::new(5)); // tolerates 2 crashes
    let backend = AbdBackend::new(&network);
    let n = 2;
    let object = BoundedSnapshot::with_backend(n, 0u64, &backend);

    let mut h0 = object.handle(ProcessId::new(0));
    let mut h1 = object.handle(ProcessId::new(1));
    h0.update(1);

    network.crash(1);
    network.crash(4);

    // Operations proceed unharmed on the remaining majority.
    h1.update(2);
    assert_eq!(h0.scan().to_vec(), vec![1, 2]);
    h0.update(3);
    assert_eq!(h1.scan().to_vec(), vec![3, 2]);

    // Rotate the crashed minority: previously-crashed replicas return
    // (state intact) and others fall silent; majorities still intersect.
    network.restart(1);
    network.restart(4);
    network.crash(0);
    network.crash(2);
    h1.update(4);
    assert_eq!(h0.scan().to_vec(), vec![3, 4]);
}

#[test]
fn concurrent_snapshot_traffic_during_crash_and_recovery() {
    let network = Arc::new(Network::with_config(NetworkConfig::new(5).with_jitter(3)));
    let backend = AbdBackend::new(&network);
    let n = 3;
    let object = UnboundedSnapshot::with_backend(n, 0u64, &backend);

    std::thread::scope(|s| {
        for i in 0..n {
            let object = &object;
            s.spawn(move || {
                let mut h = object.handle(ProcessId::new(i));
                let mut last = vec![0u64; n];
                for k in 1..=20u64 {
                    h.update(k);
                    let view = h.scan();
                    for (j, &v) in view.iter().enumerate() {
                        assert!(v >= last[j], "segment went backwards");
                        last[j] = v;
                    }
                }
            });
        }
        // Crash and revive a minority while traffic flows.
        let network = &network;
        s.spawn(move || {
            for round in 0..6 {
                let victim = round % 5;
                network.crash(victim);
                std::thread::yield_now();
                network.restart(victim);
            }
        });
    });
}
