//! Nemesis suite for the fault-tolerant service mode: a coalescing
//! client fleet over an `AbdSnapshotCore` (Figure 2 run fallibly over
//! emulated message-passing registers), attacked by phased partitions
//! and crash/restart storms.
//!
//! The contract under test, end to end:
//!
//! * **No deadlocked cohort.** Every request returns — a view or a typed
//!   `ServiceError` — within its retry budget; after every phase the
//!   coalescing rendezvous is empty and the admission budget is fully
//!   returned.
//! * **Every success linearizes.** All completed operations, including
//!   ones that straddle a heal boundary, pass the Wing & Gong checker
//!   (failed updates are registered as pending: they are indeterminate,
//!   exactly like an ABD write that lost its quorum).
//! * **Failure is typed at every layer.** Backend faults surface as
//!   `ServiceError::Backend` (budget consumed) or `Degraded` (health
//!   gate shed the request before it touched a register) — never a
//!   panic, never a hang.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use snapshot_abd::{
    AbdSnapshotCore, Dwell, FaultPlan, LinkFault, Nemesis, NemesisEvent, Network, NetworkConfig,
    RetryPolicy,
};
use snapshot_core::{
    CoreError, ScanStats, SnapshotCore, SnapshotView, TrySnapshotCore, UnboundedSnapshot,
};
use snapshot_lin::{check_history, Recorder};
use snapshot_obs::Registry;
use snapshot_registers::ProcessId;
use snapshot_service::{
    HealthConfig, RetryConfig, ServiceConfig, ServiceError, SnapshotService,
};

const LANES: usize = 3;
const REPLICAS: usize = 5;

fn mild_lossy_link() -> LinkFault {
    LinkFault::healthy()
        .with_drop(0.08)
        .with_duplicate(0.06)
        .with_reorder(0.10, 3)
        .with_delay(Duration::from_micros(5), Duration::from_micros(80))
}

fn fast_abd_retry() -> RetryPolicy {
    RetryPolicy {
        initial_backoff: Duration::from_micros(300),
        max_backoff: Duration::from_millis(4),
        multiplier: 2,
        jitter: 0.5,
    }
}

fn service_retry() -> RetryConfig {
    RetryConfig {
        max_attempts: 3,
        initial_backoff: Duration::from_micros(300),
        max_backoff: Duration::from_millis(4),
        multiplier: 2,
        deadline: Duration::from_secs(30),
    }
}

/// Partition/crash storm: minority cuts the fleet rides out, one
/// majority blackout it must *fail typed* through, then heal.
fn storm(network: &Arc<Network>) -> std::thread::JoinHandle<()> {
    let network = Arc::clone(network);
    std::thread::spawn(move || {
        Nemesis::new()
            .phase(vec![NemesisEvent::Heal], Dwell::Millis(5))
            .phase(
                vec![NemesisEvent::Partition { replicas: vec![0, 1], symmetric: true }],
                Dwell::Millis(25),
            )
            .phase(vec![NemesisEvent::Heal, NemesisEvent::Crash(2)], Dwell::Millis(25))
            .phase(
                // The blackout: a majority is gone. Liveness is lost on
                // purpose; everything issued here must return typed
                // errors within its budget.
                vec![NemesisEvent::Partition { replicas: vec![0, 1, 3], symmetric: true }],
                Dwell::Millis(60),
            )
            .phase(vec![NemesisEvent::Restart(2), NemesisEvent::Heal], Dwell::Millis(30))
            .run(&network)
    })
}

#[test]
fn nemesis_storm_service_returns_views_or_typed_errors() {
    let seed = 1990;
    let network = Arc::new(Network::with_config(
        NetworkConfig::new(REPLICAS)
            .with_jitter(seed)
            .with_faults(FaultPlan::seeded(seed).with_default(mild_lossy_link()))
            .with_op_timeout(Duration::from_millis(40))
            .with_retry(fast_abd_retry()),
    ));
    let registry = Registry::new();
    let service = SnapshotService::with_config(
        AbdSnapshotCore::new(&network, LANES, 0u64),
        ServiceConfig {
            retry: service_retry(),
            health: HealthConfig {
                failure_threshold: 3,
                cooldown: Duration::from_millis(10),
            },
            ..ServiceConfig::default()
        },
    )
    .with_registry(&registry);
    let recorder = Recorder::new(LANES, LANES, 0u64);
    let errors: Mutex<Vec<ServiceError>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for lane in 0..LANES {
            let service = &service;
            let recorder = &recorder;
            let errors = &errors;
            s.spawn(move || {
                let pid = ProcessId::new(lane);
                let mut client = service.client(lane);
                // 21 iterations keeps the worst-case recorded history
                // (every op succeeds: 3 lanes × 21 × 2 ops = 126) inside
                // the Wing & Gong checker's 128-operation limit.
                for k in 1..=21u64 {
                    // Update then scan, riding straight through fault
                    // phases and heal boundaries.
                    let value = ((lane as u64) << 32) | k;
                    let inv = recorder.begin();
                    match client.update(lane, value) {
                        Ok(()) => recorder.end_update(pid, lane, value, inv),
                        Err(e @ ServiceError::Backend { .. }) => {
                            // Indeterminate: the write may have landed on
                            // a quorum we never heard back from.
                            recorder.pending_update(pid, lane, value, inv);
                            errors.lock().unwrap().push(e);
                        }
                        Err(e @ ServiceError::Degraded { .. }) => {
                            // Shed before touching any register: the
                            // write definitely did not happen.
                            errors.lock().unwrap().push(e);
                        }
                        Err(other) => panic!("lane {lane}: unexpected error {other:?}"),
                    }
                    let inv = recorder.begin();
                    match client.scan() {
                        Ok(view) => recorder.end_scan(pid, view.to_vec(), inv),
                        Err(e @ (ServiceError::Backend { .. } | ServiceError::Degraded { .. })) => {
                            errors.lock().unwrap().push(e)
                        }
                        Err(other) => panic!("lane {lane}: unexpected error {other:?}"),
                    }
                }
            });
        }
        storm(&network).join().unwrap();
    });

    // (a) No deadlocked cohort: every thread returned, the rendezvous is
    // drained and the admission budget is fully returned.
    assert_eq!(service.coalescing_waiters(), 0, "waiters parked forever");
    assert_eq!(service.inflight(), 0, "admission slots leaked");

    // (b) Every success linearizes, across heal boundaries, with failed
    // updates treated as indeterminate.
    let history = recorder.finish();
    let result = check_history(&history);
    assert!(
        result.is_linearizable(),
        "seed {seed}: storm history rejected ({result:?}): {history:?}"
    );

    // (c) Failure accounting is consistent: the blackout phase makes
    // errors overwhelmingly likely but not certain on every
    // interleaving, so assert consistency rather than a count.
    let errors = errors.into_inner().unwrap();
    let backend = errors.iter().filter(|e| matches!(e, ServiceError::Backend { .. })).count();
    let degraded = errors.iter().filter(|e| matches!(e, ServiceError::Degraded { .. })).count();
    assert_eq!(backend + degraded, errors.len());
    assert!(
        registry.counter("service.fault.retry_exhausted").get() >= backend as u64,
        "every Backend error passed through retry exhaustion"
    );
    assert_eq!(registry.counter("service.fault.degraded_shed").get(), degraded as u64);
    assert!(!network.poisoned(), "a replica thread panicked");

    // After the final heal the service recovers end to end.
    let mut probe = service.client(0);
    let mut view = None;
    for _ in 0..40 {
        match probe.scan() {
            Ok(v) => {
                view = Some(v);
                break;
            }
            Err(ServiceError::Degraded { retry_after, .. }) => std::thread::sleep(retry_after),
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    assert!(view.is_some(), "service must recover after the storm heals");
}

// ---------------------------------------------------------------------------
// Deterministic cohort fan-out (scripted backend, no timing luck)
// ---------------------------------------------------------------------------

/// Scripted fallible core: `try_scan` parks (spinning) while `gate` is
/// set, then fails while `fail_remaining > 0`. Implements
/// `TrySnapshotCore` directly, so the service's whole failure path runs
/// without a network in the loop.
struct ScriptedCore {
    inner: UnboundedSnapshot<u64>,
    gate: Arc<AtomicBool>,
    entered: Arc<AtomicUsize>,
    fail_remaining: AtomicUsize,
}

impl ScriptedCore {
    fn new(n: usize, failures: usize) -> Self {
        ScriptedCore {
            inner: UnboundedSnapshot::new(n, 0u64),
            gate: Arc::new(AtomicBool::new(false)),
            entered: Arc::new(AtomicUsize::new(0)),
            fail_remaining: AtomicUsize::new(failures),
        }
    }

    fn take_failure(&self) -> bool {
        self.fail_remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(1))
            .is_ok()
    }
}

impl TrySnapshotCore<u64> for ScriptedCore {
    // Fully qualified: `UnboundedSnapshot` implements both `SnapshotCore`
    // and `TrySnapshotCore`, so bare method calls on it are ambiguous.
    fn segments(&self) -> usize {
        SnapshotCore::segments(&self.inner)
    }

    fn lanes(&self) -> usize {
        SnapshotCore::lanes(&self.inner)
    }

    fn single_writer(&self) -> bool {
        SnapshotCore::single_writer(&self.inner)
    }

    fn try_scan(&self, lane: ProcessId) -> Result<(SnapshotView<u64>, ScanStats), CoreError> {
        self.entered.fetch_add(1, Ordering::SeqCst);
        while self.gate.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        if self.take_failure() {
            return Err(CoreError::Unavailable { reason: "scripted outage".into() });
        }
        Ok(self.inner.core_scan(lane))
    }

    fn try_update(
        &self,
        lane: ProcessId,
        segment: usize,
        value: u64,
    ) -> Result<ScanStats, CoreError> {
        if self.take_failure() {
            return Err(CoreError::Unavailable { reason: "scripted outage".into() });
        }
        Ok(self.inner.core_update(lane, segment, value))
    }

    fn try_certified_read(
        &self,
        reader: ProcessId,
        segment: usize,
    ) -> Result<Option<(u64, u64)>, CoreError> {
        Ok(self.inner.certified_read(reader, segment))
    }
}

#[test]
fn failed_leader_fans_errors_to_the_whole_cohort_within_budget() {
    const CLIENTS: usize = 6;
    let core = ScriptedCore::new(CLIENTS, usize::MAX / 2); // outage outlasts every budget
    let gate = core.gate.clone();
    let entered = core.entered.clone();
    gate.store(true, Ordering::SeqCst);

    let registry = Registry::new();
    let service = SnapshotService::with_config(
        core,
        ServiceConfig {
            retry: RetryConfig {
                max_attempts: 2,
                initial_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_micros(200),
                ..RetryConfig::default()
            },
            health: HealthConfig::disabled(), // isolate fan-out from shedding
            ..ServiceConfig::default()
        },
    )
    .with_registry(&registry);

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|lane| {
                let service = &service;
                s.spawn(move || service.client(lane).scan().unwrap_err())
            })
            .collect();

        // One leader is inside the (held) collect; the rest of the fleet
        // parks behind it.
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        while service.coalescing_waiters() < CLIENTS - 1 {
            std::thread::yield_now();
        }

        // Release the collect into the outage: the leader fails, the
        // error fans out, successors re-elect and fail too. Nobody may
        // park forever.
        gate.store(false, Ordering::SeqCst);
        for h in handles {
            let err = h.join().unwrap();
            match err {
                ServiceError::Backend { attempts, error } => {
                    assert!(attempts <= 2, "budget overrun: {attempts}");
                    assert!(error.retryable());
                }
                other => panic!("expected Backend, got {other:?}"),
            }
        }
    });

    assert_eq!(service.coalescing_waiters(), 0, "no waiter may stay parked");
    assert_eq!(service.inflight(), 0, "admission budget fully returned");
    assert!(service.abdications() >= 1, "at least the first leader failed over");
    assert!(
        registry.counter("service.fault.cohort_errors").get() >= 1,
        "someone must have received a fanned-out error"
    );
    assert_eq!(
        registry.counter("service.fault.retry_exhausted").get(),
        CLIENTS as u64,
        "every client exhausted its own budget"
    );
}

// ---------------------------------------------------------------------------
// Shard health gate: trip, shed, half-open probe, recover
// ---------------------------------------------------------------------------

#[test]
fn health_gate_trips_sheds_probes_and_recovers() {
    let cooldown = Duration::from_millis(40);
    let core = ScriptedCore::new(2, 2); // exactly two failures, then healthy
    let registry = Registry::new();
    let service = SnapshotService::with_config(
        core,
        ServiceConfig {
            coalesce: false,
            retry: RetryConfig::no_retries(), // one backend attempt per request
            health: HealthConfig { failure_threshold: 2, cooldown },
            ..ServiceConfig::default()
        },
    )
    .with_registry(&registry);
    let mut client = service.client(0);

    // Two consecutive failures trip every gated shard's breaker.
    for _ in 0..2 {
        let err = client.scan().unwrap_err();
        assert!(matches!(err, ServiceError::Backend { attempts: 1, .. }), "{err:?}");
    }
    assert!(!service.degraded_shards().is_empty(), "breaker must be open");

    // Open breaker: shed with a retry hint, without touching the backend.
    match client.scan().unwrap_err() {
        ServiceError::Degraded { retry_after, .. } => {
            assert!(retry_after <= cooldown);
        }
        other => panic!("expected Degraded, got {other:?}"),
    }
    assert_eq!(registry.counter("service.fault.degraded_shed").get(), 1);
    assert_eq!(
        registry.counter("service.fault.backend_errors").get(),
        2,
        "the shed request must not reach the backend"
    );

    // After the cooldown the half-open probe goes through (the scripted
    // outage is over), closing the breaker for everyone.
    std::thread::sleep(cooldown + Duration::from_millis(10));
    let view = client.scan().expect("probe must be admitted and succeed");
    assert_eq!(view.len(), 2);
    assert!(service.degraded_shards().is_empty(), "breaker must close on probe success");
    client.scan().expect("closed breaker admits normally");
    client.update(0, 7).expect("updates flow again");
    assert_eq!(client.scan().unwrap()[0], 7);
}

// ---------------------------------------------------------------------------
// Healthy-network parity: the ABD-backed service behaves like in-process
// ---------------------------------------------------------------------------

#[test]
fn healthy_abd_service_matches_in_process_semantics() {
    let network = Arc::new(Network::with_config(
        NetworkConfig::new(3).with_retry(fast_abd_retry()),
    ));
    let registry = Registry::new();
    let service = SnapshotService::new(AbdSnapshotCore::new(&network, LANES, 0u64))
        .with_registry(&registry);
    let recorder = Recorder::new(LANES, LANES, 0u64);

    std::thread::scope(|s| {
        for lane in 0..LANES {
            let service = &service;
            let recorder = &recorder;
            s.spawn(move || {
                let pid = ProcessId::new(lane);
                let mut client = service.client(lane);
                for k in 1..=8u64 {
                    let value = ((lane as u64) << 16) | k;
                    let inv = recorder.begin();
                    client.update(lane, value).expect("healthy network");
                    recorder.end_update(pid, lane, value, inv);
                    let inv = recorder.begin();
                    let view = client.scan().expect("healthy network");
                    recorder.end_scan(pid, view.to_vec(), inv);
                    // Partial scans ride the ABD certificates (seq
                    // numbers) exactly like the unbounded in-process core.
                    let partial = client.scan_subset(&[lane]).expect("healthy network");
                    assert_eq!(partial.segments(), &[lane]);
                }
            });
        }
    });

    let history = recorder.finish();
    assert!(check_history(&history).is_linearizable(), "healthy ABD service must linearize");

    // Coalescing happened through the same rendezvous as in-process
    // cores, and no fault path ever fired. Full scans and single-shard
    // partials each take exactly one solo-or-coalesced slot.
    let solo = registry.counter("service.scan.solo").get();
    let coalesced = registry.counter("service.scan.coalesced").get();
    assert_eq!(solo + coalesced, (LANES * 8 * 2) as u64);
    assert_eq!(registry.counter("service.fault.backend_errors").get(), 0);
    assert_eq!(registry.counter("service.fault.degraded_shed").get(), 0);
    assert_eq!(registry.counter("service.coalesce.abdicated").get(), 0);
    assert_eq!(service.abdications(), 0);
    assert_eq!(service.inflight(), 0);
    assert_eq!(service.coalescing_waiters(), 0);
}
