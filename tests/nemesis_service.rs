//! Nemesis suite for the fault-tolerant service mode: a coalescing
//! client fleet over an `AbdSnapshotCore` (Figure 2 run fallibly over
//! emulated message-passing registers), attacked by phased partitions
//! and crash/restart storms.
//!
//! The contract under test, end to end:
//!
//! * **No deadlocked cohort.** Every request returns — a view or a typed
//!   `ServiceError` — within its retry budget; after every phase the
//!   coalescing rendezvous is empty and the admission budget is fully
//!   returned.
//! * **Every success linearizes.** All completed operations, including
//!   ones that straddle a heal boundary, pass the Wing & Gong checker
//!   (failed updates are registered as pending: they are indeterminate,
//!   exactly like an ABD write that lost its quorum).
//! * **Failure is typed at every layer.** Backend faults surface as
//!   `ServiceError::Backend` (budget consumed) or `Degraded` (health
//!   gate shed the request before it touched a register) — never a
//!   panic, never a hang.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use snapshot_abd::{
    AbdSnapshotCore, Dwell, FaultPlan, LinkFault, Nemesis, NemesisEvent, Network, NetworkConfig,
    RetryPolicy,
};
use snapshot_core::{
    CoreError, ScanStats, SnapshotCore, SnapshotView, TrySnapshotCore, UnboundedSnapshot,
};
use snapshot_lin::{check_history, Recorder};
use snapshot_obs::{
    DumpCause, FanoutSink, FlightRecorder, Registry, RingSink, SpanForest, SpanStatus, Trace,
};
use snapshot_registers::ProcessId;
use snapshot_service::{
    Breaker, HealthConfig, RetryConfig, ServiceConfig, ServiceError, SnapshotService,
};

const LANES: usize = 3;
const REPLICAS: usize = 5;

fn mild_lossy_link() -> LinkFault {
    LinkFault::healthy()
        .with_drop(0.08)
        .with_duplicate(0.06)
        .with_reorder(0.10, 3)
        .with_delay(Duration::from_micros(5), Duration::from_micros(80))
}

fn fast_abd_retry() -> RetryPolicy {
    RetryPolicy {
        initial_backoff: Duration::from_micros(300),
        max_backoff: Duration::from_millis(4),
        multiplier: 2,
        jitter: 0.5,
    }
}

fn service_retry() -> RetryConfig {
    RetryConfig {
        max_attempts: 3,
        initial_backoff: Duration::from_micros(300),
        max_backoff: Duration::from_millis(4),
        multiplier: 2,
        deadline: Duration::from_secs(30),
    }
}

/// Partition/crash storm: minority cuts the fleet rides out, one
/// majority blackout it must *fail typed* through, then heal.
fn storm(network: &Arc<Network>) -> std::thread::JoinHandle<()> {
    let network = Arc::clone(network);
    std::thread::spawn(move || {
        Nemesis::new()
            .phase(vec![NemesisEvent::Heal], Dwell::Millis(5))
            .phase(
                vec![NemesisEvent::Partition { replicas: vec![0, 1], symmetric: true }],
                Dwell::Millis(25),
            )
            .phase(vec![NemesisEvent::Heal, NemesisEvent::Crash(2)], Dwell::Millis(25))
            .phase(
                // The blackout: a majority is gone. Liveness is lost on
                // purpose; everything issued here must return typed
                // errors within its budget.
                vec![NemesisEvent::Partition { replicas: vec![0, 1, 3], symmetric: true }],
                Dwell::Millis(60),
            )
            .phase(vec![NemesisEvent::Restart(2), NemesisEvent::Heal], Dwell::Millis(30))
            .run(&network)
    })
}

#[test]
fn nemesis_storm_service_returns_views_or_typed_errors() {
    let seed = 1990;
    let network = Arc::new(Network::with_config(
        NetworkConfig::new(REPLICAS)
            .with_jitter(seed)
            .with_faults(FaultPlan::seeded(seed).with_default(mild_lossy_link()))
            .with_op_timeout(Duration::from_millis(40))
            .with_retry(fast_abd_retry()),
    ));
    let registry = Registry::new();
    let service = SnapshotService::with_config(
        AbdSnapshotCore::new(&network, LANES, 0u64),
        ServiceConfig {
            retry: service_retry(),
            health: HealthConfig {
                window: 16,
                trip_error_pct: 60,
                min_volume: 4,
                cooldown: Duration::from_millis(10),
                ramp_successes: 2,
                ramp_tokens: 8,
                ramp_interval: Duration::from_millis(2),
                jitter_pct: 25,
            },
            ..ServiceConfig::default()
        },
    )
    .with_registry(&registry);
    let recorder = Recorder::new(LANES, LANES, 0u64);
    let errors: Mutex<Vec<ServiceError>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for lane in 0..LANES {
            let service = &service;
            let recorder = &recorder;
            let errors = &errors;
            s.spawn(move || {
                let pid = ProcessId::new(lane);
                let mut client = service.client(lane);
                // 21 iterations keeps the worst-case recorded history
                // (every op succeeds: 3 lanes × 21 × 2 ops = 126) inside
                // the Wing & Gong checker's 128-operation limit.
                for k in 1..=21u64 {
                    // Update then scan, riding straight through fault
                    // phases and heal boundaries.
                    let value = ((lane as u64) << 32) | k;
                    let inv = recorder.begin();
                    match client.update(lane, value) {
                        Ok(()) => recorder.end_update(pid, lane, value, inv),
                        Err(e @ ServiceError::Backend { .. }) => {
                            // Indeterminate: the write may have landed on
                            // a quorum we never heard back from.
                            recorder.pending_update(pid, lane, value, inv);
                            errors.lock().unwrap().push(e);
                        }
                        Err(e @ ServiceError::Degraded { .. }) => {
                            // Shed before touching any register: the
                            // write definitely did not happen.
                            errors.lock().unwrap().push(e);
                        }
                        Err(other) => panic!("lane {lane}: unexpected error {other:?}"),
                    }
                    let inv = recorder.begin();
                    match client.scan() {
                        Ok(view) => recorder.end_scan(pid, view.to_vec(), inv),
                        Err(e @ (ServiceError::Backend { .. } | ServiceError::Degraded { .. })) => {
                            errors.lock().unwrap().push(e)
                        }
                        Err(other) => panic!("lane {lane}: unexpected error {other:?}"),
                    }
                }
            });
        }
        storm(&network).join().unwrap();
    });

    // (a) No deadlocked cohort: every thread returned, the rendezvous is
    // drained and the admission budget is fully returned.
    assert_eq!(service.coalescing_waiters(), 0, "waiters parked forever");
    assert_eq!(service.inflight(), 0, "admission slots leaked");

    // (b) Every success linearizes, across heal boundaries, with failed
    // updates treated as indeterminate.
    let history = recorder.finish();
    let result = check_history(&history);
    assert!(
        result.is_linearizable(),
        "seed {seed}: storm history rejected ({result:?}): {history:?}"
    );

    // (c) Failure accounting is consistent: the blackout phase makes
    // errors overwhelmingly likely but not certain on every
    // interleaving, so assert consistency rather than a count.
    let errors = errors.into_inner().unwrap();
    let backend = errors.iter().filter(|e| matches!(e, ServiceError::Backend { .. })).count();
    let degraded = errors.iter().filter(|e| matches!(e, ServiceError::Degraded { .. })).count();
    assert_eq!(backend + degraded, errors.len());
    assert!(
        registry.counter("service.fault.retry_exhausted").get() >= backend as u64,
        "every Backend error passed through retry exhaustion"
    );
    assert_eq!(registry.counter("service.fault.degraded_shed").get(), degraded as u64);
    assert!(!network.poisoned(), "a replica thread panicked");

    // After the final heal the service recovers end to end.
    let mut probe = service.client(0);
    let mut view = None;
    for _ in 0..40 {
        match probe.scan() {
            Ok(v) => {
                view = Some(v);
                break;
            }
            Err(ServiceError::Degraded { retry_after, .. }) => std::thread::sleep(retry_after),
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    assert!(view.is_some(), "service must recover after the storm heals");
}

// ---------------------------------------------------------------------------
// Subset scans under nemesis: the native ABD subset lane rides the storm
// ---------------------------------------------------------------------------

#[test]
fn nemesis_subset_scans_return_projections_or_typed_errors() {
    // One subset-scan round over the ABD-backed service while a storm
    // runs: partial scans ride the native subset lane (two quorum passes
    // over just the touched registers) and must return a projection or a
    // typed error — never a panic, never a hang. After the heal, a
    // subset scan must certify natively again.
    let seed = 2026;
    let network = Arc::new(Network::with_config(
        NetworkConfig::new(REPLICAS)
            .with_jitter(seed)
            .with_faults(FaultPlan::seeded(seed).with_default(mild_lossy_link()))
            .with_op_timeout(Duration::from_millis(40))
            .with_retry(fast_abd_retry()),
    ));
    let service = SnapshotService::with_config(
        AbdSnapshotCore::new(&network, LANES, 0u64),
        ServiceConfig { retry: service_retry(), ..ServiceConfig::default() },
    );

    std::thread::scope(|s| {
        for lane in 0..LANES {
            let service = &service;
            s.spawn(move || {
                let mut client = service.client(lane);
                for k in 1..=15u64 {
                    match client.update(lane, (lane as u64) << 32 | k) {
                        Ok(())
                        | Err(ServiceError::Backend { .. } | ServiceError::Degraded { .. }) => {}
                        Err(other) => panic!("lane {lane}: unexpected error {other:?}"),
                    }
                    // A wrapping two-segment window, spanning shards.
                    let subset = {
                        let mut s = vec![lane, (lane + 1) % LANES];
                        s.sort_unstable();
                        s
                    };
                    match client.scan_subset_with_stats(&subset) {
                        Ok((view, _)) => {
                            assert_eq!(view.segments(), subset.as_slice());
                            assert_eq!(view.len(), subset.len());
                        }
                        Err(ServiceError::Backend { .. } | ServiceError::Degraded { .. }) => {}
                        Err(other) => panic!("lane {lane}: unexpected error {other:?}"),
                    }
                }
            });
        }
        storm(&network).join().unwrap();
    });

    assert_eq!(service.coalescing_waiters(), 0, "waiters parked forever");
    assert_eq!(service.inflight(), 0, "admission slots leaked");
    assert!(!network.poisoned(), "a replica thread panicked");

    // Healed network: the subset lane certifies natively again (retrying
    // through any breaker cooldown left over from the storm).
    let mut probe = service.client(0);
    let start = Instant::now();
    loop {
        match probe.scan_subset_with_stats(&[0, 2]) {
            Ok((view, stats)) => {
                assert_eq!(view.segments(), &[0, 2]);
                assert!(stats.native_subset, "healed ABD serves subsets natively");
                assert!(!stats.fallback_full);
                break;
            }
            Err(ServiceError::Degraded { retry_after, .. }) => std::thread::sleep(retry_after),
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "subset lane must recover after the heal"
        );
    }
}

// ---------------------------------------------------------------------------
// Flight recorder under nemesis: the dump names the phase that stalled
// ---------------------------------------------------------------------------

/// The observability acceptance scenario: a majority blackout makes a
/// breaker trip *and* a deadline expire, and the flight recorder's dump
/// must attribute the stalled request to a named phase — a quorum wait
/// (`QuorumQuery`/`QuorumStore`/`Collect`), a coalesce park, or a retry
/// backoff — from the span tree alone.
#[test]
fn blackout_flight_dump_attributes_the_stall_to_a_named_phase() {
    let ring = Arc::new(RingSink::new(LANES, 8192));
    let recorder = Arc::new(FlightRecorder::with_max_dumps(1024, 64));
    let trace = Trace::new(Arc::new(FanoutSink::new(vec![ring.clone(), recorder.clone()])));
    let network = Arc::new(Network::with_config(
        NetworkConfig::new(REPLICAS)
            .with_op_timeout(Duration::from_millis(5))
            .with_retry(fast_abd_retry())
            .with_trace(trace.clone()),
    ));
    let service = SnapshotService::with_config(
        AbdSnapshotCore::new(&network, LANES, 0u64),
        ServiceConfig {
            retry: RetryConfig {
                max_attempts: 2,
                initial_backoff: Duration::from_micros(200),
                max_backoff: Duration::from_millis(2),
                multiplier: 2,
                deadline: Duration::from_secs(30),
            },
            health: ladder_health(Duration::from_millis(50)),
            ..ServiceConfig::default()
        },
    )
    .with_trace(trace);

    // Majority blackout: every quorum phase stalls to its op timeout,
    // then fails. Scans with an open-ended budget exhaust their retries
    // (filling the breaker window); scans whose budget is *smaller than
    // one op timeout* spend it all inside the first quorum wait and
    // expire — deterministically, because the deadline caps the wait.
    network.partition(&[0, 1, 2]);
    let mut client = service.client(0);
    let start = Instant::now();
    let mut saw_expiry = false;
    let mut saw_trip = false;
    while start.elapsed() < Duration::from_secs(10) && !(saw_expiry && saw_trip) {
        match client.scan_within(Duration::from_millis(3)) {
            Err(ServiceError::DeadlineExceeded { .. }) => saw_expiry = true,
            Err(ServiceError::Backend { .. } | ServiceError::Degraded { .. }) | Ok(_) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
        match client.scan() {
            Err(ServiceError::Backend { .. } | ServiceError::Degraded { .. }) | Ok(_) => {}
            Err(ServiceError::DeadlineExceeded { .. }) => saw_expiry = true,
            Err(other) => panic!("unexpected error {other:?}"),
        }
        saw_trip = recorder.dumps().iter().any(|d| d.cause == DumpCause::BreakerTrip);
    }
    network.heal();
    assert!(saw_expiry, "the blackout must expire a budgeted scan");
    assert!(saw_trip, "the blackout must trip a breaker (and dump on it)");
    assert!(!network.poisoned(), "a replica thread panicked");

    let dumps = recorder.dumps();
    assert!(dumps.iter().any(|d| d.cause == DumpCause::BreakerTrip));
    let dump = dumps
        .iter()
        .find(|d| d.cause == DumpCause::DeadlineExceeded)
        .expect("the expiry froze a flight dump");

    // From the dump alone: the trigger is the `DeadlineExceeded` event,
    // so the expired request is the triggering pid's newest root span in
    // the ring (its end lands after the trigger, so it is still open in
    // the dump). Ask the forest what that request spent its budget on —
    // the answer must be a named stall phase, not a leaf of unknown kind.
    let forest = SpanForest::build(&dump.events);
    let root = forest
        .nodes()
        .iter()
        .filter(|n| n.parent == 0 && n.pid == dump.trigger_pid && n.begin_seq < dump.trigger_seq)
        .max_by_key(|n| n.begin_seq)
        .expect("the expired request's root span is in the dump");
    assert!(
        root.end_seq.is_none() || root.status == Some(SpanStatus::Expired),
        "the anomaly interrupted this root: {forest}"
    );
    let stall = forest
        .attribute_stall(root.id)
        .expect("the expired request has ended descendants to attribute");
    assert!(
        stall.is_stall_phase(),
        "the stall must be attributed to a quorum wait, coalesce park, or \
         retry backoff; got {:?} in:\n{forest}",
        stall.kind
    );

    // The dump header names its cause, schema-compatibly.
    let rendered = dump.render();
    assert!(rendered.starts_with('{') && rendered.contains("\"cause\":\"deadline_exceeded\""));
}

// ---------------------------------------------------------------------------
// Deterministic cohort fan-out (scripted backend, no timing luck)
// ---------------------------------------------------------------------------

/// Scripted fallible core: `try_scan` parks (spinning) while `gate` is
/// set, then fails while `fail_remaining > 0`. Implements
/// `TrySnapshotCore` directly, so the service's whole failure path runs
/// without a network in the loop.
struct ScriptedCore {
    inner: UnboundedSnapshot<u64>,
    gate: Arc<AtomicBool>,
    entered: Arc<AtomicUsize>,
    fail_remaining: AtomicUsize,
}

impl ScriptedCore {
    fn new(n: usize, failures: usize) -> Self {
        ScriptedCore {
            inner: UnboundedSnapshot::new(n, 0u64),
            gate: Arc::new(AtomicBool::new(false)),
            entered: Arc::new(AtomicUsize::new(0)),
            fail_remaining: AtomicUsize::new(failures),
        }
    }

    fn take_failure(&self) -> bool {
        self.fail_remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(1))
            .is_ok()
    }
}

impl TrySnapshotCore<u64> for ScriptedCore {
    // Fully qualified: `UnboundedSnapshot` implements both `SnapshotCore`
    // and `TrySnapshotCore`, so bare method calls on it are ambiguous.
    fn segments(&self) -> usize {
        SnapshotCore::segments(&self.inner)
    }

    fn lanes(&self) -> usize {
        SnapshotCore::lanes(&self.inner)
    }

    fn single_writer(&self) -> bool {
        SnapshotCore::single_writer(&self.inner)
    }

    fn try_scan(&self, lane: ProcessId) -> Result<(SnapshotView<u64>, ScanStats), CoreError> {
        self.entered.fetch_add(1, Ordering::SeqCst);
        while self.gate.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        if self.take_failure() {
            return Err(CoreError::Unavailable { reason: "scripted outage".into() });
        }
        Ok(self.inner.core_scan(lane))
    }

    fn try_update(
        &self,
        lane: ProcessId,
        segment: usize,
        value: u64,
    ) -> Result<ScanStats, CoreError> {
        if self.take_failure() {
            return Err(CoreError::Unavailable { reason: "scripted outage".into() });
        }
        Ok(self.inner.core_update(lane, segment, value))
    }

    fn try_certified_read(
        &self,
        reader: ProcessId,
        segment: usize,
    ) -> Result<Option<(u64, u64)>, CoreError> {
        Ok(self.inner.certified_read(reader, segment))
    }
}

#[test]
fn failed_leader_fans_errors_to_the_whole_cohort_within_budget() {
    const CLIENTS: usize = 6;
    let core = ScriptedCore::new(CLIENTS, usize::MAX / 2); // outage outlasts every budget
    let gate = core.gate.clone();
    let entered = core.entered.clone();
    gate.store(true, Ordering::SeqCst);

    let registry = Registry::new();
    let service = SnapshotService::with_config(
        core,
        ServiceConfig {
            retry: RetryConfig {
                max_attempts: 2,
                initial_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_micros(200),
                ..RetryConfig::default()
            },
            health: HealthConfig::disabled(), // isolate fan-out from shedding
            ..ServiceConfig::default()
        },
    )
    .with_registry(&registry);

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|lane| {
                let service = &service;
                s.spawn(move || service.client(lane).scan().unwrap_err())
            })
            .collect();

        // One leader is inside the (held) collect; the rest of the fleet
        // parks behind it.
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        while service.coalescing_waiters() < CLIENTS - 1 {
            std::thread::yield_now();
        }

        // Release the collect into the outage: the leader fails, the
        // error fans out, successors re-elect and fail too. Nobody may
        // park forever.
        gate.store(false, Ordering::SeqCst);
        for h in handles {
            let err = h.join().unwrap();
            match err {
                ServiceError::Backend { attempts, error } => {
                    assert!(attempts <= 2, "budget overrun: {attempts}");
                    assert!(error.retryable());
                }
                other => panic!("expected Backend, got {other:?}"),
            }
        }
    });

    assert_eq!(service.coalescing_waiters(), 0, "no waiter may stay parked");
    assert_eq!(service.inflight(), 0, "admission budget fully returned");
    assert!(service.abdications() >= 1, "at least the first leader failed over");
    assert!(
        registry.counter("service.fault.cohort_errors").get() >= 1,
        "someone must have received a fanned-out error"
    );
    assert_eq!(
        registry.counter("service.fault.retry_exhausted").get(),
        CLIENTS as u64,
        "every client exhausted its own budget"
    );
}

// ---------------------------------------------------------------------------
// Shard health gate: trip, shed, half-open probe, recover
// ---------------------------------------------------------------------------

/// Breaker tuning for the deterministic lifecycle tests: the single ramp
/// interval outlives the test, so only recorded successes (never elapsed
/// wall time) walk the half-open recovery ladder down — the priority
/// ordering is asserted exactly, with no timing luck.
fn ladder_health(cooldown: Duration) -> HealthConfig {
    HealthConfig {
        window: 8,
        trip_error_pct: 50,
        min_volume: 2,
        cooldown,
        ramp_successes: 2,
        ramp_tokens: 8,
        ramp_interval: Duration::from_secs(3600),
        jitter_pct: 0,
    }
}

#[test]
fn health_gate_trips_sheds_probes_and_recovers() {
    let cooldown = Duration::from_millis(40);
    let core = ScriptedCore::new(2, 2); // exactly two failures, then healthy
    let registry = Registry::new();
    let service = SnapshotService::with_config(
        core,
        ServiceConfig {
            coalesce: false,
            retry: RetryConfig::no_retries(), // one backend attempt per request
            health: ladder_health(cooldown),
            ..ServiceConfig::default()
        },
    )
    .with_registry(&registry);
    let mut client = service.client(0);

    // Two failing scans put the window at a 100% error rate with the
    // volume guard met, tripping every gated shard's breaker.
    for _ in 0..2 {
        let err = client.scan().unwrap_err();
        assert!(matches!(err, ServiceError::Backend { attempts: 1, .. }), "{err:?}");
    }
    assert!(!service.degraded_shards().is_empty(), "breaker must be open");

    // Open breaker: shed with a retry hint, without touching the backend.
    match client.scan().unwrap_err() {
        ServiceError::Degraded { retry_after, .. } => {
            assert!(retry_after <= cooldown);
        }
        other => panic!("expected Degraded, got {other:?}"),
    }
    assert_eq!(registry.counter("service.fault.degraded_shed").get(), 1);
    assert_eq!(registry.counter("service.load.shed").get(), 1);
    assert_eq!(
        registry.counter("service.fault.backend_errors").get(),
        2,
        "the shed request must not reach the backend"
    );

    // After the cooldown the breaker half-opens into the priority ramp.
    // A full scan is *still* shed — probe-class traffic recovers first.
    std::thread::sleep(cooldown + Duration::from_millis(10));
    match client.scan().unwrap_err() {
        ServiceError::Degraded { .. } => {}
        other => panic!("half-open must admit probes before full scans, got {other:?}"),
    }
    // Walk the recovery ladder per shard: a probe success admits
    // single-shard partials, whose success closes the breaker.
    for shard in 0..2 {
        client.probe_shard(shard).expect("probe-class must be admitted first");
        let partial = client.scan_subset(&[shard]).expect("partials follow a probe success");
        assert_eq!(partial.segments(), &[shard]);
    }
    assert!(service.degraded_shards().is_empty(), "enough successes close the breaker");
    client.scan().expect("closed breaker admits full scans again");
    client.update(0, 7).expect("updates flow again");
    assert_eq!(client.scan().unwrap()[0], 7);
}

// ---------------------------------------------------------------------------
// Healthy-network parity: the ABD-backed service behaves like in-process
// ---------------------------------------------------------------------------

#[test]
fn healthy_abd_service_matches_in_process_semantics() {
    let network = Arc::new(Network::with_config(
        NetworkConfig::new(3).with_retry(fast_abd_retry()),
    ));
    let registry = Registry::new();
    let service = SnapshotService::new(AbdSnapshotCore::new(&network, LANES, 0u64))
        .with_registry(&registry);
    let recorder = Recorder::new(LANES, LANES, 0u64);

    std::thread::scope(|s| {
        for lane in 0..LANES {
            let service = &service;
            let recorder = &recorder;
            s.spawn(move || {
                let pid = ProcessId::new(lane);
                let mut client = service.client(lane);
                for k in 1..=8u64 {
                    let value = ((lane as u64) << 16) | k;
                    let inv = recorder.begin();
                    client.update(lane, value).expect("healthy network");
                    recorder.end_update(pid, lane, value, inv);
                    let inv = recorder.begin();
                    let view = client.scan().expect("healthy network");
                    recorder.end_scan(pid, view.to_vec(), inv);
                    // Partial scans ride the ABD certificates (seq
                    // numbers) exactly like the unbounded in-process core.
                    let partial = client.scan_subset(&[lane]).expect("healthy network");
                    assert_eq!(partial.segments(), &[lane]);
                }
            });
        }
    });

    let history = recorder.finish();
    assert!(check_history(&history).is_linearizable(), "healthy ABD service must linearize");

    // Coalescing happened through the same rendezvous as in-process
    // cores, and no fault path ever fired. Full scans and single-shard
    // partials each take exactly one solo-or-coalesced slot.
    let solo = registry.counter("service.scan.solo").get();
    let coalesced = registry.counter("service.scan.coalesced").get();
    assert_eq!(solo + coalesced, (LANES * 8 * 2) as u64);
    assert_eq!(registry.counter("service.fault.backend_errors").get(), 0);
    assert_eq!(registry.counter("service.fault.degraded_shed").get(), 0);
    assert_eq!(registry.counter("service.coalesce.abdicated").get(), 0);
    assert_eq!(service.abdications(), 0);
    assert_eq!(service.inflight(), 0);
    assert_eq!(service.coalescing_waiters(), 0);
}

// ---------------------------------------------------------------------------
// Slow degradation: the schedule the old consecutive-failure breaker
// provably never trips on
// ---------------------------------------------------------------------------

/// A core whose scans fail every *second* call: a slowly degrading shard
/// at a steady 50% error rate that never fails twice in a row.
struct AlternatingCore {
    inner: UnboundedSnapshot<u64>,
    calls: AtomicUsize,
}

impl AlternatingCore {
    fn new(n: usize) -> Self {
        AlternatingCore { inner: UnboundedSnapshot::new(n, 0u64), calls: AtomicUsize::new(0) }
    }
}

impl TrySnapshotCore<u64> for AlternatingCore {
    fn segments(&self) -> usize {
        SnapshotCore::segments(&self.inner)
    }

    fn lanes(&self) -> usize {
        SnapshotCore::lanes(&self.inner)
    }

    fn single_writer(&self) -> bool {
        SnapshotCore::single_writer(&self.inner)
    }

    fn try_scan(&self, lane: ProcessId) -> Result<(SnapshotView<u64>, ScanStats), CoreError> {
        if self.calls.fetch_add(1, Ordering::SeqCst) % 2 == 1 {
            return Err(CoreError::Unavailable { reason: "degrading shard".into() });
        }
        Ok(self.inner.core_scan(lane))
    }

    fn try_update(
        &self,
        lane: ProcessId,
        segment: usize,
        value: u64,
    ) -> Result<ScanStats, CoreError> {
        Ok(self.inner.core_update(lane, segment, value))
    }

    fn try_certified_read(
        &self,
        reader: ProcessId,
        segment: usize,
    ) -> Result<Option<(u64, u64)>, CoreError> {
        Ok(self.inner.certified_read(reader, segment))
    }
}

#[test]
fn slow_degrading_shard_trips_the_windowed_breaker() {
    // The alternating schedule is the adversary for a consecutive-failure
    // breaker: a success between every failure resets the consecutive
    // count, so any trip threshold of two or more never fires (shown
    // directly on a raw breaker below). The windowed breaker sees the
    // 50% error rate itself and trips at the volume guard.
    let core = AlternatingCore::new(2);
    let registry = Registry::new();
    let service = SnapshotService::with_config(
        core,
        ServiceConfig {
            coalesce: false,
            retry: RetryConfig::no_retries(),
            health: ladder_health(Duration::from_millis(40)),
            ..ServiceConfig::default()
        },
    )
    .with_registry(&registry);
    let recorder = Recorder::new(1, 2, 0u64);
    let pid = ProcessId::new(0);
    let mut client = service.client(0);

    let mut shed = false;
    for _ in 0..32 {
        let inv = recorder.begin();
        match client.scan() {
            Ok(view) => recorder.end_scan(pid, view.to_vec(), inv),
            Err(ServiceError::Backend { .. }) => {}
            Err(ServiceError::Degraded { .. }) => {
                shed = true;
                break;
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert!(shed, "a 50% alternating error rate must trip the windowed breaker");
    assert!(!service.degraded_shards().is_empty());
    assert!(registry.counter("service.load.shed").get() >= 1);

    // Every successful scan still linearizes.
    let history = recorder.finish();
    assert!(check_history(&history).is_linearizable(), "{history:?}");

    // The consecutive-failure counter the windowed breaker replaced
    // provably cannot fire here: the same alternating outcome schedule
    // never stacks two failures, so its count never leaves {0, 1}.
    let raw = Breaker::new(0);
    let cfg = ladder_health(Duration::from_millis(40));
    for t in 0..32u64 {
        raw.on_success(t, &cfg);
        assert_eq!(raw.consecutive(), 0, "success resets the consecutive count");
        raw.on_failure(true, t, &cfg);
        assert_eq!(raw.consecutive(), 1, "the alternating schedule never stacks failures");
    }
    assert!(raw.trips() >= 1, "the window still tripped on the same schedule");
}

// ---------------------------------------------------------------------------
// Deadline soak: parked requests honor their own budget
// ---------------------------------------------------------------------------

#[test]
fn deadline_soak_parked_requests_complete_or_expire_within_budget() {
    const CLIENTS: usize = 6;
    let budget = Duration::from_millis(30);
    let core = ScriptedCore::new(CLIENTS, 0); // healthy once the gate opens
    let gate = core.gate.clone();
    let entered = core.entered.clone();
    gate.store(true, Ordering::SeqCst);

    let registry = Registry::new();
    let service = SnapshotService::with_config(
        core,
        ServiceConfig {
            health: HealthConfig::disabled(),
            ..ServiceConfig::default()
        },
    )
    .with_registry(&registry);

    let results: Mutex<Vec<Result<usize, ServiceError>>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for lane in 0..CLIENTS {
            let service = &service;
            let results = &results;
            s.spawn(move || {
                let r = service.client(lane).scan_within(budget).map(|view| view.len());
                results.lock().unwrap().push(r);
            });
        }
        // One leader is inside the held collect; the rest of the fleet
        // parks behind it, each carrying its own 30ms budget.
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        while service.coalescing_waiters() < CLIENTS - 1 {
            std::thread::yield_now();
        }
        // Hold the collect until every parked waiter has resolved: a
        // waiter honors its *own* deadline — it cannot inherit the
        // leader's open-ended wait, so all of them must return typed
        // `DeadlineExceeded` while the leader is still stuck.
        let wait_start = Instant::now();
        while results.lock().unwrap().len() < CLIENTS - 1 {
            assert!(
                wait_start.elapsed() < Duration::from_secs(20),
                "waiters failed to time out: parked past their budget"
            );
            std::thread::yield_now();
        }
        gate.store(false, Ordering::SeqCst);
    });

    let results = results.into_inner().unwrap();
    assert_eq!(results.len(), CLIENTS);
    let ok = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(ok, 1, "exactly the leader completes once released: {results:?}");
    for r in &results {
        match r {
            Ok(len) => assert_eq!(*len, CLIENTS),
            Err(ServiceError::DeadlineExceeded { attempts, budget: b }) => {
                assert_eq!(*attempts, 1, "one attempt: the parked wait itself");
                assert_eq!(*b, budget);
            }
            Err(other) => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
    assert_eq!(
        registry.counter("service.fault.deadline_exceeded").get(),
        (CLIENTS - 1) as u64
    );
    assert_eq!(service.coalescing_waiters(), 0, "no waiter may stay parked");
    assert_eq!(service.inflight(), 0, "admission budget fully returned");
}

// ---------------------------------------------------------------------------
// Overload soak: hot-shard skew, blackout shedding, probe-first recovery
// ---------------------------------------------------------------------------

#[test]
fn overload_soak_flags_hot_shard_sheds_and_recovers_probe_first() {
    const SEGMENTS: usize = 4;
    let cooldown = Duration::from_millis(20);
    let network = Arc::new(Network::with_config(
        NetworkConfig::new(REPLICAS)
            .with_jitter(77)
            .with_op_timeout(Duration::from_millis(5))
            .with_retry(fast_abd_retry()),
    ));
    let registry = Registry::new();
    let service = SnapshotService::with_config(
        AbdSnapshotCore::new(&network, SEGMENTS, 0u64),
        ServiceConfig {
            retry: RetryConfig {
                max_attempts: 2,
                initial_backoff: Duration::from_micros(200),
                max_backoff: Duration::from_millis(2),
                multiplier: 2,
                deadline: Duration::from_secs(30),
            },
            health: ladder_health(cooldown),
            ..ServiceConfig::default()
        },
    )
    .with_registry(&registry);

    // Phase 1 — hot-shard skew: every operation lands on shard 0 (the
    // writer hammers segment 0, readers take single-shard partials of
    // it). The load report must flag the skew and stretch shard 0's
    // shed hints so a shed cohort spreads out.
    let mut writer = service.client(0);
    for k in 1..=40u64 {
        writer.update(0, k).expect("healthy network");
    }
    for lane in 1..SEGMENTS {
        let mut reader = service.client(lane);
        for _ in 0..10 {
            let partial = reader.scan_subset(&[0]).expect("healthy network");
            assert_eq!(partial.segments(), &[0]);
        }
    }
    let report = service.load_report();
    assert_eq!(report.hot_shard, Some(0), "all traffic on shard 0: {report:?}");
    assert!(report.is_skewed());
    assert!(report.skew_permille >= 2000);
    assert_eq!(
        report.retry_after_hint(0, cooldown),
        cooldown * 4,
        "a maximally skewed hot shard stretches hints 4x"
    );
    assert_eq!(report.retry_after_hint(1, cooldown), cooldown, "cold shards keep the base hint");
    assert_eq!(registry.gauge("service.load.hot_shard").get(), 0);
    assert!(registry.gauge("service.load.shard0.hits").get() >= 64);

    // Phase 2 — blackout: a majority partition takes the quorum away.
    // Full scans fail typed, the error windows fill, and every shard's
    // breaker trips; once open, requests shed without touching the
    // backend.
    let blackout = {
        let network = Arc::clone(&network);
        std::thread::spawn(move || {
            Nemesis::new()
                .phase(
                    vec![NemesisEvent::Partition { replicas: vec![0, 1, 2], symmetric: true }],
                    Dwell::Millis(250),
                )
                .phase(vec![NemesisEvent::Heal], Dwell::Millis(5))
                .run(&network)
        })
    };
    let mut all_tripped = false;
    let trip_start = Instant::now();
    let mut k = 0u64;
    while trip_start.elapsed() < Duration::from_secs(5) {
        k += 1;
        // Full scans stop reaching the backend the moment the *first*
        // shard trips (the gate sheds them), so shard 0 — whose window
        // still holds the hammer phase's successes — needs its own
        // single-shard evidence: updates gate only shard 0.
        match writer.update(0, 100 + k) {
            Ok(()) => {} // raced the partition onset
            Err(ServiceError::Backend { .. } | ServiceError::Degraded { .. }) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
        match writer.scan() {
            Ok(_) => {}
            Err(ServiceError::Backend { .. }) => {}
            Err(ServiceError::Degraded { .. }) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
        if service.degraded_shards().len() == SEGMENTS {
            all_tripped = true;
            break;
        }
    }
    assert!(all_tripped, "the blackout must trip every shard's breaker");
    // With every breaker open (or at best half-open to probes), the next
    // full scan sheds at the gate without touching the backend.
    match writer.scan().unwrap_err() {
        ServiceError::Degraded { .. } => {}
        other => panic!("open breakers must shed, got {other:?}"),
    }
    assert!(registry.counter("service.load.shed").get() >= 1);
    blackout.join().unwrap();
    assert!(!network.poisoned(), "a replica thread panicked");

    // Phase 3 — probe-first recovery: after the cooldown the breakers
    // half-open, but a full scan is *still* shed (rank too low for a
    // fresh ramp). Probe-class traffic goes first; each shard's probe
    // success admits its partial scans, whose success closes it.
    std::thread::sleep(cooldown + Duration::from_millis(5));
    match writer.scan().unwrap_err() {
        ServiceError::Degraded { .. } => {}
        other => panic!("half-open must shed full scans before probes ran, got {other:?}"),
    }
    for shard in 0..SEGMENTS {
        writer.probe_shard(shard).expect("probe-class must be admitted first");
        let partial = writer.scan_subset(&[shard]).expect("partials follow a probe success");
        assert_eq!(partial.segments(), &[shard]);
    }
    assert!(service.degraded_shards().is_empty(), "the ramp must close every breaker");
    let view = writer.scan().expect("full scans flow again after recovery");
    assert!(view[0] >= 40, "segment 0 must hold a write from the hammer or blackout phase");
    assert_eq!(service.coalescing_waiters(), 0, "no waiter may stay parked");
    assert_eq!(service.inflight(), 0, "admission budget fully returned");
}
