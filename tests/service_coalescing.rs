//! The service layer's coalescing claims, checked end to end:
//!
//! 1. **It actually saves work.** With an instrumented backend counting
//!    primitive register operations, a staged cohort of `k + 1`
//!    concurrent scans costs exactly **two** underlying collects — the
//!    in-flight leader's (which nobody else may accept, since its reads
//!    may predate their requests) plus one more that serves the whole
//!    parked cohort — strictly fewer register reads than `k + 1` solo
//!    scans.
//!
//! 2. **Backpressure is typed and observable.** With the in-flight
//!    budget filled by a blocked leader and a parked joiner, the next
//!    request is rejected with `ServiceError::Overloaded` (and counted),
//!    not queued.
//!
//! 3. **It stays linearizable.** A seeded property test drives random
//!    concurrent update/scan plans through the service twice — coalescing
//!    on and off — recording real-time intervals, and requires the Wing &
//!    Gong checker to accept both histories. Coalescing may change *which*
//!    collect a scan returns, never whether the history linearizes.
//!
//! 4. **The generation rule holds under writers.** An adversarially
//!    staged schedule completes a collect, then lets a writer finish an
//!    update, then sends in a new scan — all before the collect
//!    publishes. The new scan's request started after the update
//!    completed, so the parked pre-update view must never be handed to
//!    it: the coalescer forces a fresh collect that contains the write.
//!
//! 5. **Leader failures are accounted as abdications.** With a scripted
//!    flaky backend, failed collect leaderships count toward
//!    `service.coalesce.abdicated` — distinct from `service.scan.solo`
//!    (successful leads) and `service.scan.coalesced` (joins).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use proptest::test_runner::{Config, RngAlgorithm, TestRng, TestRunner};
use snapshot_core::{
    CoreError, ScanStats, SnapshotCore, SnapshotView, TrySnapshotCore, UnboundedSnapshot,
};
use snapshot_lin::{check_history, Recorder, WgResult};
use snapshot_obs::Registry;
use snapshot_registers::{EpochBackend, Instrumented, OpCounters, ProcessId};
use snapshot_service::{HealthConfig, RetryConfig, ServiceConfig, ServiceError, SnapshotService};

// ---------------------------------------------------------------------------
// A core wrapper that can hold a scan open at a controlled point
// ---------------------------------------------------------------------------

/// Delegates to the wrapped core, but `core_scan` parks (spinning) while
/// `blocked` is set and counts entries — the staging handle the
/// deterministic cohort tests need.
struct Blocking<C> {
    inner: C,
    blocked: Arc<AtomicBool>,
    scans_entered: Arc<AtomicUsize>,
}

impl<V, C: SnapshotCore<V>> SnapshotCore<V> for Blocking<C> {
    // Fully qualified: with both `SnapshotCore` and `TrySnapshotCore`
    // implemented, bare `self.inner.segments()` is ambiguous.
    fn segments(&self) -> usize {
        SnapshotCore::segments(&self.inner)
    }

    fn lanes(&self) -> usize {
        SnapshotCore::lanes(&self.inner)
    }

    fn single_writer(&self) -> bool {
        SnapshotCore::single_writer(&self.inner)
    }

    fn core_scan(&self, lane: ProcessId) -> (SnapshotView<V>, ScanStats) {
        self.scans_entered.fetch_add(1, Ordering::SeqCst);
        while self.blocked.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        self.inner.core_scan(lane)
    }

    fn core_update(&self, lane: ProcessId, segment: usize, value: V) -> ScanStats {
        self.inner.core_update(lane, segment, value)
    }

    fn certified_read(&self, reader: ProcessId, segment: usize) -> Option<(V, u64)> {
        self.inner.certified_read(reader, segment)
    }
}

snapshot_core::impl_try_snapshot_core!([V, C: SnapshotCore<V>] V, Blocking<C>);

type CountedUnbounded = UnboundedSnapshot<u64, Instrumented<EpochBackend>>;

fn counted_object(n: usize) -> (CountedUnbounded, Arc<OpCounters>) {
    let counters = Arc::new(OpCounters::new(n));
    let backend = Instrumented::new(EpochBackend::new()).with_counters(counters.clone());
    (UnboundedSnapshot::with_backend(n, 0u64, &backend), counters)
}

/// Register reads one service-routed scan costs on an idle object (handle
/// restore plus a clean double collect) — measured, not assumed.
fn reads_per_solo_scan(n: usize) -> u64 {
    let (object, counters) = counted_object(n);
    let service = SnapshotService::new(object);
    service.client(0).scan().expect("within budget");
    let reads = counters.total().reads;
    assert!(reads > 0, "instrumentation must see the collect");
    reads
}

#[test]
fn coalesced_cohort_costs_two_collects_not_k() {
    let n = 4;
    let followers = 3; // staged cohort size, besides the in-flight leader
    let solo_cost = reads_per_solo_scan(n);

    let (object, counters) = counted_object(n);
    let blocked = Arc::new(AtomicBool::new(true));
    let scans_entered = Arc::new(AtomicUsize::new(0));
    let registry = Registry::new();
    let service = SnapshotService::new(Blocking {
        inner: object,
        blocked: blocked.clone(),
        scans_entered: scans_entered.clone(),
    })
    .with_registry(&registry);

    let mut stats = Vec::new();
    std::thread::scope(|s| {
        // The leader: elected for generation 1, held open inside its
        // collect by the blocked wrapper.
        let leader = s.spawn(|| {
            let mut client = service.client(0);
            client.scan_with_stats().expect("within budget").1
        });
        while scans_entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }

        // The cohort: they arrive while collect 1 is in flight, so the
        // generation rule forbids them from accepting it (its reads may
        // precede their requests) and they park.
        let cohort: Vec<_> = (1..=followers)
            .map(|lane| {
                let service = &service;
                s.spawn(move || {
                    let mut client = service.client(lane);
                    client.scan_with_stats().expect("within budget").1
                })
            })
            .collect();
        while service.coalescing_waiters() < followers {
            std::thread::yield_now();
        }

        // Release: the leader publishes generation 1; exactly one parked
        // follower is elected for generation 2 and its collect serves the
        // rest of the cohort.
        blocked.store(false, Ordering::SeqCst);
        stats.push(leader.join().unwrap());
        for f in cohort {
            stats.push(f.join().unwrap());
        }
    });

    // Work accounting: 2 collects total for 1 + followers scans.
    assert_eq!(scans_entered.load(Ordering::SeqCst), 2, "exactly two underlying collects");
    let total_reads = counters.total().reads;
    assert_eq!(total_reads, 2 * solo_cost, "two collects' worth of register reads");
    assert!(
        total_reads < (1 + followers as u64) * solo_cost,
        "coalescing must beat {} solo scans ({} reads vs {})",
        1 + followers,
        total_reads,
        (1 + followers as u64) * solo_cost
    );

    // Outcome accounting: the leader and one elected follower ran
    // collects; the remaining followers joined generation 2 and did no
    // register operations of their own.
    let leaders: Vec<_> = stats.iter().filter(|s| !s.coalesced).collect();
    let joined: Vec<_> = stats.iter().filter(|s| s.coalesced).collect();
    assert_eq!(leaders.len(), 2);
    assert_eq!(joined.len(), followers - 1);
    for s in &joined {
        assert_eq!(s.generation, 2, "the cohort is served by the successor collect");
        assert_eq!(s.underlying, ScanStats::default(), "joined scans touch no registers");
    }
    assert_eq!(registry.counter("service.scan.solo").get(), 2);
    assert_eq!(registry.counter("service.scan.coalesced").get(), followers as u64 - 1);
}

#[test]
fn full_budget_rejects_with_overloaded() {
    let (object, _counters) = counted_object(3);
    let blocked = Arc::new(AtomicBool::new(true));
    let scans_entered = Arc::new(AtomicUsize::new(0));
    let registry = Registry::new();
    let service = SnapshotService::with_config(
        Blocking { inner: object, blocked: blocked.clone(), scans_entered: scans_entered.clone() },
        ServiceConfig { max_inflight: 2, ..ServiceConfig::default() },
    )
    .with_registry(&registry);

    std::thread::scope(|s| {
        // Slot 1: a leader held open inside its collect.
        let leader = s.spawn(|| service.client(0).scan());
        while scans_entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        // Slot 2: a joiner parked in the rendezvous. Parked scans hold
        // their admission slot — that is the backpressure model: waiting
        // work counts against the budget.
        let joiner = s.spawn(|| service.client(1).scan());
        while service.coalescing_waiters() == 0 {
            std::thread::yield_now();
        }
        assert_eq!(service.inflight(), 2);

        // The budget is full: the next request is rejected, not queued.
        let err = service.client(2).scan().unwrap_err();
        assert_eq!(err, ServiceError::Overloaded { inflight: 2, budget: 2 });
        assert_eq!(registry.counter("service.overloaded").get(), 1);

        blocked.store(false, Ordering::SeqCst);
        assert!(leader.join().unwrap().is_ok());
        assert!(joiner.join().unwrap().is_ok());
    });

    // Slots drain once the requests finish.
    assert_eq!(service.inflight(), 0);
    assert!(service.client(2).scan().is_ok());
}

// ---------------------------------------------------------------------------
// Linearizability under coalescing (seeded property test)
// ---------------------------------------------------------------------------

/// One thread's scripted operation: `true` = update (with a fresh value),
/// `false` = full scan.
type Plan = Vec<bool>;

/// Runs `plans` (one per lane) concurrently through a service over an
/// unbounded snapshot, recording real-time intervals, and returns the
/// Wing & Gong verdict.
fn run_service_history(plans: &[Plan], coalesce: bool) -> WgResult {
    let n = plans.len();
    let service = SnapshotService::with_config(
        UnboundedSnapshot::new(n, 0u64),
        ServiceConfig { coalesce, ..ServiceConfig::default() },
    );
    let recorder = Recorder::new(n, n, 0u64);
    std::thread::scope(|s| {
        for (lane, plan) in plans.iter().enumerate() {
            let service = &service;
            let recorder = &recorder;
            s.spawn(move || {
                let pid = ProcessId::new(lane);
                let mut client = service.client(lane);
                for (k, &is_update) in plan.iter().enumerate() {
                    if is_update {
                        let value = ((lane as u64) << 32) | (k as u64 + 1);
                        let inv = recorder.begin();
                        client.update(lane, value).expect("own segment, within budget");
                        recorder.end_update(pid, lane, value, inv);
                    } else {
                        let inv = recorder.begin();
                        let view = client.scan().expect("within budget");
                        recorder.end_scan(pid, view.to_vec(), inv);
                    }
                }
            });
        }
    });
    check_history(&recorder.finish())
}

// ---------------------------------------------------------------------------
// The generation rule under writers (adversarial staging)
// ---------------------------------------------------------------------------

/// Delegates to the wrapped core, but `core_scan` completes the inner
/// collect and then parks (spinning) *before returning* while `held` is
/// set. This stages the adversarial window the generation rule exists
/// for: a finished-but-unpublished collect whose reads all predate
/// whatever happens during the hold.
struct HoldAfterCollect<C> {
    inner: C,
    held: Arc<AtomicBool>,
    collects_done: Arc<AtomicUsize>,
}

impl<V, C: SnapshotCore<V>> SnapshotCore<V> for HoldAfterCollect<C> {
    // Fully qualified: with both `SnapshotCore` and `TrySnapshotCore`
    // implemented, bare `self.inner.segments()` is ambiguous.
    fn segments(&self) -> usize {
        SnapshotCore::segments(&self.inner)
    }

    fn lanes(&self) -> usize {
        SnapshotCore::lanes(&self.inner)
    }

    fn single_writer(&self) -> bool {
        SnapshotCore::single_writer(&self.inner)
    }

    fn core_scan(&self, lane: ProcessId) -> (SnapshotView<V>, ScanStats) {
        let out = self.inner.core_scan(lane);
        self.collects_done.fetch_add(1, Ordering::SeqCst);
        while self.held.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        out
    }

    fn core_update(&self, lane: ProcessId, segment: usize, value: V) -> ScanStats {
        self.inner.core_update(lane, segment, value)
    }

    fn certified_read(&self, reader: ProcessId, segment: usize) -> Option<(V, u64)> {
        self.inner.certified_read(reader, segment)
    }
}

snapshot_core::impl_try_snapshot_core!([V, C: SnapshotCore<V>] V, HoldAfterCollect<C>);

#[test]
fn generation_rule_never_hands_out_a_pre_request_view_under_writers() {
    const MARKER: u64 = 0xFEED;
    let held = Arc::new(AtomicBool::new(true));
    let collects_done = Arc::new(AtomicUsize::new(0));
    let service = SnapshotService::new(HoldAfterCollect {
        inner: UnboundedSnapshot::new(3, 0u64),
        held: held.clone(),
        collects_done: collects_done.clone(),
    });

    std::thread::scope(|s| {
        // Leader: its collect observes segment 1 = 0, completes, and is
        // held open before publishing.
        let leader = s.spawn(|| service.client(0).scan().expect("within budget"));
        while collects_done.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }

        // A writer finishes an update *while the stale view is parked*.
        // The update's embedded scan is direct (not via core_scan), so it
        // is not held.
        service.client(1).update(1, MARKER).expect("own segment");

        // A scan request arriving now starts after the update completed:
        // linearizability demands its view contain the marker, and the
        // leader's parked view does not.
        let late = s.spawn(|| {
            let mut client = service.client(2);
            client.scan_with_stats().expect("within budget")
        });
        while service.coalescing_waiters() == 0 {
            std::thread::yield_now();
        }

        // Publish the stale view. The late scan must reject it (its
        // generation is not newer than the late scan's entry) and run a
        // fresh collect instead.
        held.store(false, Ordering::SeqCst);
        let stale = leader.join().unwrap();
        assert_eq!(stale[1], 0, "the leader's own pre-update view is fine for the leader");
        let (fresh, stats) = late.join().unwrap();
        assert_eq!(
            fresh[1], MARKER,
            "coalescer handed a pre-request view to a post-update scan"
        );
        assert!(!stats.coalesced, "the late scan must have led its own collect");
        assert_eq!(stats.generation, 2);
    });
    assert_eq!(collects_done.load(Ordering::SeqCst), 2, "exactly one extra collect");
}

// ---------------------------------------------------------------------------
// Abdication accounting with a scripted flaky backend
// ---------------------------------------------------------------------------

/// A fallible core that fails its first `failures` scans with a retryable
/// error, then recovers. Implements `TrySnapshotCore` directly (it is not
/// a `SnapshotCore` at all — fallibility is native, not lifted).
struct Flaky {
    inner: UnboundedSnapshot<u64>,
    remaining: AtomicUsize,
}

impl TrySnapshotCore<u64> for Flaky {
    // Fully qualified: with both `SnapshotCore` and `TrySnapshotCore`
    // implemented, bare `self.inner.segments()` is ambiguous.
    fn segments(&self) -> usize {
        SnapshotCore::segments(&self.inner)
    }

    fn lanes(&self) -> usize {
        SnapshotCore::lanes(&self.inner)
    }

    fn single_writer(&self) -> bool {
        SnapshotCore::single_writer(&self.inner)
    }

    fn try_scan(&self, lane: ProcessId) -> Result<(SnapshotView<u64>, ScanStats), CoreError> {
        if self
            .remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |r| r.checked_sub(1))
            .is_ok()
        {
            return Err(CoreError::Unavailable { reason: "scripted outage".into() });
        }
        Ok(self.inner.core_scan(lane))
    }

    fn try_update(
        &self,
        lane: ProcessId,
        segment: usize,
        value: u64,
    ) -> Result<ScanStats, CoreError> {
        Ok(self.inner.core_update(lane, segment, value))
    }

    fn try_certified_read(
        &self,
        reader: ProcessId,
        segment: usize,
    ) -> Result<Option<(u64, u64)>, CoreError> {
        Ok(self.inner.certified_read(reader, segment))
    }
}

#[test]
fn leader_failures_count_as_abdications_not_solo_leads() {
    let registry = Registry::new();
    let service = SnapshotService::with_config(
        Flaky { inner: UnboundedSnapshot::new(2, 0u64), remaining: AtomicUsize::new(2) },
        ServiceConfig {
            retry: RetryConfig {
                max_attempts: 3,
                initial_backoff: std::time::Duration::from_micros(50),
                ..RetryConfig::default()
            },
            health: HealthConfig::disabled(),
            ..ServiceConfig::default()
        },
    )
    .with_registry(&registry);

    let mut client = service.client(0);
    let (view, stats) = client.scan_with_stats().expect("third attempt succeeds");
    assert_eq!(view.len(), 2);
    assert_eq!(stats.retries, 2, "two failed attempts before the success");

    // Two failed leaderships, one successful lead, zero joins: the
    // abdication counter is disjoint from the solo/coalesced pair.
    assert_eq!(registry.counter("service.coalesce.abdicated").get(), 2);
    assert_eq!(registry.counter("service.scan.solo").get(), 1);
    assert_eq!(registry.counter("service.scan.coalesced").get(), 0);
    assert_eq!(registry.counter("service.fault.backend_errors").get(), 2);
    assert_eq!(registry.counter("service.fault.retries").get(), 2);
    assert_eq!(registry.counter("service.fault.retry_exhausted").get(), 0);
    assert_eq!(service.abdications(), 2);

    // The budget is finite: with the outage longer than max_attempts the
    // error surfaces typed, and exhaustion is counted.
    service.backing().remaining.store(10, Ordering::SeqCst);
    let err = client.scan().unwrap_err();
    assert!(matches!(err, ServiceError::Backend { attempts: 3, .. }), "{err:?}");
    assert_eq!(registry.counter("service.fault.retry_exhausted").get(), 1);
}

#[test]
fn coalesced_and_solo_histories_both_linearize() {
    // Seeded by hand so every run explores the same plans: the point is a
    // reproducible certificate, not fresh randomness per CI run.
    let rng = TestRng::from_seed(RngAlgorithm::ChaCha, &[0x5e; 32]);
    let mut runner = TestRunner::new_with_rng(Config::with_cases(24), rng);
    let strategy = pvec(pvec(any::<bool>(), 1..8), 3);
    runner
        .run(&strategy, |plans| {
            for coalesce in [true, false] {
                let verdict = run_service_history(&plans, coalesce);
                prop_assert!(
                    matches!(verdict, WgResult::Linearizable { .. }),
                    "coalesce={coalesce}: history rejected: {verdict:?} (plans {plans:?})"
                );
            }
            Ok(())
        })
        .expect("all service histories must be accepted by Wing & Gong");
}
