//! Exhaustive model checking of the MWMR-from-SWMR register construction
//! itself: every schedule of small read/write workloads over gated
//! single-writer cells, each history checked against the sequential
//! register specification. This discharges the atomicity assumption the
//! compound construction of Section 6 rests on.

use std::sync::Arc;

use parking_lot::Mutex;
use snapshot_lin::{check_linearizable, RegisterOp, RegisterSpec, WgOp};
use snapshot_registers::{EpochBackend, Instrumented, MwmrFromSwmr, ProcessId, Register};
use snapshot_sim::{ExploreLimits, Explorer, RandomPolicy, Sim, SimConfig};

#[derive(Clone, Copy, Debug)]
enum Step {
    Write(u64),
    Read,
}

/// Runs the scripts over a gated `MwmrFromSwmr` register under `policy`;
/// returns the recorded register history.
fn run_register(
    scripts: &[Vec<Step>],
    policy: &mut dyn snapshot_sim::SchedulePolicy,
) -> Result<Vec<WgOp<RegisterOp<u64>>>, String> {
    let n = scripts.len();
    let sim = Sim::new(n);
    let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
    let reg = MwmrFromSwmr::new(&backend, n, 0u64);
    let clock = std::sync::atomic::AtomicU64::new(0);
    let ops: Arc<Mutex<Vec<WgOp<RegisterOp<u64>>>>> = Arc::new(Mutex::new(Vec::new()));

    let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
    for (i, script) in scripts.iter().enumerate() {
        let reg = &reg;
        let clock = &clock;
        let ops = Arc::clone(&ops);
        let script = script.clone();
        bodies.push(Box::new(move || {
            use std::sync::atomic::Ordering;
            let pid = ProcessId::new(i);
            for step in script {
                match step {
                    Step::Write(value) => {
                        let inv = clock.fetch_add(1, Ordering::SeqCst);
                        reg.write(pid, value);
                        let res = clock.fetch_add(1, Ordering::SeqCst);
                        ops.lock().push(WgOp {
                            pid,
                            inv,
                            res: Some(res),
                            op: RegisterOp::Write { value },
                        });
                    }
                    Step::Read => {
                        let inv = clock.fetch_add(1, Ordering::SeqCst);
                        let value = reg.read(pid);
                        let res = clock.fetch_add(1, Ordering::SeqCst);
                        ops.lock().push(WgOp {
                            pid,
                            inv,
                            res: Some(res),
                            op: RegisterOp::Read { value },
                        });
                    }
                }
            }
        }));
    }
    sim.run(policy, SimConfig::default(), bodies)
        .map_err(|e| e.to_string())?;
    Ok(Arc::try_unwrap(ops).unwrap().into_inner())
}

fn explore(scripts: Vec<Vec<Step>>, max_runs: u64) -> (u64, bool) {
    let mut runs = 0u64;
    let outcome = Explorer::new(ExploreLimits {
        max_runs,
        max_depth: 4096,
    })
    .explore::<String>(|policy| {
        let ops = run_register(&scripts, policy)?;
        if !check_linearizable(&RegisterSpec::new(0u64), &ops).is_linearizable() {
            return Err(format!("register history not linearizable: {ops:?}"));
        }
        runs += 1;
        Ok(())
    })
    .unwrap_or_else(|e| panic!("exploration failed: {e}"));
    (runs, outcome.is_complete())
}

#[test]
fn write_vs_read_fully_explored() {
    let (runs, complete) = explore(
        vec![vec![Step::Write(7)], vec![Step::Read]],
        100_000,
    );
    assert!(complete, "covered only {runs} runs");
    assert!(runs > 10);
}

#[test]
fn write_vs_write_vs_read_budgeted() {
    // The new/old-inversion scenario needs two writers racing a reader.
    let (runs, _) = explore(
        vec![
            vec![Step::Write(1)],
            vec![Step::Write(2)],
            vec![Step::Read, Step::Read],
        ],
        15_000,
    );
    assert!(runs > 4_000, "covered only {runs} runs");
}

#[test]
fn double_read_monotonicity_fully_explored() {
    // A reader reading twice against one writer: the second read must not
    // regress (this is exactly what the write-back phase guarantees).
    let (runs, complete) = explore(
        vec![vec![Step::Write(9)], vec![Step::Read, Step::Read]],
        100_000,
    );
    assert!(complete, "covered only {runs} runs");
}

#[test]
fn random_deep_schedules_stay_linearizable() {
    let scripts = vec![
        vec![Step::Write(1), Step::Read, Step::Write(3)],
        vec![Step::Read, Step::Write(2), Step::Read],
        vec![Step::Read, Step::Read],
    ];
    for seed in 0..200u64 {
        let ops = run_register(&scripts, &mut RandomPolicy::seeded(seed)).unwrap();
        assert!(
            check_linearizable(&RegisterSpec::new(0u64), &ops).is_linearizable(),
            "seed {seed}: {ops:?}"
        );
    }
}
