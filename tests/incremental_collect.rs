//! Equivalence of the incremental (clone-free) collect path with the
//! original full-clone collect path.
//!
//! The incremental path caches the previous pass in a
//! [`TrackedCollect`] and re-reads (clones) only the registers whose
//! version hints moved, so it must be *observationally identical* to the
//! full path: same register-operation sequence under the gated
//! simulator, same recorded histories, same views, same linearizability
//! verdicts. These tests pin that contract three ways:
//!
//! 1. a direct property test that [`TrackedCollect::advance`] always
//!    lands on exactly the state a fresh [`collect`] would return, over
//!    random write/advance/invalidate interleavings, with and without
//!    version hints and key trust;
//! 2. property tests running the *same* random scripts under the *same*
//!    seeded adversarial schedule with the incremental path switched on
//!    and off, asserting the recorded histories are bit-identical
//!    (possible because `InstrumentedCell` hides version hints, so both
//!    modes execute the same gated operation sequence);
//! 3. threaded runs of the incremental path on the real (non-gated)
//!    backend, where version probes genuinely skip clones, checked for
//!    linearizability.
//!
//! The property tests have a blind spot the deterministic tests below
//! close: under the gated simulator `InstrumentedCell` hides version
//! hints (that is what makes the two modes' operation sequences
//! comparable), and the direct ground-truth property uses `u64` cells
//! whose key *is* the value — so neither can reach the interaction of
//! key-ABA with the version cache. `key_aba_with_trusted_keys_*` drives
//! exactly that corner against real `EpochCell`s with composite records
//! (key ≠ payload): three same-key writes between two trusted advances,
//! asserting the cache is never version-certified while stale.

use proptest::prelude::*;
use snapshot_bench::harness::{
    mw_contended_scripts, mw_disjoint_scripts, run_mw_sim, run_sw_sim, run_sw_threaded,
    sw_random_scripts, GatedBackend, SwStep,
};
use snapshot_core::{
    BoundedSnapshot, MultiWriterSnapshot, SwSnapshot, SwSnapshotHandle, UnboundedSnapshot,
};
use snapshot_lin::{check_history, check_intervals, History};
use snapshot_registers::{
    collect, Backend, EpochBackend, MutexBackend, ProcessId, Register, TrackedCollect,
};
use snapshot_sim::{RandomPolicy, SimConfig};

// ---------------------------------------------------------------------------
// 1. TrackedCollect vs. ground-truth collect()
// ---------------------------------------------------------------------------

/// One step of the random single-threaded driver for the direct property.
#[derive(Clone, Copy, Debug)]
enum Act {
    /// Overwrite register `reg` with `val`.
    Write { reg: usize, val: u64 },
    /// Run one incremental pass and check it against a full collect.
    Advance,
    /// Drop the cache, forcing the next pass to re-prime.
    Invalidate,
}

fn act_strategy(regs: usize) -> impl Strategy<Value = Act> {
    prop_oneof![
        3 => (0..regs, any::<u64>()).prop_map(|(reg, val)| Act::Write { reg, val }),
        3 => Just(Act::Advance),
        1 => Just(Act::Invalidate),
    ]
}

/// Runs the act script over cells from `backend`, asserting after every
/// pass that the incremental cache equals a fresh full collect.
fn check_against_ground_truth<B: Backend>(backend: &B, acts: &[Act], regs: usize, trust: bool) {
    let cells: Vec<B::Cell<u64>> = (0..regs).map(|_| backend.cell(0u64)).collect();
    let mut tracked: TrackedCollect<u64> = TrackedCollect::new();
    let pid = ProcessId::new(0);
    for act in acts {
        match *act {
            Act::Write { reg, val } => cells[reg].write(pid, val),
            Act::Advance => {
                let _ = tracked.advance(pid, &cells, trust, |a, b| a == b);
                assert_eq!(
                    tracked.records(),
                    collect(pid, &cells).as_slice(),
                    "incremental pass diverged from full collect (trust_keys={trust})"
                );
            }
            Act::Invalidate => tracked.invalidate(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With version hints (epoch cells), without them (mutex cells), with
    /// keys trusted and not: every advance must land on the full-collect
    /// state.
    #[test]
    fn tracked_collect_always_matches_full_collect(
        acts in proptest::collection::vec(act_strategy(4), 1..40),
        trust in any::<bool>(),
    ) {
        check_against_ground_truth(&EpochBackend::new(), &acts, 4, trust);
        check_against_ground_truth(&MutexBackend::new(), &acts, 4, trust);
    }
}

// ---------------------------------------------------------------------------
// 1b. Key ABA vs. the version cache (deterministic, real version hints)
// ---------------------------------------------------------------------------

/// A record shaped like the bounded algorithms' registers: a small key
/// that toggles and can recur (`.0`) alongside a payload (`.1`) that
/// does not. `same` compares only the key, as the bounded `moved`
/// predicates do.
type Composite = (u8, u64);

fn same_key(a: &Composite, b: &Composite) -> bool {
    a.0 == b.0
}

/// The review scenario behind the `trust_keys` soundness note on
/// [`TrackedCollect`]: three completed same-slot writes between two
/// trusted advances restore the key with a different payload. The
/// trusted pass may keep the stale record (within a double collect the
/// algorithms' handshakes catch the movement), but the *next* advance
/// must re-read the slot — the stale record must never ride a
/// `ReusedByVersion` out of the window.
#[test]
fn key_aba_with_trusted_keys_is_repaired_by_the_next_advance() {
    let backend = EpochBackend::new();
    let cells: Vec<_> = (0..3).map(|_| backend.cell((0u8, 0u64))).collect();
    let p = ProcessId::new(0);
    let mut tc: TrackedCollect<Composite> = TrackedCollect::new();

    tc.advance(p, &cells, true, same_key); // prime: cache (0, 0) per slot

    // Three writes to slot 1, ending on the cached key 0 with a payload
    // the cache has never seen.
    cells[1].write(p, (0, 11));
    cells[1].write(p, (1, 22));
    cells[1].write(p, (0, 33));

    // Trusted pass (pass-b of a double collect): the key matches, so the
    // clone is skipped and the cache legitimately still holds (0, 0).
    let pass = tc.advance(p, &cells, true, same_key);
    assert_eq!(pass.cloned, 0);
    assert_eq!(tc.records()[1], (0, 0));

    // Memory is now quiescent. The next advance — trusted or not — must
    // re-read slot 1 rather than certify the stale record by version.
    let pass = tc.advance(p, &cells, true, same_key);
    assert_eq!(pass.cloned, 0, "key reuse again: record still stale by design");
    let pass = tc.advance(p, &cells, false, same_key);
    assert_eq!(pass.cloned, 1, "untrusted pass must re-validate the moved slot");
    assert_eq!(tc.records(), collect(p, &cells).as_slice());
    assert_eq!(tc.records()[1], (0, 33));
}

/// Same shape, driven through a snapshot-level lens: after a scan-like
/// trusted/untrusted pass pair, a fresh pair over quiescent memory must
/// land on the registers' true contents — a stale cache certified by a
/// current version would instead return (0, 0) forever.
#[test]
fn key_aba_quiescent_scan_sees_completed_writes() {
    let backend = EpochBackend::new();
    let cells: Vec<_> = (0..2).map(|_| backend.cell((0u8, 0u64))).collect();
    let p = ProcessId::new(0);
    let mut tc: TrackedCollect<Composite> = TrackedCollect::new();

    // Scan 1, pass a (untrusted) …
    tc.advance(p, &cells, false, same_key);
    // … three updates complete inside the double collect …
    cells[0].write(p, (0, 2));
    cells[0].write(p, (1, 3));
    cells[0].write(p, (0, 4));
    // … scan 1, pass b (trusted): key restored, clone skipped.
    tc.advance(p, &cells, true, same_key);

    // Scan 2 over quiescent memory: pass a then pass b. Every value it
    // can return must reflect the writes that completed before it began.
    tc.advance(p, &cells, false, same_key);
    let pass_b = tc.advance(p, &cells, true, same_key);
    assert!(pass_b.clean(), "quiescent double collect must succeed");
    assert_eq!(tc.records(), collect(p, &cells).as_slice());
    assert_eq!(tc.records()[0], (0, 4));
}

// ---------------------------------------------------------------------------
// 2. Incremental vs. full under the gated simulator
// ---------------------------------------------------------------------------

/// Runs the same single-writer scripts under the same seeded schedule
/// with the incremental path off and on; returns both histories.
fn sw_both_modes<O, F>(
    n: usize,
    scripts: &[Vec<SwStep>],
    sched_seed: u64,
    build: F,
) -> (History<u64>, History<u64>)
where
    O: SwSnapshot<u64>,
    F: Fn(&GatedBackend, bool) -> O,
{
    let (full, _) = run_sw_sim(
        n,
        scripts,
        &mut RandomPolicy::seeded(sched_seed),
        SimConfig::default(),
        |b| build(b, false),
    )
    .expect("full-mode simulation completes");
    let (incremental, _) = run_sw_sim(
        n,
        scripts,
        &mut RandomPolicy::seeded(sched_seed),
        SimConfig::default(),
        |b| build(b, true),
    )
    .expect("incremental-mode simulation completes");
    (full, incremental)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Unbounded construction: identical scripts + identical adversarial
    /// schedule must record bit-identical histories in both modes.
    #[test]
    fn unbounded_incremental_histories_are_bit_identical(
        len in 1..10usize,
        update_prob in 0.0..=1.0f64,
        script_seed in any::<u64>(),
        sched_seed in any::<u64>(),
    ) {
        let n = 3;
        let scripts = sw_random_scripts(n, len, update_prob, script_seed);
        let (full, incremental) = sw_both_modes(n, &scripts, sched_seed, |b, inc| {
            UnboundedSnapshot::with_backend(n, 0u64, b).with_incremental(inc)
        });
        prop_assert_eq!(full.ops(), incremental.ops());
        prop_assert_eq!(check_intervals(&incremental), Ok(()));
    }

    /// Bounded (handshake) construction: same property; the incremental
    /// path also re-implements the handshake interleaving, so this guards
    /// its per-partner read/write ordering too.
    #[test]
    fn bounded_incremental_histories_are_bit_identical(
        len in 1..10usize,
        update_prob in 0.0..=1.0f64,
        script_seed in any::<u64>(),
        sched_seed in any::<u64>(),
    ) {
        let n = 3;
        let scripts = sw_random_scripts(n, len, update_prob, script_seed);
        let (full, incremental) = sw_both_modes(n, &scripts, sched_seed, |b, inc| {
            BoundedSnapshot::with_backend(n, 0u64, b).with_incremental(inc)
        });
        prop_assert_eq!(full.ops(), incremental.ops());
        prop_assert_eq!(check_intervals(&incremental), Ok(()));
    }

    /// Multi-writer construction, disjoint words: bit-identical histories
    /// plus the fast interval check.
    #[test]
    fn multiwriter_disjoint_incremental_histories_are_bit_identical(
        rounds in 1..4usize,
        sched_seed in any::<u64>(),
    ) {
        let (n, m) = (3, 3);
        let scripts = mw_disjoint_scripts(n, m, rounds);
        let run = |inc: bool, seed: u64| {
            run_mw_sim(
                n,
                m,
                &scripts,
                &mut RandomPolicy::seeded(seed),
                SimConfig::default(),
                |b| MultiWriterSnapshot::with_backend(n, m, 0u64, b).with_incremental(inc),
            )
            .expect("simulation completes")
            .0
        };
        let full = run(false, sched_seed);
        let incremental = run(true, sched_seed);
        prop_assert_eq!(full.ops(), incremental.ops());
        prop_assert_eq!(check_intervals(&incremental), Ok(()));
    }

    /// Multi-writer construction, contended words (several writers per
    /// word): bit-identical histories, checked with Wing–Gong since the
    /// interval checker needs per-word writer order.
    #[test]
    fn multiwriter_contended_incremental_histories_are_bit_identical(
        len in 1..6usize,
        script_seed in any::<u64>(),
        sched_seed in any::<u64>(),
    ) {
        let (n, m) = (3, 2);
        let scripts = mw_contended_scripts(n, m, len, 0.6, script_seed);
        let run = |inc: bool| {
            run_mw_sim(
                n,
                m,
                &scripts,
                &mut RandomPolicy::seeded(sched_seed),
                SimConfig::default(),
                |b| MultiWriterSnapshot::with_backend(n, m, 0u64, b).with_incremental(inc),
            )
            .expect("simulation completes")
            .0
        };
        let full = run(false);
        let incremental = run(true);
        prop_assert_eq!(full.ops(), incremental.ops());
        prop_assert!(check_history(&incremental).is_linearizable());
    }
}

// ---------------------------------------------------------------------------
// 3. Incremental path on real threads and real version hints
// ---------------------------------------------------------------------------

/// On the non-instrumented epoch backend the version probes genuinely
/// replace clones; hammer the path from real threads and check the
/// recorded history.
#[test]
fn threaded_incremental_unbounded_is_linearizable() {
    let n = 3;
    let object = UnboundedSnapshot::new(n, 0u64);
    let scripts: Vec<Vec<SwStep>> = (0..n)
        .map(|_| {
            (0..30)
                .flat_map(|_| [SwStep::Update, SwStep::Scan])
                .collect()
        })
        .collect();
    let history = run_sw_threaded(&object, &scripts);
    assert_eq!(history.len(), n * 60);
    assert_eq!(check_intervals(&history), Ok(()));
}

#[test]
fn threaded_incremental_bounded_is_linearizable() {
    let n = 3;
    let object = BoundedSnapshot::new(n, 0u64);
    let scripts: Vec<Vec<SwStep>> = (0..n)
        .map(|_| {
            (0..30)
                .flat_map(|_| [SwStep::Update, SwStep::Scan])
                .collect()
        })
        .collect();
    let history = run_sw_threaded(&object, &scripts);
    assert_eq!(check_intervals(&history), Ok(()));
}

/// A scanner repeatedly scanning a quiescent object must keep returning
/// the exact same values through its warm cache.
#[test]
fn warm_cache_is_stable_when_memory_is_quiet() {
    let n = 4;
    let object = UnboundedSnapshot::new(n, 0u64);
    {
        let mut writer = object.handle(ProcessId::new(1));
        writer.update(7);
    }
    let mut scanner = object.handle(ProcessId::new(0));
    let first = scanner.scan().to_vec();
    assert_eq!(first, vec![0, 7, 0, 0]);
    for _ in 0..100 {
        assert_eq!(scanner.scan().to_vec(), first);
    }
}
