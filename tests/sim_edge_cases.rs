//! Edge cases of the deterministic simulator that the algorithm tests
//! never hit naturally: empty bodies, processes with no register ops,
//! single-process exploration, handle reclaim under simulation, and
//! schedule shrinking of a real linearizability failure.

use std::sync::Arc;

use snapshot_bench::harness::{run_mw_sim, MwStep};
use snapshot_core::{MultiWriterSnapshot, MwVariant};
use snapshot_lin::check_history;
use snapshot_registers::{Backend, EpochBackend, Instrumented, ProcessId, Register};
use snapshot_sim::{
    replay, shrink_schedule, Decision, ExploreLimits, Explorer, FnPolicy, RoundRobinPolicy, Sim,
    SimConfig,
};

#[test]
fn processes_with_no_register_ops_complete_immediately() {
    let sim = Sim::new(3);
    let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
    let cell = Arc::new(backend.cell(0u8));
    let c = Arc::clone(&cell);
    let bodies: Vec<Box<dyn FnOnce() + Send>> = vec![
        Box::new(|| {}),                                 // empty body
        Box::new(|| std::hint::black_box(())),           // local-only body
        Box::new(move || {
            c.write(ProcessId::new(2), 1);
        }),
    ];
    let report = sim
        .run(&mut RoundRobinPolicy::new(), SimConfig::default(), bodies)
        .unwrap();
    assert_eq!(report.steps, 1); // only P2's write needed a grant
    assert!(report.statuses.iter().all(|s| matches!(
        s,
        snapshot_sim::ProcessStatus::Completed
    )));
    assert_eq!(cell.read(ProcessId::new(0)), 1);
}

#[test]
fn single_process_exploration_has_exactly_one_schedule() {
    let mut runs = 0;
    let outcome = Explorer::new(ExploreLimits::default())
        .explore::<String>(|policy| {
            let sim = Sim::new(1);
            let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
            let cell = backend.cell(0u8);
            sim.run(
                policy,
                SimConfig::default(),
                vec![Box::new(|| {
                    cell.write(ProcessId::new(0), 1);
                    cell.read(ProcessId::new(0));
                })],
            )
            .map_err(|e| e.to_string())?;
            runs += 1;
            Ok(())
        })
        .unwrap();
    assert!(outcome.is_complete());
    assert_eq!(runs, 1);
}

#[test]
fn handles_can_be_reclaimed_inside_a_simulated_process() {
    use snapshot_core::{BoundedSnapshot, SwSnapshot, SwSnapshotHandle};

    let sim = Sim::new(1);
    let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
    let object = BoundedSnapshot::with_backend(1, 0u64, &backend);
    let report = sim
        .run(
            &mut RoundRobinPolicy::new(),
            SimConfig::default(),
            vec![Box::new(|| {
                {
                    let mut h = object.handle(ProcessId::new(0));
                    h.update(1);
                } // drop + re-claim
                let mut h = object.handle(ProcessId::new(0));
                h.update(2);
                assert_eq!(h.scan().to_vec(), vec![2]);
            })],
        )
        .unwrap();
    assert!(report.completed(ProcessId::new(0)));
}

#[test]
fn shrinker_minimizes_the_figure4_violation_schedule() {
    // Reproduce the Figure 4 literal-variant violation by *schedule*
    // (rather than the handcrafted FnPolicy), then shrink it and confirm
    // the shrunk schedule still convicts the literal variant.
    const N: usize = 3;
    const M: usize = 2;
    let scripts: Vec<Vec<MwStep>> = vec![
        vec![MwStep::Update(0)],
        vec![MwStep::Update(1)],
        vec![MwStep::Scan, MwStep::Scan],
    ];

    let reproduces = |schedule: &[usize]| -> bool {
        let mut policy = replay(schedule);
        let result = run_mw_sim(
            N,
            M,
            &scripts,
            &mut policy,
            SimConfig {
                max_steps: Some(5_000),
                stop_when_done: vec![ProcessId::new(2)],
                record_trace: false,
            },
            |b| MultiWriterSnapshot::with_options(N, M, 0u64, b, b, MwVariant::LiteralGoto1),
        );
        match result {
            Ok((history, report)) => {
                report.completed(ProcessId::new(2))
                    && !check_history(&history).is_linearizable()
            }
            Err(_) => false,
        }
    };

    // First find a failing schedule by translating the known phased attack
    // into ready-set indices: capture it by running the FnPolicy attack
    // with a recording wrapper — simplest is to search nearby: start from
    // the attack policy's decisions re-expressed through exploration.
    let found: Option<Vec<usize>>;
    {
        // Derive the schedule from the attack policy by simulating it and
        // recording which ready-set index it picked each step.
        let mut granted = [0u64; N];
        let mut picks: Vec<usize> = Vec::new();
        let mut policy = FnPolicy(|ready: &[snapshot_sim::ReadyProcess], _| {
            let pick = |pid: usize| ready.iter().position(|r| r.pid.get() == pid);
            let decision = if let Some(i) = pick(1) {
                granted[1] += 1;
                i
            } else if granted[2] < 19 && pick(2).is_some() {
                granted[2] += 1;
                pick(2).unwrap()
            } else if granted[0] < 6 && pick(0).is_some() {
                granted[0] += 1;
                pick(0).unwrap()
            } else if let Some(i) = pick(2) {
                granted[2] += 1;
                i
            } else {
                return Decision::Halt;
            };
            picks.push(decision);
            Decision::Run(decision)
        });
        let (history, report) = run_mw_sim(
            N,
            M,
            &scripts,
            &mut policy,
            SimConfig {
                max_steps: Some(5_000),
                stop_when_done: vec![ProcessId::new(2)],
                record_trace: false,
            },
            |b| MultiWriterSnapshot::with_options(N, M, 0u64, b, b, MwVariant::LiteralGoto1),
        )
        .unwrap();
        assert!(report.completed(ProcessId::new(2)));
        assert!(!check_history(&history).is_linearizable());
        found = Some(picks);
    }

    let failing = found.unwrap();
    assert!(reproduces(&failing), "recorded schedule must reproduce");
    let minimal = shrink_schedule(failing.clone(), reproduces);
    assert!(reproduces(&minimal));
    assert!(
        minimal.len() <= failing.len(),
        "shrinker must not grow the schedule"
    );
}
