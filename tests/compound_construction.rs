//! The Section 6 compound construction: the multi-writer snapshot running
//! over multi-writer registers that are themselves built from
//! single-writer registers ([`MwmrFromSwmr`]), with every single-writer
//! operation counted.
//!
//! Checks (a) the embedded register construction is itself linearizable
//! (histories checked against the sequential register spec), (b) the
//! whole compound snapshot is linearizable, and (c) the measured
//! single-writer op count per scan scales as `Θ(n³)` for `m = n`, versus
//! `Θ(n⁴)` for the modeled Anderson compound — who wins and by what factor
//! is exactly Section 6's claim.

use std::sync::Arc;

use snapshot_bench::anderson_model;
use snapshot_bench::harness::{mw_disjoint_scripts, run_mw_threaded};
use snapshot_core::{MultiWriterSnapshot, MwSnapshot, MwSnapshotHandle};
use snapshot_lin::{check_intervals, check_linearizable, RegisterOp, RegisterSpec, WgOp};
use snapshot_registers::{
    CompoundBackend, EpochBackend, Instrumented, MwmrFromSwmr, OpCounters, ProcessId, Register,
};

#[test]
fn mwmr_from_swmr_register_is_linearizable() {
    // Concurrent reads and writes on the embedded register construction;
    // small histories checked exhaustively with Wing-Gong against the
    // sequential register spec.
    for round in 0..60u64 {
        let n = 3;
        let reg = Arc::new(MwmrFromSwmr::new(&EpochBackend::new(), n, 0u64));
        let clock = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let ops = Arc::new(parking_lot::Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for t in 0..n {
                let reg = Arc::clone(&reg);
                let clock = Arc::clone(&clock);
                let ops = Arc::clone(&ops);
                s.spawn(move || {
                    use std::sync::atomic::Ordering;
                    let pid = ProcessId::new(t);
                    for k in 0..2u64 {
                        let now = || clock.fetch_add(1, Ordering::Relaxed);
                        if (t as u64 + k + round) % 2 == 0 {
                            let value = (t as u64 + 1) * 100 + k;
                            let inv = now();
                            reg.write(pid, value);
                            let res = now();
                            ops.lock().push(WgOp {
                                pid,
                                inv,
                                res: Some(res),
                                op: RegisterOp::Write { value },
                            });
                        } else {
                            let inv = now();
                            let value = reg.read(pid);
                            let res = now();
                            ops.lock().push(WgOp {
                                pid,
                                inv,
                                res: Some(res),
                                op: RegisterOp::Read { value },
                            });
                        }
                    }
                });
            }
        });
        let ops = Arc::try_unwrap(ops).unwrap().into_inner();
        let result = check_linearizable(&RegisterSpec::new(0u64), &ops);
        assert!(
            result.is_linearizable(),
            "round {round}: register history not linearizable: {ops:?}"
        );
    }
}

#[test]
fn compound_snapshot_is_linearizable() {
    // Full stack: snapshot -> MWMR-from-SWMR registers -> epoch cells.
    let n = 3;
    let m = 3;
    let swmr = EpochBackend::new();
    let mwmr = CompoundBackend::new(n, EpochBackend::new());
    let object = MultiWriterSnapshot::with_options(
        n,
        m,
        0u64,
        &swmr,
        &mwmr,
        snapshot_core::MwVariant::RescanHandshake,
    );
    let history = run_mw_threaded(&object, &mw_disjoint_scripts(n, m, 60));
    assert_eq!(check_intervals(&history), Ok(()));
}

#[test]
fn compound_scan_cost_scales_cubically_and_beats_anderson() {
    // Count single-writer ops per scan at m = n, growing n; compare the
    // growth exponent against the analytic models.
    let mut measured = Vec::new();
    for n in [2usize, 4, 8, 16] {
        let m = n;
        let counters = Arc::new(OpCounters::new(n));
        let inner = Instrumented::new(EpochBackend::new()).with_counters(Arc::clone(&counters));
        let mwmr = CompoundBackend::new(n, inner);
        // Handshake bits / views also counted: same instrumented backend
        // flavor for the single-writer side.
        let swmr = Instrumented::new(EpochBackend::new()).with_counters(Arc::clone(&counters));
        let object = MultiWriterSnapshot::with_options(
            n,
            m,
            0u64,
            &swmr,
            &mwmr,
            snapshot_core::MwVariant::RescanHandshake,
        );
        let pid = ProcessId::new(0);
        let mut h = object.handle(pid);
        let before = counters.snapshot(pid);
        let _ = h.scan();
        let cost = (counters.snapshot(pid) - before).total();
        measured.push((n, cost));
    }

    // Quiescent scan = one iteration: cost ≈ (3n + 2m(n+1)) ops → Θ(n²)
    // per iteration; the worst-case (2n+1 iterations) model is Θ(n³).
    // Check the quiescent measurement matches the per-iteration model
    // exactly, so the worst-case formula is anchored by measurement.
    for &(n, cost) in &measured {
        let nn = n as u64;
        let model_one_iteration = 3 * nn + 2 * nn * (nn + 1); // m = n
        assert_eq!(
            cost, model_one_iteration,
            "n={n}: measured {cost} vs model {model_one_iteration}"
        );
    }

    // Section 6's comparison on the worst-case models: ours O(n^3) beats
    // Anderson's O(n^4) with a widening gap.
    let ours_16 = anderson_model::compound_mw_scan_swmr_ops(16, 16);
    let ours_64 = anderson_model::compound_mw_scan_swmr_ops(64, 64);
    let anderson_16 = anderson_model::anderson_mw_over_bounded_sw_ops(16);
    let anderson_64 = anderson_model::anderson_mw_over_bounded_sw_ops(64);
    assert!(anderson_16 > ours_16 as u128);
    let gap_16 = anderson_16 as f64 / ours_16 as f64;
    let gap_64 = anderson_64 as f64 / ours_64 as f64;
    assert!(
        gap_64 > 2.0 * gap_16,
        "the O(n) relative gap must widen: {gap_16:.1}x -> {gap_64:.1}x"
    );
}

#[test]
fn compound_snapshot_under_adversarial_schedules() {
    // The full stack under the deterministic scheduler: the compound
    // register's internal single-writer operations are themselves gated,
    // so the adversary interleaves *inside* the register construction.
    use snapshot_bench::harness::{run_mw_sim, MwStep};
    use snapshot_lin::check_history;
    use snapshot_sim::{RandomPolicy, SimConfig};

    let n = 2;
    let m = 1;
    let scripts: Vec<Vec<MwStep>> = vec![vec![MwStep::Update(0)], vec![MwStep::Scan]];
    for seed in 0..60u64 {
        let (history, _) = run_mw_sim(
            n,
            m,
            &scripts,
            &mut RandomPolicy::seeded(seed),
            SimConfig::default(),
            |gated| {
                // SWMR parts and the compound's inner cells share the same
                // gated backend, so EVERY primitive op is a schedule point.
                let mwmr = CompoundBackend::new(
                    n,
                    Instrumented::with_probe(EpochBackend::new(), gated.probe().clone()),
                );
                MultiWriterSnapshot::with_options(
                    n,
                    m,
                    0u64,
                    gated,
                    &mwmr,
                    snapshot_core::MwVariant::RescanHandshake,
                )
            },
        )
        .unwrap();
        assert!(
            check_history(&history).is_linearizable(),
            "seed {seed}: {history:?}"
        );
    }
}

#[test]
fn compound_write_back_makes_reader_visible_to_writers() {
    // Regression guard for the write-back subtlety: after P0 *reads* the
    // compound register, P0's own cell carries the maximum tag; P0's next
    // write must still win.
    let n = 2;
    let reg = MwmrFromSwmr::new(&EpochBackend::new(), n, 0u32);
    reg.write(ProcessId::new(1), 5);
    assert_eq!(reg.read(ProcessId::new(0)), 5);
    reg.write(ProcessId::new(0), 6);
    assert_eq!(reg.read(ProcessId::new(1)), 6);
    assert_eq!(reg.read(ProcessId::new(0)), 6);
}
