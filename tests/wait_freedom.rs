//! Wait-freedom under adversarial scheduling: the paper's pigeonhole
//! bounds (≤ n+1 double collects for the single-writer algorithms,
//! ≤ 2n+1 for the multi-writer one) hold on *every* schedule, while the
//! plain double-collect baseline is starved forever by the same
//! adversary — Observations 1 and 2 of Section 3, made executable.

use std::sync::Arc;

use parking_lot::Mutex;
use snapshot_core::{
    BoundedSnapshot, DoubleCollectSnapshot, MultiWriterSnapshot, MwSnapshot, MwSnapshotHandle,
    ScanStats, SwSnapshot, SwSnapshotHandle, UnboundedSnapshot,
};
use snapshot_registers::{EpochBackend, Instrumented, ProcessId};
use snapshot_sim::{HaltReason, ProcessStatus, RandomPolicy, RoundRobinPolicy, Sim, SimConfig};

/// Runs `n - 1` updaters (200 updates each) against one scanner under the
/// given policy; returns the scanner's stats if it completed.
fn scanner_under_adversary<O, F, G>(
    n: usize,
    policy: &mut dyn snapshot_sim::SchedulePolicy,
    max_steps: u64,
    build: F,
    scan: G,
) -> (Option<ScanStats>, HaltReason, Vec<ProcessStatus>)
where
    O: Send + Sync,
    F: FnOnce(&Instrumented<EpochBackend>) -> O,
    G: FnOnce(&O, ProcessId) -> Option<ScanStats> + Send,
    O: UpdaterDriver,
{
    let sim = Sim::new(n);
    let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
    let object = build(&backend);
    let result: Arc<Mutex<Option<ScanStats>>> = Arc::new(Mutex::new(None));

    let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
    for i in 0..n - 1 {
        let object = &object;
        bodies.push(Box::new(move || {
            object.drive_updates(ProcessId::new(i), 200);
        }));
    }
    {
        let object = &object;
        let result = Arc::clone(&result);
        bodies.push(Box::new(move || {
            let stats = scan(object, ProcessId::new(n - 1));
            *result.lock() = stats;
        }));
    }

    let report = sim
        .run(
            policy,
            SimConfig {
                max_steps: Some(max_steps),
                stop_when_done: vec![ProcessId::new(n - 1)],
                record_trace: false,
            },
            bodies,
        )
        .expect("simulation failed");
    let stats = *result.lock();
    (stats, report.halt, report.statuses)
}

/// Lets the adversary harness drive updates without naming concrete handle
/// types.
trait UpdaterDriver: Send + Sync {
    fn drive_updates(&self, pid: ProcessId, count: u64);
}

impl<B: snapshot_registers::Backend> UpdaterDriver for UnboundedSnapshot<u64, B> {
    fn drive_updates(&self, pid: ProcessId, count: u64) {
        let mut h = self.handle(pid);
        for k in 0..count {
            h.update(k);
        }
    }
}

impl<B: snapshot_registers::Backend> UpdaterDriver for BoundedSnapshot<u64, B> {
    fn drive_updates(&self, pid: ProcessId, count: u64) {
        let mut h = self.handle(pid);
        for k in 0..count {
            h.update(k);
        }
    }
}

impl<B: snapshot_registers::Backend> UpdaterDriver for DoubleCollectSnapshot<u64, B> {
    fn drive_updates(&self, pid: ProcessId, count: u64) {
        let mut h = self.handle(pid);
        for k in 0..count {
            h.update(k);
        }
    }
}

impl<B: snapshot_registers::Backend, BM: snapshot_registers::Backend> UpdaterDriver
    for MultiWriterSnapshot<u64, B, BM>
{
    fn drive_updates(&self, pid: ProcessId, count: u64) {
        let mut h = self.handle(pid);
        for k in 0..count {
            h.update(pid.get() % self.words(), k);
        }
    }
}

#[test]
fn unbounded_scan_completes_within_pigeonhole_bound_under_round_robin() {
    for n in [2usize, 3, 4] {
        let (stats, halt, _) = scanner_under_adversary(
            n,
            &mut RoundRobinPolicy::new(),
            2_000_000,
            |b| UnboundedSnapshot::with_backend(n, 0u64, b),
            |o, pid| {
                let mut h = o.handle(pid);
                Some(h.scan_with_stats().1)
            },
        );
        let stats = stats.expect("scanner must complete");
        assert_eq!(halt, HaltReason::StopSetDone);
        assert!(
            stats.double_collects as usize <= n + 1,
            "n={n}: {} double collects",
            stats.double_collects
        );
    }
}

#[test]
fn bounded_scan_completes_within_pigeonhole_bound_under_round_robin() {
    for n in [2usize, 3, 4] {
        let (stats, halt, _) = scanner_under_adversary(
            n,
            &mut RoundRobinPolicy::new(),
            2_000_000,
            |b| BoundedSnapshot::with_backend(n, 0u64, b),
            |o, pid| {
                let mut h = o.handle(pid);
                Some(h.scan_with_stats().1)
            },
        );
        let stats = stats.expect("scanner must complete");
        assert_eq!(halt, HaltReason::StopSetDone);
        assert!(
            stats.double_collects as usize <= n + 1,
            "n={n}: {} double collects",
            stats.double_collects
        );
    }
}

#[test]
fn multiwriter_scan_completes_within_pigeonhole_bound_under_round_robin() {
    for n in [2usize, 3] {
        let m = n;
        let (stats, halt, _) = scanner_under_adversary(
            n,
            &mut RoundRobinPolicy::new(),
            2_000_000,
            |b| MultiWriterSnapshot::with_backend(n, m, 0u64, b),
            |o, pid| {
                let mut h = o.handle(pid);
                Some(h.scan_with_stats().1)
            },
        );
        let stats = stats.expect("scanner must complete");
        assert_eq!(halt, HaltReason::StopSetDone);
        assert!(
            stats.double_collects as usize <= 2 * n + 1,
            "n={n}: {} double collects",
            stats.double_collects
        );
    }
}

#[test]
fn double_collect_scanner_is_starved_by_the_same_adversary() {
    // The identical round-robin schedule that the wait-free algorithms
    // shrug off starves the Observation-1-only scanner: with an updater
    // writing between every pair of its reads, no two collects ever agree.
    let n = 2;
    let (stats, _halt, _) = scanner_under_adversary(
        n,
        &mut RoundRobinPolicy::new(),
        2_000_000,
        |b| DoubleCollectSnapshot::with_backend(n, 0u64, b),
        |o, pid| {
            let mut h = o.handle(pid);
            // 50 attempts: a wait-free algorithm would need at most n+1=3.
            h.try_scan(50).map(|(_, s)| s)
        },
    );
    assert!(
        stats.is_none(),
        "double-collect scan unexpectedly succeeded: {stats:?}"
    );
}

#[test]
fn double_collect_succeeds_once_updaters_quiesce() {
    // Same baseline, but the updaters run out of work: the unbounded
    // retry loop then terminates. Not wait-free, merely obstruction-free.
    let n = 2;
    let (stats, _halt, statuses) = scanner_under_adversary(
        n,
        &mut RoundRobinPolicy::new(),
        2_000_000,
        |b| DoubleCollectSnapshot::with_backend(n, 0u64, b),
        |o, pid| {
            let mut h = o.handle(pid);
            Some(h.scan_with_stats().1)
        },
    );
    let stats = stats.expect("scan completes after updater quiesces");
    // It needed far more work than the wait-free bound...
    assert!(
        stats.double_collects > (n as u32) + 1,
        "only {} double collects",
        stats.double_collects
    );
    // ...and the updater had already finished when it got through.
    assert_eq!(statuses[0], ProcessStatus::Completed);
}

#[test]
fn random_adversaries_never_break_the_bound() {
    // 40 random schedules per n; the bound is schedule-independent.
    for n in [2usize, 3] {
        let mut worst = 0u32;
        for seed in 0..40 {
            let (stats, _, _) = scanner_under_adversary(
                n,
                &mut RandomPolicy::seeded(seed),
                2_000_000,
                |b| BoundedSnapshot::with_backend(n, 0u64, b),
                |o, pid| {
                    let mut h = o.handle(pid);
                    Some(h.scan_with_stats().1)
                },
            );
            if let Some(s) = stats {
                worst = worst.max(s.double_collects);
                assert!(s.double_collects as usize <= n + 1, "seed {seed}");
            }
        }
        assert!(worst >= 1);
    }
}

#[test]
fn scan_stats_register_counts_match_the_instrumentation_layer() {
    use snapshot_registers::{OpCounters, OpSnapshot};

    for n in [2usize, 3, 4] {
        let sim = Sim::new(n);
        let counters = Arc::new(OpCounters::new(n));
        let backend = Instrumented::new(EpochBackend::new())
            .with_gate(sim.gate())
            .with_counters(Arc::clone(&counters));
        let object = BoundedSnapshot::with_backend(n, 0u64, &backend);
        let observed: Mutex<Vec<(ScanStats, OpSnapshot)>> = Mutex::new(Vec::new());

        let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for i in 0..n - 1 {
            let object = &object;
            bodies.push(Box::new(move || {
                object.drive_updates(ProcessId::new(i), 100);
            }));
        }
        {
            let object = &object;
            let counters = Arc::clone(&counters);
            let observed = &observed;
            bodies.push(Box::new(move || {
                let pid = ProcessId::new(n - 1);
                let mut h = object.handle(pid);
                for _ in 0..10 {
                    let before = counters.snapshot(pid);
                    let (_, stats) = h.scan_with_stats();
                    let delta = counters.snapshot(pid) - before;
                    observed.lock().push((stats, delta));
                }
            }));
        }
        sim.run(
            &mut RoundRobinPolicy::new(),
            SimConfig {
                max_steps: Some(2_000_000),
                stop_when_done: vec![ProcessId::new(n - 1)],
                record_trace: false,
            },
            bodies,
        )
        .expect("simulation failed");

        let observed = observed.lock();
        assert_eq!(observed.len(), 10);
        for (k, (stats, delta)) in observed.iter().enumerate() {
            // The stats' own primitive-register tallies must agree exactly
            // with the instrumentation layer's independent count...
            assert_eq!(stats.reads, delta.reads, "n={n} scan {k}: {stats:?} vs {delta:?}");
            assert_eq!(stats.writes, delta.writes, "n={n} scan {k}: {stats:?} vs {delta:?}");
            // ...and match the Figure 3 round structure: every round is n
            // handshake read/write pairs plus two n-register collects.
            let dc = u64::from(stats.double_collects);
            assert_eq!(stats.reads, 3 * n as u64 * dc, "n={n} scan {k}");
            assert_eq!(stats.writes, n as u64 * dc, "n={n} scan {k}");
            // Lemma 4.4's pigeonhole bound, asserted from the per-scan
            // stats alone.
            assert!(
                stats.double_collects as usize <= n + 1,
                "n={n} scan {k}: {} double collects",
                stats.double_collects
            );
        }
    }
}

#[test]
fn borrowed_views_actually_occur_under_adversarial_interleaving() {
    // Sanity: the Observation-2 fallback is exercised, not dead code. The
    // scanner scans repeatedly while the updater streams updates; under
    // round-robin at least one scan must fall back to a borrowed view.
    let (stats, _, _) = scanner_under_adversary(
        2,
        &mut RoundRobinPolicy::new(),
        2_000_000,
        |b| UnboundedSnapshot::with_backend(2, 0u64, b),
        |o, pid| {
            let mut h = o.handle(pid);
            let mut last = None;
            for _ in 0..20 {
                let (_, stats) = h.scan_with_stats();
                last = Some(stats);
                if stats.borrowed {
                    break;
                }
            }
            last
        },
    );
    assert!(
        stats.expect("scanner completes").borrowed,
        "expected at least one scan to return a borrowed view under round-robin"
    );
}
