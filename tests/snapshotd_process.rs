//! Multi-process smoke: real `snapshotd` replica *processes* (the
//! workspace binary, not in-process servers) serving the unmodified
//! snapshot-service stack over Unix-domain sockets, surviving one
//! replica killed with SIGKILL mid-run.
//!
//! Under cargo the binary path arrives via `CARGO_BIN_EXE_snapshotd`;
//! outside cargo (offline harnesses) set `SNAPSHOTD_BIN`. With neither,
//! the test skips rather than fails — the same scenario is covered
//! in-process by `nemesis_wire.rs`.

use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use snapshot_abd::{AbdSnapshotCore, RemoteConfig, RemoteTransport, RetryPolicy};
use snapshot_lin::{check_history, Recorder};
use snapshot_registers::ProcessId;
use snapshot_service::{RetryConfig, ServiceConfig, ServiceError, SnapshotService};
use snapshot_wire::{Endpoint, ReplicaStore};

const REPLICAS: usize = 3;
const LANES: usize = 2;

fn snapshotd_bin() -> Option<String> {
    option_env!("CARGO_BIN_EXE_snapshotd")
        .map(str::to_owned)
        .or_else(|| std::env::var("SNAPSHOTD_BIN").ok())
}

/// Spawns one `snapshotd` process and blocks until it prints its
/// "listening on" banner (the socket is accepting by then).
fn spawn_replica(bin: &str, endpoint: &Endpoint, index: usize) -> Child {
    let mut child = Command::new(bin)
        .args(["--listen", &endpoint.to_string(), "--replica", &index.to_string()])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawning snapshotd process");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("snapshotd exited before its banner")
        .expect("reading snapshotd banner");
    assert!(
        banner.contains("listening on"),
        "unexpected snapshotd banner: {banner}"
    );
    // Keep draining stdout in the background so the child never blocks
    // on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    child
}

#[test]
fn snapshotd_processes_serve_the_service_and_survive_a_sigkill() {
    let Some(bin) = snapshotd_bin() else {
        eprintln!("skipping: no snapshotd binary (set SNAPSHOTD_BIN or run under cargo)");
        return;
    };

    let endpoints: Vec<Endpoint> = (0..REPLICAS)
        .map(|i| {
            let mut path = std::env::temp_dir();
            path.push(format!("snapshotd-proc-{}-{i}.sock", std::process::id()));
            let _ = std::fs::remove_file(&path);
            Endpoint::Uds(path)
        })
        .collect();
    let mut children: Vec<Child> = endpoints
        .iter()
        .enumerate()
        .map(|(i, e)| spawn_replica(&bin, e, i))
        .collect();

    let transport = Arc::new(RemoteTransport::connect(
        RemoteConfig::new(endpoints)
            .with_op_timeout(Duration::from_secs(2))
            .with_retry(RetryPolicy {
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(20),
                multiplier: 2,
                jitter: 0.5,
            })
            .with_redial(Duration::from_millis(5), Duration::from_millis(100)),
    ));
    assert!(
        transport.wait_connected(REPLICAS, Duration::from_secs(10)),
        "handshake with all replica processes"
    );

    let core_transport: Arc<dyn snapshot_abd::Transport> = transport.clone();
    let service = SnapshotService::with_config(
        AbdSnapshotCore::remote(core_transport, LANES, 0u64),
        ServiceConfig {
            retry: RetryConfig {
                max_attempts: 4,
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(20),
                multiplier: 2,
                deadline: Duration::from_secs(30),
            },
            ..ServiceConfig::default()
        },
    );
    let recorder = Recorder::new(LANES, LANES, 0u64);

    let soak = |iters: u64, epoch: u64| {
        std::thread::scope(|s| {
            for lane in 0..LANES {
                let service = &service;
                let recorder = &recorder;
                s.spawn(move || {
                    let pid = ProcessId::new(lane);
                    let mut client = service.client(lane);
                    for k in 1..=iters {
                        let value = (epoch << 48) | ((lane as u64) << 32) | k;
                        let inv = recorder.begin();
                        match client.update(lane, value) {
                            Ok(()) => recorder.end_update(pid, lane, value, inv),
                            Err(ServiceError::Backend { .. }) => {
                                recorder.pending_update(pid, lane, value, inv)
                            }
                            Err(e) => panic!("lane {lane} epoch {epoch}: {e:?}"),
                        }
                        let inv = recorder.begin();
                        match client.scan() {
                            Ok(view) => recorder.end_scan(pid, view.to_vec(), inv),
                            Err(ServiceError::Backend { .. } | ServiceError::Degraded { .. }) => {}
                            Err(e) => panic!("lane {lane} epoch {epoch}: {e:?}"),
                        }
                    }
                });
            }
        });
    };

    // Full fleet, then SIGKILL one replica process and keep going: 2 of
    // 3 live processes is a majority, so the service stays up.
    soak(10, 1);
    children[2].kill().expect("SIGKILL replica 2");
    children[2].wait().expect("reaping replica 2");
    soak(10, 2);

    // 2 lanes × 2 ops × 10 iters × 2 epochs = 80 ops ≤ 128.
    let history = recorder.finish();
    let result = check_history(&history);
    assert!(
        result.is_linearizable(),
        "multi-process history rejected ({result:?})"
    );
    assert!(
        transport.registry().counter("abd.wire.disconnects").get() >= 1,
        "the SIGKILL must surface as a connection drop"
    );

    for child in &mut children[..2] {
        child.kill().expect("shutting down replica process");
        child.wait().expect("reaping replica process");
    }
}

// ---------------------------------------------------------------------
// Graceful shutdown: SIGTERM drains, checkpoints, exits 0.
// ---------------------------------------------------------------------

/// Spawns a durable `snapshotd` (`--state` + `--fsync always`), blocks
/// until it is accepting, and returns the child, its `recovered:`
/// banner, and a handle collecting the rest of its stdout.
fn spawn_durable(
    bin: &str,
    endpoint: &Endpoint,
    state: &Path,
) -> (Child, String, std::thread::JoinHandle<Vec<String>>) {
    let mut child = Command::new(bin)
        .args([
            "--listen",
            &endpoint.to_string(),
            "--replica",
            "0",
            "--state",
            &state.display().to_string(),
            "--fsync",
            "always",
            "--recover",
            "truncate",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawning durable snapshotd process");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let mut recovered = String::new();
    loop {
        let line = lines
            .next()
            .expect("snapshotd exited before its banner")
            .expect("reading snapshotd banner");
        if line.contains("recovered:") {
            recovered = line;
        } else if line.contains("listening on") {
            break;
        }
    }
    assert!(!recovered.is_empty(), "durable snapshotd must print a recovery banner");
    let drain = std::thread::spawn(move || lines.map_while(Result::ok).collect());
    (child, recovered, drain)
}

/// `key=value` extraction from a recovery banner.
fn banner_field(banner: &str, key: &str) -> String {
    banner
        .split_whitespace()
        .find_map(|w| w.strip_prefix(key))
        .unwrap_or_else(|| panic!("banner lacks {key}: {banner}"))
        .to_owned()
}

/// SIGTERM on a durable replica: the process drains, writes a final
/// fsynced checkpoint, and exits 0; a restart replays *zero* log
/// records (everything is in the checkpoint — O(state) recovery) and
/// serves the exact pre-shutdown values.
#[test]
fn sigterm_shuts_down_gracefully_and_restart_replays_the_checkpoint() {
    let Some(bin) = snapshotd_bin() else {
        eprintln!("skipping: no snapshotd binary (set SNAPSHOTD_BIN or run under cargo)");
        return;
    };

    let mut sock = std::env::temp_dir();
    sock.push(format!("snapshotd-term-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    let endpoint = Endpoint::Uds(sock);
    let mut state = std::env::temp_dir();
    state.push(format!("snapshotd-term-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&state);
    let _ = std::fs::remove_file(ReplicaStore::checkpoint_path_for(&state));

    let (mut child, recovered, drain) = spawn_durable(&bin, &endpoint, &state);
    assert_eq!(banner_field(&recovered, "registers="), "0", "{recovered}");

    // A single-replica cluster: quorum 1, so the service runs against
    // exactly the process under test.
    let connect_service = || {
        let transport = Arc::new(RemoteTransport::connect(
            RemoteConfig::new(vec![endpoint.clone()])
                .with_op_timeout(Duration::from_secs(2))
                .with_redial(Duration::from_millis(5), Duration::from_millis(100)),
        ));
        assert!(
            transport.wait_connected(1, Duration::from_secs(10)),
            "handshake with the durable replica"
        );
        let core: Arc<dyn snapshot_abd::Transport> = transport;
        SnapshotService::new(AbdSnapshotCore::remote(core, LANES, 0u64))
    };

    let service = connect_service();
    for lane in 0..LANES {
        let mut client = service.client(lane);
        client
            .update(lane, 0xD00D_0000 + lane as u64)
            .expect("durable update");
    }
    let expected: Vec<u64> = (0..LANES).map(|lane| 0xD00D_0000 + lane as u64).collect();
    assert_eq!(service.client(0).scan().expect("pre-shutdown scan").to_vec(), expected);
    drop(service);

    // SIGTERM (not SIGKILL): the server announces the drain, writes a
    // final checkpoint, and exits 0.
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("sending SIGTERM");
    assert!(status.success(), "kill -TERM failed");
    let exit = child.wait().expect("reaping after SIGTERM");
    assert!(exit.success(), "SIGTERM must exit 0, got {exit:?}");
    let tail = drain.join().expect("joining stdout drain");
    assert!(
        tail.iter().any(|l| l.contains("SIGTERM: draining")),
        "missing drain announcement in {tail:?}"
    );
    assert!(
        tail.iter()
            .any(|l| l.contains("shutdown complete: final checkpoint written")),
        "missing shutdown banner in {tail:?}"
    );

    // Restart on the same state: recovery must come entirely from the
    // checkpoint — zero replayed log records — with every value intact.
    let (mut child, recovered, drain) = spawn_durable(&bin, &endpoint, &state);
    assert_eq!(
        banner_field(&recovered, "replayed="),
        "0",
        "post-checkpoint restart must replay nothing: {recovered}"
    );
    let registers: u64 = banner_field(&recovered, "registers=")
        .parse()
        .expect("registers= must be numeric");
    assert!(registers >= LANES as u64, "{recovered}");

    let service = connect_service();
    assert_eq!(
        service.client(0).scan().expect("post-restart scan").to_vec(),
        expected,
        "restart must serve the exact pre-shutdown state"
    );
    drop(service);

    child.kill().expect("shutting down restarted replica");
    child.wait().expect("reaping restarted replica");
    drop(drain);
    let _ = std::fs::remove_file(&state);
    let _ = std::fs::remove_file(ReplicaStore::checkpoint_path_for(&state));
}
