//! Multi-process smoke: real `snapshotd` replica *processes* (the
//! workspace binary, not in-process servers) serving the unmodified
//! snapshot-service stack over Unix-domain sockets, surviving one
//! replica killed with SIGKILL mid-run.
//!
//! Under cargo the binary path arrives via `CARGO_BIN_EXE_snapshotd`;
//! outside cargo (offline harnesses) set `SNAPSHOTD_BIN`. With neither,
//! the test skips rather than fails — the same scenario is covered
//! in-process by `nemesis_wire.rs`.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use snapshot_abd::{AbdSnapshotCore, RemoteConfig, RemoteTransport, RetryPolicy};
use snapshot_lin::{check_history, Recorder};
use snapshot_registers::ProcessId;
use snapshot_service::{RetryConfig, ServiceConfig, ServiceError, SnapshotService};
use snapshot_wire::Endpoint;

const REPLICAS: usize = 3;
const LANES: usize = 2;

fn snapshotd_bin() -> Option<String> {
    option_env!("CARGO_BIN_EXE_snapshotd")
        .map(str::to_owned)
        .or_else(|| std::env::var("SNAPSHOTD_BIN").ok())
}

/// Spawns one `snapshotd` process and blocks until it prints its
/// "listening on" banner (the socket is accepting by then).
fn spawn_replica(bin: &str, endpoint: &Endpoint, index: usize) -> Child {
    let mut child = Command::new(bin)
        .args(["--listen", &endpoint.to_string(), "--replica", &index.to_string()])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawning snapshotd process");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("snapshotd exited before its banner")
        .expect("reading snapshotd banner");
    assert!(
        banner.contains("listening on"),
        "unexpected snapshotd banner: {banner}"
    );
    // Keep draining stdout in the background so the child never blocks
    // on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    child
}

#[test]
fn snapshotd_processes_serve_the_service_and_survive_a_sigkill() {
    let Some(bin) = snapshotd_bin() else {
        eprintln!("skipping: no snapshotd binary (set SNAPSHOTD_BIN or run under cargo)");
        return;
    };

    let endpoints: Vec<Endpoint> = (0..REPLICAS)
        .map(|i| {
            let mut path = std::env::temp_dir();
            path.push(format!("snapshotd-proc-{}-{i}.sock", std::process::id()));
            let _ = std::fs::remove_file(&path);
            Endpoint::Uds(path)
        })
        .collect();
    let mut children: Vec<Child> = endpoints
        .iter()
        .enumerate()
        .map(|(i, e)| spawn_replica(&bin, e, i))
        .collect();

    let transport = Arc::new(RemoteTransport::connect(
        RemoteConfig::new(endpoints)
            .with_op_timeout(Duration::from_secs(2))
            .with_retry(RetryPolicy {
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(20),
                multiplier: 2,
                jitter: 0.5,
            })
            .with_redial(Duration::from_millis(5), Duration::from_millis(100)),
    ));
    assert!(
        transport.wait_connected(REPLICAS, Duration::from_secs(10)),
        "handshake with all replica processes"
    );

    let core_transport: Arc<dyn snapshot_abd::Transport> = transport.clone();
    let service = SnapshotService::with_config(
        AbdSnapshotCore::remote(core_transport, LANES, 0u64),
        ServiceConfig {
            retry: RetryConfig {
                max_attempts: 4,
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(20),
                multiplier: 2,
                deadline: Duration::from_secs(30),
            },
            ..ServiceConfig::default()
        },
    );
    let recorder = Recorder::new(LANES, LANES, 0u64);

    let soak = |iters: u64, epoch: u64| {
        std::thread::scope(|s| {
            for lane in 0..LANES {
                let service = &service;
                let recorder = &recorder;
                s.spawn(move || {
                    let pid = ProcessId::new(lane);
                    let mut client = service.client(lane);
                    for k in 1..=iters {
                        let value = (epoch << 48) | ((lane as u64) << 32) | k;
                        let inv = recorder.begin();
                        match client.update(lane, value) {
                            Ok(()) => recorder.end_update(pid, lane, value, inv),
                            Err(ServiceError::Backend { .. }) => {
                                recorder.pending_update(pid, lane, value, inv)
                            }
                            Err(e) => panic!("lane {lane} epoch {epoch}: {e:?}"),
                        }
                        let inv = recorder.begin();
                        match client.scan() {
                            Ok(view) => recorder.end_scan(pid, view.to_vec(), inv),
                            Err(ServiceError::Backend { .. } | ServiceError::Degraded { .. }) => {}
                            Err(e) => panic!("lane {lane} epoch {epoch}: {e:?}"),
                        }
                    }
                });
            }
        });
    };

    // Full fleet, then SIGKILL one replica process and keep going: 2 of
    // 3 live processes is a majority, so the service stays up.
    soak(10, 1);
    children[2].kill().expect("SIGKILL replica 2");
    children[2].wait().expect("reaping replica 2");
    soak(10, 2);

    // 2 lanes × 2 ops × 10 iters × 2 epochs = 80 ops ≤ 128.
    let history = recorder.finish();
    let result = check_history(&history);
    assert!(
        result.is_linearizable(),
        "multi-process history rejected ({result:?})"
    );
    assert!(
        transport.registry().counter("abd.wire.disconnects").get() >= 1,
        "the SIGKILL must surface as a connection drop"
    );

    for child in &mut children[..2] {
        child.kill().expect("shutting down replica process");
        child.wait().expect("reaping replica process");
    }
}
