//! Integration tests for the causal span plane: every service operation
//! yields a reconstructable span tree over the shared trace clock.
//!
//! The invariants under test, end to end through
//! `SnapshotService` → coalescer → retry loop → backing core:
//!
//! * **Balanced, nested trees.** Every span end has a matching begin, ids
//!   are unique, and children nest inside their parents on the shared
//!   seq axis (`SpanForest::check`).
//! * **Joiners follow their lead.** A coalesced joiner's park span
//!   records a `follows_from` edge to the lead's collect span — the
//!   cross-tree arrow that says whose collect the joiner's view came
//!   from.
//! * **Anomalies carry their span path.** A forced `DeadlineExceeded`
//!   freezes the flight recorder with the expired request's full span
//!   path (root → attempt → park) already in the ring.
//! * **Quorum phases attach to the request.** With the service and the
//!   ABD network sharing one `Trace`, the core's `QuorumQuery` /
//!   `QuorumStore` spans nest under the service's collect and attempt
//!   spans.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use snapshot_abd::{AbdSnapshotCore, Network, NetworkConfig};
use snapshot_core::{
    CoreError, ScanStats, SnapshotCore, SnapshotView, TrySnapshotCore, UnboundedSnapshot,
};
use snapshot_obs::{
    chrome_tracing, DumpCause, FanoutSink, FlightRecorder, RingSink, SpanForest, SpanKind,
    SpanStatus, Trace,
};
use snapshot_registers::ProcessId;
use snapshot_service::{HealthConfig, ServiceConfig, ServiceError, SnapshotService};

/// Core whose scans spin while `gate` is set: the deterministic way to
/// hold a coalescing lead inside its collect so a cohort piles up
/// behind it (same pattern as the nemesis suite's `ScriptedCore`).
struct GateCore {
    inner: UnboundedSnapshot<u64>,
    gate: Arc<AtomicBool>,
    entered: Arc<AtomicUsize>,
}

impl GateCore {
    fn new(n: usize) -> Self {
        GateCore {
            inner: UnboundedSnapshot::new(n, 0u64),
            gate: Arc::new(AtomicBool::new(false)),
            entered: Arc::new(AtomicUsize::new(0)),
        }
    }
}

impl TrySnapshotCore<u64> for GateCore {
    fn segments(&self) -> usize {
        SnapshotCore::segments(&self.inner)
    }

    fn lanes(&self) -> usize {
        SnapshotCore::lanes(&self.inner)
    }

    fn single_writer(&self) -> bool {
        SnapshotCore::single_writer(&self.inner)
    }

    fn try_scan(&self, lane: ProcessId) -> Result<(SnapshotView<u64>, ScanStats), CoreError> {
        self.entered.fetch_add(1, Ordering::SeqCst);
        while self.gate.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        Ok(self.inner.core_scan(lane))
    }

    fn try_update(
        &self,
        lane: ProcessId,
        segment: usize,
        value: u64,
    ) -> Result<ScanStats, CoreError> {
        Ok(self.inner.core_update(lane, segment, value))
    }

    fn try_certified_read(
        &self,
        reader: ProcessId,
        segment: usize,
    ) -> Result<Option<(u64, u64)>, CoreError> {
        Ok(self.inner.certified_read(reader, segment))
    }
}

#[test]
fn span_forest_invariants_hold_across_traced_operations() {
    const LANES: usize = 3;
    let sink = Arc::new(RingSink::new(LANES, 4096));
    let trace = Trace::new(sink.clone());
    let service = SnapshotService::new(UnboundedSnapshot::new(LANES, 0u64))
        .with_trace(trace.clone());
    let mut client = service.client(0);

    client.update(0, 7).unwrap();
    let view = client.scan().unwrap();
    assert_eq!(view[0], 7);
    let partial = client.scan_subset(&[1]).unwrap();
    assert_eq!(partial.segments(), &[1]);
    client.probe_shard(0).unwrap();
    // A zero budget expires at admission: the root span must still open
    // (and end Expired) so the expiry is visible in the tree.
    match client.scan_within(Duration::ZERO).unwrap_err() {
        ServiceError::DeadlineExceeded { .. } => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    let events = sink.drain();
    let forest = SpanForest::build(&events);
    forest.check().expect("span-tree invariants");
    assert!(forest.orphans().is_empty(), "every end/note has a matching begin");
    assert!(
        forest.nodes().iter().all(|n| n.end_seq.is_some()),
        "every span begun was ended: {forest}"
    );

    // One root per client operation, each of the operation's own kind.
    let roots = forest.roots();
    let root_kinds: Vec<SpanKind> = roots.iter().map(|r| r.kind).collect();
    assert_eq!(
        root_kinds,
        vec![SpanKind::Update, SpanKind::Scan, SpanKind::PartialScan, SpanKind::Probe, SpanKind::Scan],
        "one root span per operation, in issue order: {forest}"
    );
    assert_eq!(roots[4].status, Some(SpanStatus::Expired), "zero-budget scan expired");
    for root in &roots[..4] {
        assert_eq!(root.status, Some(SpanStatus::Ok));
        assert!(
            root.children.iter().any(|&c| forest.node(c).unwrap().kind == SpanKind::Attempt),
            "every successful op ran at least one attempt: {forest}"
        );
    }

    // The same events export as chrome tracing (CI validates the schema).
    let chrome = chrome_tracing(&events);
    assert!(chrome.contains("\"ph\":\"b\"") && chrome.contains("\"ph\":\"e\""));
}

#[test]
fn coalesced_joiner_parks_follow_the_leads_collect_span() {
    const CLIENTS: usize = 4;
    let core = GateCore::new(CLIENTS);
    let gate = core.gate.clone();
    let entered = core.entered.clone();
    gate.store(true, Ordering::SeqCst);

    let sink = Arc::new(RingSink::new(CLIENTS, 4096));
    let service = SnapshotService::with_config(
        core,
        ServiceConfig { health: HealthConfig::disabled(), ..ServiceConfig::default() },
    )
    .with_trace(Trace::new(sink.clone()));

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|lane| {
                let service = &service;
                s.spawn(move || service.client(lane).scan().unwrap())
            })
            .collect();
        // One lead is inside the held collect; the rest park behind it.
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        while service.coalescing_waiters() < CLIENTS - 1 {
            std::thread::yield_now();
        }
        gate.store(false, Ordering::SeqCst);
        for h in handles {
            assert_eq!(h.join().unwrap().len(), CLIENTS);
        }
    });

    let events = sink.drain();
    let forest = SpanForest::build(&events);
    forest.check().expect("span-tree invariants");

    // The cohort parked during the held collect (gen g) is served by
    // collect g+1: one waiter re-elects as its lead, every other waiter
    // joins it — so CLIENTS - 2 park spans carry a follows edge to the
    // serving lead's collect span, and each sits on a root → attempt →
    // park path of its own tree.
    let joined: Vec<_> = forest
        .nodes()
        .iter()
        .filter(|n| n.kind == SpanKind::CoalescePark && !n.follows.is_empty())
        .collect();
    assert_eq!(joined.len(), CLIENTS - 2, "all but the two leads joined: {forest}");
    for park in joined {
        assert_eq!(park.status, Some(SpanStatus::Ok));
        for &from in &park.follows {
            let lead_collect = forest.node(from).expect("followed span is in the trace");
            assert_eq!(lead_collect.kind, SpanKind::Collect, "joiners follow a collect");
            assert_eq!(lead_collect.status, Some(SpanStatus::Ok));
        }
        let path = forest.path_to_root(park.id);
        assert_eq!(path.len(), 3, "park → attempt → root: {forest}");
        assert_eq!(forest.node(path[1]).unwrap().kind, SpanKind::Attempt);
        assert_eq!(forest.node(path[2]).unwrap().kind, SpanKind::Scan);
    }

    // The follows edge exports as a chrome flow arrow pair.
    let chrome = chrome_tracing(&events);
    assert!(chrome.contains("\"ph\":\"s\"") && chrome.contains("\"ph\":\"f\""));
}

#[test]
fn flight_recorder_dump_contains_the_expired_requests_span_path() {
    const CLIENTS: usize = 2;
    let core = GateCore::new(CLIENTS);
    let gate = core.gate.clone();
    let entered = core.entered.clone();
    gate.store(true, Ordering::SeqCst);

    let ring = Arc::new(RingSink::new(CLIENTS, 1024));
    let recorder = Arc::new(FlightRecorder::new(512));
    let trace = Trace::new(Arc::new(FanoutSink::new(vec![ring.clone(), recorder.clone()])));
    let service = SnapshotService::with_config(
        core,
        ServiceConfig { health: HealthConfig::disabled(), ..ServiceConfig::default() },
    )
    .with_trace(trace);

    std::thread::scope(|s| {
        let lead = {
            let service = &service;
            s.spawn(move || service.client(0).scan().unwrap())
        };
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        // The joiner parks behind the held collect carrying its own small
        // budget; it must expire while the lead is still stuck.
        let err = service.client(1).scan_within(Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, ServiceError::DeadlineExceeded { .. }), "{err:?}");
        gate.store(false, Ordering::SeqCst);
        lead.join().unwrap();
    });

    let dumps = recorder.dumps();
    let dump = dumps
        .iter()
        .find(|d| d.cause == DumpCause::DeadlineExceeded)
        .expect("the expiry froze a flight dump");

    // The dump alone — not the full trace — reconstructs the expired
    // request's span path: its park and attempt ended Expired before the
    // trigger event, and the root's begin is in the ring.
    let forest = SpanForest::build(&dump.events);
    let park = forest
        .nodes()
        .iter()
        .find(|n| n.kind == SpanKind::CoalescePark && n.status == Some(SpanStatus::Expired))
        .expect("the expired park span is in the dump");
    let path = forest.path_to_root(park.id);
    assert_eq!(path.len(), 3, "park → attempt → root all in the dump: {forest}");
    assert_eq!(forest.node(path[1]).unwrap().kind, SpanKind::Attempt);
    assert_eq!(forest.node(path[1]).unwrap().status, Some(SpanStatus::Expired));
    assert_eq!(forest.node(path[2]).unwrap().kind, SpanKind::Scan);

    // The rendered dump is schema-compatible JSON-lines with the cause
    // in the header.
    let rendered = dump.render();
    let header = rendered.lines().next().unwrap();
    assert!(header.contains("\"kind\":\"flight_dump\""));
    assert!(header.contains("\"cause\":\"deadline_exceeded\""));
    assert_eq!(rendered.lines().count(), dump.events.len() + 1);
}

#[test]
fn abd_quorum_phases_nest_under_the_services_spans() {
    const LANES: usize = 2;
    let sink = Arc::new(RingSink::new(LANES, 4096));
    let trace = Trace::new(sink.clone());
    // One shared Trace: the service's spans and the ABD core's quorum
    // phases land on the same clock axis, so the trees connect.
    let network = Arc::new(Network::with_config(
        NetworkConfig::new(3).with_trace(trace.clone()),
    ));
    let service = SnapshotService::new(AbdSnapshotCore::new(&network, LANES, 0u64))
        .with_trace(trace.clone());
    let mut client = service.client(0);

    client.update(0, 11).unwrap();
    assert_eq!(client.scan().unwrap()[0], 11);

    let events = sink.drain();
    let forest = SpanForest::build(&events);
    forest.check().expect("span-tree invariants");

    // The update's quorum store hangs off the update's attempt span.
    let store = forest
        .nodes()
        .iter()
        .find(|n| n.kind == SpanKind::QuorumStore)
        .expect("update ran a quorum store");
    let store_path = forest.path_to_root(store.id);
    assert_eq!(forest.node(store_path[1]).unwrap().kind, SpanKind::Attempt);
    assert_eq!(
        forest.node(*store_path.last().unwrap()).unwrap().kind,
        SpanKind::Update,
        "quorum store attributes to the update that issued it: {forest}"
    );

    // The scan's collect span has the double collect's quorum queries as
    // children — the named phase a stalled scan would be attributed to.
    let collect = forest
        .nodes()
        .iter()
        .find(|n| {
            n.kind == SpanKind::Collect
                && n.children
                    .iter()
                    .any(|&c| forest.node(c).unwrap().kind == SpanKind::QuorumQuery)
        })
        .expect("the scan's collect parented its quorum queries");
    let queries = collect
        .children
        .iter()
        .filter(|&&c| forest.node(c).unwrap().kind == SpanKind::QuorumQuery)
        .count();
    assert!(queries >= 2, "a double collect runs at least two quorum queries: {forest}");
    assert_eq!(
        forest.node(*forest.path_to_root(collect.id).last().unwrap()).unwrap().kind,
        SpanKind::Scan
    );
}
