//! The observability layer observed: sim-scheduled tests asserting that
//! the typed trace events emitted by the snapshot algorithms carry the
//! proof-relevant facts — which process a scanner borrowed from and after
//! how many observed moves (2 for the single-writer protocols per
//! Observation 2, 3 for the multi-writer protocol per Lemma 5.2) — and
//! that a rejected history plus a trace sharing the recorder's clock
//! renders an annotated timeline interleaving operations with the
//! handshake flips and borrow decisions that doomed them.

use std::sync::Arc;

use snapshot_bench::harness::value_for;
use snapshot_core::{
    MultiWriterSnapshot, MwSnapshot, MwSnapshotHandle, MwVariant, SwSnapshot, SwSnapshotHandle,
    UnboundedSnapshot,
};
use snapshot_lin::{check_history, render_annotated_timeline, Recorder, WgResult};
use snapshot_obs::{Event, RingSink, Trace, TraceEvent};
use snapshot_registers::{EpochBackend, Instrumented, ProcessId};
use snapshot_sim::{Decision, FnPolicy, RoundRobinPolicy, Sim, SimConfig};

/// Extracts every `BorrowDecision` as `(emitter, lender, moved)`.
fn borrow_decisions(events: &[TraceEvent]) -> Vec<(usize, usize, u8)> {
    events
        .iter()
        .filter_map(|e| match e.event {
            Event::BorrowDecision { lender, moved } => Some((e.pid, lender, moved)),
            _ => None,
        })
        .collect()
}

#[test]
fn single_writer_borrow_event_names_lender_and_two_moves() {
    // P0 streams updates while P1 scans under round-robin: the same
    // interleaving that exercises the Observation-2 fallback in the
    // wait-freedom suite. Here we assert the *event*, not just the stat:
    // the scanner (P1) borrowed from the only updater (P0) after seeing it
    // move twice.
    let n = 2;
    let ring = Arc::new(RingSink::new(n, 65_536));
    let sim = Sim::new(n);
    let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
    let object =
        UnboundedSnapshot::with_backend(n, 0u64, &backend).with_trace(Trace::new(ring.clone()));

    let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
    {
        let object = &object;
        bodies.push(Box::new(move || {
            let mut h = object.handle(ProcessId::new(0));
            for k in 0..400u64 {
                h.update(k);
            }
        }));
    }
    {
        let object = &object;
        bodies.push(Box::new(move || {
            let mut h = object.handle(ProcessId::new(1));
            for _ in 0..20 {
                let (_, stats) = h.scan_with_stats();
                if stats.borrowed {
                    break;
                }
            }
        }));
    }
    sim.run(
        &mut RoundRobinPolicy::new(),
        SimConfig {
            max_steps: Some(2_000_000),
            stop_when_done: vec![ProcessId::new(1)],
            record_trace: false,
        },
        bodies,
    )
    .expect("simulation failed");

    let events = ring.drain();
    let borrows = borrow_decisions(&events);
    assert!(
        !borrows.is_empty(),
        "expected at least one borrow under round-robin ({} events traced)",
        events.len()
    );
    for (emitter, lender, moved) in &borrows {
        assert_eq!(*emitter, 1, "only the scanner can borrow here");
        assert_eq!(*lender, 0, "the only updater is the only possible lender");
        assert_eq!(*moved, 2, "single-writer protocols borrow after two moves");
    }
}

#[test]
fn multi_writer_borrow_event_names_lender_and_three_moves() {
    // The multi-writer analogue: Lemma 5.2 needs *three* strikes before
    // the lender's second complete update is guaranteed to nest inside the
    // scanner's interval, and the event must say so.
    let (n, m) = (2, 2);
    let ring = Arc::new(RingSink::new(n, 65_536));
    let sim = Sim::new(n);
    let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
    let object = MultiWriterSnapshot::with_backend(n, m, 0u64, &backend)
        .with_trace(Trace::new(ring.clone()));

    let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
    {
        let object = &object;
        bodies.push(Box::new(move || {
            let mut h = object.handle(ProcessId::new(0));
            for k in 0..1000u64 {
                h.update(0, k);
            }
        }));
    }
    {
        let object = &object;
        bodies.push(Box::new(move || {
            let mut h = object.handle(ProcessId::new(1));
            for _ in 0..50 {
                let (_, stats) = h.scan_with_stats();
                if stats.borrowed {
                    break;
                }
            }
        }));
    }
    sim.run(
        &mut RoundRobinPolicy::new(),
        SimConfig {
            max_steps: Some(2_000_000),
            stop_when_done: vec![ProcessId::new(1)],
            record_trace: false,
        },
        bodies,
    )
    .expect("simulation failed");

    let events = ring.drain();
    let borrows = borrow_decisions(&events);
    assert!(
        !borrows.is_empty(),
        "expected at least one borrow under round-robin ({} events traced)",
        events.len()
    );
    for (emitter, lender, moved) in &borrows {
        assert_eq!(*emitter, 1, "only the scanner can borrow here");
        assert_eq!(*lender, 0, "the only updater is the only possible lender");
        assert_eq!(*moved, 3, "the multi-writer protocol borrows after three moves");
    }
}

// ---------------------------------------------------------------------------
// The annotated-timeline acceptance test: re-run the Figure 4 `goto line 1`
// attack from `mw_variant_ablation.rs` with the recorder sharing the trace's
// clock, so the rejected history dumps a timeline showing exactly which
// handshake flips and which borrow decision produced the stale view.
// ---------------------------------------------------------------------------

const N: usize = 3;
const M: usize = 2;

/// The phased adversary of `mw_variant_ablation.rs`: P1 completes its
/// update, the scanner gets a 19-op head start (scan #1 plus scan #2's
/// handshake), P0 flips its handshake bits and stalls, the scanner runs
/// alone.
fn attack_policy() -> impl snapshot_sim::SchedulePolicy {
    const SCANNER_HEAD_START: u64 = 19;
    const P0_HANDSHAKE_OPS: u64 = 6;

    let mut granted = [0u64; N];
    FnPolicy(move |ready: &[snapshot_sim::ReadyProcess], _step| {
        let pick = |pid: usize| ready.iter().position(|r| r.pid.get() == pid);
        if let Some(i) = pick(1) {
            granted[1] += 1;
            return Decision::Run(i);
        }
        if granted[2] < SCANNER_HEAD_START {
            if let Some(i) = pick(2) {
                granted[2] += 1;
                return Decision::Run(i);
            }
        }
        if granted[0] < P0_HANDSHAKE_OPS {
            if let Some(i) = pick(0) {
                granted[0] += 1;
                return Decision::Run(i);
            }
        }
        if let Some(i) = pick(2) {
            granted[2] += 1;
            return Decision::Run(i);
        }
        Decision::Halt
    })
}

/// Records P0's update as pending if the simulator unwinds it mid-stall.
struct PendingGuard<'a> {
    rec: &'a Recorder<u64>,
    pid: ProcessId,
    word: usize,
    value: u64,
    inv: u64,
    done: bool,
}

impl PendingGuard<'_> {
    fn complete(mut self) {
        self.rec.end_update(self.pid, self.word, self.value, self.inv);
        self.done = true;
    }
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.rec.pending_update(self.pid, self.word, self.value, self.inv);
        }
    }
}

#[test]
fn rejected_history_renders_an_annotated_timeline() {
    // Cannot use `run_mw_sim` here: it owns its recorder, and the whole
    // point is to construct the recorder on the *trace's* clock so op
    // intervals and event sequence numbers share one axis.
    let ring = Arc::new(RingSink::new(N, 65_536));
    let trace = Trace::new(ring.clone());
    let sim = Sim::new(N);
    let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
    let object =
        MultiWriterSnapshot::with_options(N, M, 0u64, &backend, &backend, MwVariant::LiteralGoto1)
            .with_trace(trace.clone());
    let recorder = Recorder::with_clock(N, M, 0u64, trace.clock().clone());

    let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
    for (pid, word) in [(0usize, 0usize), (1, 1)] {
        let object = &object;
        let recorder = &recorder;
        bodies.push(Box::new(move || {
            let pid = ProcessId::new(pid);
            let mut h = object.handle(pid);
            let value = value_for(pid, 1);
            let inv = recorder.begin();
            let guard = PendingGuard { rec: recorder, pid, word, value, inv, done: false };
            h.update(word, value);
            guard.complete();
        }));
    }
    {
        let object = &object;
        let recorder = &recorder;
        bodies.push(Box::new(move || {
            let pid = ProcessId::new(2);
            let mut h = object.handle(pid);
            for _ in 0..2 {
                let inv = recorder.begin();
                let view = h.scan();
                recorder.end_scan(pid, view.to_vec(), inv);
            }
        }));
    }
    let report = sim
        .run(
            &mut attack_policy(),
            SimConfig {
                max_steps: Some(10_000),
                stop_when_done: vec![ProcessId::new(2)],
                record_trace: false,
            },
            bodies,
        )
        .expect("simulation failed");
    assert!(report.completed(ProcessId::new(2)), "scanner must finish both scans");

    // The checker convicts the history, exactly as in the ablation test...
    let history = recorder.finish();
    assert_eq!(
        check_history(&history),
        WgResult::NotLinearizable,
        "the literal goto-1 variant must produce a violation"
    );

    // ...and this time the conviction comes with an annotated timeline.
    let events = ring.drain();
    assert!(!events.is_empty(), "the traced run must have buffered events");
    let smoking_gun = borrow_decisions(&events);
    assert_eq!(
        smoking_gun,
        vec![(2, 0, 3)],
        "the scanner borrows the stalled P0's never-written view"
    );

    let timeline = render_annotated_timeline(&history, &events);
    assert!(
        timeline.contains("trace events"),
        "header must count the interleaved events:\n{timeline}"
    );
    assert!(timeline.contains("scan -> [0, 0]"), "the stale view is on the timeline");
    assert!(
        timeline.contains("borrow_decision(lender=P0, moved=3)"),
        "the fatal borrow is on the timeline:\n{timeline}"
    );
    assert!(
        timeline.contains("handshake_flip"),
        "P0's handshake flips (the root cause) are on the timeline"
    );

    // The op lines and event lines must actually interleave: scan #1's
    // events precede later invocations, while the borrow — emitted inside
    // the last scan's interval — renders after every op line (op lines sit
    // at their invocation timestamp).
    let lines: Vec<&str> = timeline.lines().collect();
    let last_op = lines
        .iter()
        .rposition(|l| l.contains("scan ->") || l.contains("update(word"))
        .expect("op lines present");
    let first_event = lines
        .iter()
        .position(|l| l.trim_start().starts_with('·'))
        .expect("event lines present");
    let borrow_line = lines
        .iter()
        .position(|l| l.contains("borrow_decision"))
        .expect("borrow event line present");
    assert!(first_event < last_op, "events must interleave with op lines, not merely trail them");
    assert!(borrow_line > last_op, "the borrow happened inside the final scan's interval");

    // Keep the artifact for humans; best-effort only.
    let _ = std::fs::create_dir_all("target");
    let _ = std::fs::write("target/annotated_timeline.txt", &timeline);
}
