//! Heavy soak tests — excluded from the default run; execute with
//! `cargo test --release -- --ignored` when you want hours of additional
//! confidence.

use snapshot_bench::harness::{
    mw_disjoint_scripts, run_mw_threaded, run_sw_threaded, sw_mixed_scripts, sw_random_scripts,
};
use snapshot_core::{BoundedSnapshot, MultiWriterSnapshot, UnboundedSnapshot};
use snapshot_lin::{check_history, check_intervals};

#[test]
#[ignore = "soak: ~minutes of threaded stress"]
fn soak_threaded_sixteen_processes() {
    for _ in 0..5 {
        let n = 16;
        let object = BoundedSnapshot::new(n, 0u64);
        let history = run_sw_threaded(&object, &sw_mixed_scripts(n, 2_000));
        assert_eq!(check_intervals(&history), Ok(()));

        let object = UnboundedSnapshot::new(n, 0u64);
        let history = run_sw_threaded(&object, &sw_mixed_scripts(n, 2_000));
        assert_eq!(check_intervals(&history), Ok(()));
    }
}

#[test]
#[ignore = "soak: ~minutes of multi-writer stress"]
fn soak_multiwriter_wide_memory() {
    let n = 8;
    let m = 32;
    let object = MultiWriterSnapshot::new(n, m, 0u64);
    let history = run_mw_threaded(&object, &mw_disjoint_scripts(n, m, 2_000));
    assert_eq!(check_intervals(&history), Ok(()));
}

#[test]
#[ignore = "soak: thousands of Wing-Gong-checked micro-races"]
fn soak_many_small_wing_gong_races() {
    for round in 0..5_000u64 {
        let n = 3;
        let object = BoundedSnapshot::new(n, 0u64);
        let history = run_sw_threaded(&object, &sw_random_scripts(n, 3, 0.5, round));
        assert!(
            check_history(&history).is_linearizable(),
            "round {round}: {history:?}"
        );
    }
}

#[test]
#[ignore = "soak: long message-passing crash churn"]
fn soak_abd_crash_churn() {
    use snapshot_abd::{AbdBackend, Network, NetworkConfig};
    use snapshot_registers::ProcessId;
    use std::sync::Arc;

    let network = Arc::new(Network::with_config(NetworkConfig::new(7).with_jitter(99)));
    let backend = AbdBackend::new(&network);
    let n = 4;
    let object = UnboundedSnapshot::with_backend(n, 0u64, &backend);
    std::thread::scope(|s| {
        for i in 0..n {
            let object = &object;
            s.spawn(move || {
                use snapshot_core::{SwSnapshot, SwSnapshotHandle};
                let mut h = object.handle(ProcessId::new(i));
                let mut last = vec![0u64; n];
                for k in 1..=200u64 {
                    h.update(k);
                    let view = h.scan();
                    for (j, &v) in view.iter().enumerate() {
                        assert!(v >= last[j]);
                        last[j] = v;
                    }
                }
            });
        }
        let network = &network;
        s.spawn(move || {
            for round in 0..300usize {
                // Keep at most 3 of 7 crashed (tolerance).
                let a = round % 7;
                let b = (round + 2) % 7;
                let c = (round + 4) % 7;
                network.crash(a);
                network.crash(b);
                network.crash(c);
                std::thread::yield_now();
                network.restart(a);
                network.restart(b);
                network.restart(c);
            }
        });
    });
}
