//! Model checking the snapshot-based randomized consensus: agreement and
//! validity must hold on **every** schedule; only termination is allowed
//! to be probabilistic.

use std::sync::Arc;

use parking_lot::Mutex;
use snapshot_apps::{ConsensusError, RandomizedConsensus};
use snapshot_registers::{EpochBackend, Instrumented, ProcessId};
use snapshot_sim::{ExploreLimits, Explorer, RandomPolicy, Sim, SimConfig};

/// Runs 2-process consensus with the given inputs under `policy`; returns
/// each process's result.
fn run_consensus(
    inputs: [bool; 2],
    coins: [bool; 2],
    policy: &mut dyn snapshot_sim::SchedulePolicy,
) -> Vec<Result<bool, ConsensusError>> {
    let n = 2;
    let sim = Sim::new(n);
    let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
    let consensus = RandomizedConsensus::with_backend(n, 6, &backend);
    let results: Arc<Mutex<Vec<Option<Result<bool, ConsensusError>>>>> =
        Arc::new(Mutex::new(vec![None; n]));

    let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
    for i in 0..n {
        let consensus = &consensus;
        let results = Arc::clone(&results);
        bodies.push(Box::new(move || {
            let mut h = consensus.handle(ProcessId::new(i));
            let r = h.propose(inputs[i], &mut || coins[i]);
            results.lock()[i] = Some(r);
        }));
    }
    sim.run(policy, SimConfig::default(), bodies)
        .expect("simulation failed");
    let guard = results.lock();
    guard.iter().map(|r| r.expect("completed")).collect()
}

fn assert_safe(inputs: [bool; 2], results: &[Result<bool, ConsensusError>]) {
    let decisions: Vec<bool> = results
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .copied()
        .collect();
    // Agreement.
    assert!(
        decisions.windows(2).all(|w| w[0] == w[1]),
        "disagreement: {results:?}"
    );
    // Validity: a decision must be someone's input.
    for d in &decisions {
        assert!(inputs.contains(d), "decided {d} not in inputs {inputs:?}");
    }
}

#[test]
fn exhaustive_schedules_conflicting_inputs() {
    let mut runs = 0u64;
    let mut decisions_seen = std::collections::BTreeSet::new();
    Explorer::new(ExploreLimits {
        max_runs: 8_000,
        max_depth: 4096,
    })
    .explore::<String>(|policy| {
        let results = run_consensus([true, false], [false, false], policy);
        assert_safe([true, false], &results);
        for r in &results {
            if let Ok(d) = r {
                decisions_seen.insert(*d);
            }
        }
        runs += 1;
        Ok(())
    })
    .unwrap();
    assert!(runs >= 8_000 || runs > 100, "only {runs} schedules");
    // The DFS prefix is lexicographic (P0-heavy), so only one outcome may
    // appear here; outcome diversity is asserted in the random-schedule
    // test below.
    assert!(!decisions_seen.is_empty());
}

#[test]
fn exhaustive_schedules_unanimous_inputs_never_need_coins() {
    let mut runs = 0u64;
    Explorer::new(ExploreLimits {
        max_runs: 6_000,
        max_depth: 4096,
    })
    .explore::<String>(|policy| {
        // A coin that would panic if consulted: with unanimous inputs the
        // first round must commit on every schedule.
        let n = 2;
        let sim = Sim::new(n);
        let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
        let consensus = RandomizedConsensus::with_backend(n, 2, &backend);
        let decisions: Arc<Mutex<Vec<Option<bool>>>> = Arc::new(Mutex::new(vec![None; n]));
        let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for i in 0..n {
            let consensus = &consensus;
            let decisions = Arc::clone(&decisions);
            bodies.push(Box::new(move || {
                let mut h = consensus.handle(ProcessId::new(i));
                let d = h
                    .propose(false, &mut || panic!("coin consulted on unanimous inputs"))
                    .expect("must decide in round 1");
                decisions.lock()[i] = Some(d);
            }));
        }
        sim.run(policy, SimConfig::default(), bodies)
            .map_err(|e| e.to_string())?;
        let guard = decisions.lock();
        assert!(guard.iter().all(|d| *d == Some(false)), "validity violated");
        runs += 1;
        Ok(())
    })
    .unwrap();
    assert!(runs > 100);
}

#[test]
fn crashed_proposer_does_not_block_the_others() {
    // Wait-freedom of the underlying snapshots carries to consensus: a
    // proposer frozen mid-round (even mid-register-op) cannot prevent the
    // survivor from deciding, and any value the crashed process might
    // have fixed is honored.
    use snapshot_sim::CrashPolicy;

    for crash_at in [1u64, 3, 7, 15, 30, 60] {
        let n = 2;
        let sim = Sim::new(n);
        let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
        let consensus = RandomizedConsensus::with_backend(n, 8, &backend);
        let results: Arc<Mutex<Vec<Option<Result<bool, ConsensusError>>>>> =
            Arc::new(Mutex::new(vec![None; n]));

        let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        for i in 0..n {
            let consensus = &consensus;
            let results = Arc::clone(&results);
            bodies.push(Box::new(move || {
                let mut h = consensus.handle(ProcessId::new(i));
                let r = h.propose(i == 0, &mut || false);
                results.lock()[i] = Some(r);
            }));
        }
        let mut policy = CrashPolicy::new(snapshot_sim::RoundRobinPolicy::new())
            .crash_after(ProcessId::new(0), crash_at);
        sim.run(
            &mut policy,
            SimConfig {
                max_steps: Some(500_000),
                stop_when_done: vec![ProcessId::new(1)],
                record_trace: false,
            },
            bodies,
        )
        .expect("simulation failed");

        let guard = results.lock();
        let survivor = guard[1].expect("survivor must terminate");
        let survivor_decision = survivor.expect("survivor must decide within budget");
        // If the crashed process got far enough to decide, agreement must
        // hold between the two.
        if let Some(Ok(crashed_decision)) = guard[0] {
            assert_eq!(
                crashed_decision, survivor_decision,
                "crash_at={crash_at}: agreement violated"
            );
        }
    }
}

#[test]
fn random_schedules_with_adversarial_coins_stay_safe() {
    // Coins engineered to prolong disagreement; round budget small, so
    // RoundLimitExceeded is expected on some schedules. Safety must hold
    // on all.
    let mut outcomes = std::collections::BTreeSet::new();
    for seed in 0..300u64 {
        let results = run_consensus(
            [true, false],
            [true, false], // each process stubbornly re-flips to its own input
            &mut RandomPolicy::seeded(seed),
        );
        assert_safe([true, false], &results);
        for r in &results {
            if let Ok(d) = r {
                outcomes.insert(*d);
            }
        }
    }
    // The adversary chooses *which* input wins, never *whether* processes
    // agree: across schedules both outcomes occur.
    assert_eq!(outcomes.len(), 2, "outcomes seen: {outcomes:?}");
}
