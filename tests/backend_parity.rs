//! Backend parity: the constructions are generic over the register
//! substrate, and their correctness must not depend on which one is
//! plugged in. Identical workloads run over the lock-free epoch cells,
//! the mutex baseline cells, and (for the multi-writer object) the
//! register-from-register compound backend — all histories must check
//! out.

use snapshot_bench::harness::{
    mw_disjoint_scripts, run_mw_threaded, run_sw_threaded, sw_mixed_scripts,
};
use snapshot_core::{BoundedSnapshot, MultiWriterSnapshot, MwVariant, UnboundedSnapshot};
use snapshot_lin::check_intervals;
use snapshot_registers::{Backend, CompoundBackend, EpochBackend, MutexBackend};

fn check_sw_over<B: Backend>(backend: &B) {
    let n = 4;
    let unbounded = UnboundedSnapshot::with_backend(n, 0u64, backend);
    let history = run_sw_threaded(&unbounded, &sw_mixed_scripts(n, 60));
    assert_eq!(check_intervals(&history), Ok(()), "unbounded");

    let bounded = BoundedSnapshot::with_backend(n, 0u64, backend);
    let history = run_sw_threaded(&bounded, &sw_mixed_scripts(n, 60));
    assert_eq!(check_intervals(&history), Ok(()), "bounded");
}

#[test]
fn single_writer_algorithms_over_epoch_backend() {
    check_sw_over(&EpochBackend::new());
}

#[test]
fn single_writer_algorithms_over_mutex_backend() {
    check_sw_over(&MutexBackend::new());
}

#[test]
fn multiwriter_over_all_backend_combinations() {
    let n = 3;
    let m = 3;
    let scripts = mw_disjoint_scripts(n, m, 40);

    // Epoch everywhere.
    let object = MultiWriterSnapshot::new(n, m, 0u64);
    assert_eq!(check_intervals(&run_mw_threaded(&object, &scripts)), Ok(()));

    // Mutex everywhere.
    let mutex = MutexBackend::new();
    let object = MultiWriterSnapshot::with_backend(n, m, 0u64, &mutex);
    assert_eq!(check_intervals(&run_mw_threaded(&object, &scripts)), Ok(()));

    // Epoch single-writer parts + compound (register-from-register) value
    // words over a mutex inner backend: the wildest composition.
    let swmr = EpochBackend::new();
    let mwmr = CompoundBackend::new(n, MutexBackend::new());
    let object =
        MultiWriterSnapshot::with_options(n, m, 0u64, &swmr, &mwmr, MwVariant::RescanHandshake);
    assert_eq!(check_intervals(&run_mw_threaded(&object, &scripts)), Ok(()));
}

#[test]
fn nested_compound_backends_still_work() {
    // MWMR registers built from MWMR-from-SWMR registers built from
    // epoch cells: two levels of the construction stacked. Pointless in
    // practice, but composition should not care.
    let n = 2;
    let m = 2;
    let inner = CompoundBackend::new(n, EpochBackend::new());
    let outer = CompoundBackend::new(n, inner);
    let swmr = EpochBackend::new();
    let object =
        MultiWriterSnapshot::with_options(n, m, 0u64, &swmr, &outer, MwVariant::RescanHandshake);
    let history = run_mw_threaded(&object, &mw_disjoint_scripts(n, m, 10));
    assert_eq!(check_intervals(&history), Ok(()));
}
