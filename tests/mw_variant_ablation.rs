//! Ablation of the one ambiguous line in the paper's Figure 4.
//!
//! The scanned technical-memo pseudocode of the multi-writer scan ends
//! with `goto line 1` — retrying the collects *without* refreshing the
//! handshake bits. Re-deriving Lemma 5.2 suggests the retry must re-run
//! the handshake (as Figure 3 does): otherwise a **single** handshake flip
//! by an updater that then stalls forever is re-blamed on every retry,
//! accrues the three strikes by itself, and the scanner borrows a view
//! that can predate its own interval.
//!
//! This test *constructs that exact schedule* and shows, mechanically:
//!
//! * under [`MwVariant::LiteralGoto1`] the recorded history is **not
//!   linearizable** (the Wing–Gong checker rejects it);
//! * under [`MwVariant::RescanHandshake`] (our default reading) the same
//!   schedule produces a linearizable history.
//!
//! The attack schedule, with `n = 3` processes and `m = 2` words:
//!
//! 1. `P1` completes `update(word 1, v1)` while the others are parked.
//! 2. The scanner `P2` completes scan #1 (sees `v1`), then begins scan #2
//!    and performs exactly its handshake (2n register ops).
//! 3. `P0` performs exactly the first 2n ops of `update(word 0, ·)` — its
//!    handshake-bit flips — and then stalls forever.
//! 4. The scanner runs alone. Its handshake bit toward `P0` now disagrees
//!    with `P0`'s flipped bit on every iteration.
//!
//! Under the literal reading the scanner blames `P0` three times and
//! borrows `view_0` — which `P0` never wrote, i.e. the *initial* view,
//! missing `v1` that scan #1 already returned. Time travel.

use snapshot_bench::harness::{run_mw_sim, MwStep};
use snapshot_core::{MultiWriterSnapshot, MwVariant};
use snapshot_lin::{check_history, History, SnapOp, WgResult};
use snapshot_registers::ProcessId;
use snapshot_sim::{Decision, FnPolicy, SimConfig};

const N: usize = 3;
const M: usize = 2;

/// The phased adversary described in the module docs.
fn attack_policy() -> impl snapshot_sim::SchedulePolicy {
    // Scanner budget before P0 is released: scan #1 costs
    // 2n (handshake) + 2m (double collect) + n (handshake collect) = 13
    // ops for n = 3, m = 2; scan #2's handshake is another 2n = 6.
    const SCANNER_HEAD_START: u64 = 19;
    const P0_HANDSHAKE_OPS: u64 = 6; // 2n: update line 0

    let mut granted = [0u64; N];
    FnPolicy(move |ready: &[snapshot_sim::ReadyProcess], _step| {
        let pick = |pid: usize| ready.iter().position(|r| r.pid.get() == pid);
        // Phase A: P1's update runs to completion.
        if let Some(i) = pick(1) {
            granted[1] += 1;
            return Decision::Run(i);
        }
        // Phase B: scanner finishes scan #1 and the handshake of scan #2.
        if granted[2] < SCANNER_HEAD_START {
            if let Some(i) = pick(2) {
                granted[2] += 1;
                return Decision::Run(i);
            }
        }
        // Phase C: P0 flips its handshake bits, then stalls forever.
        if granted[0] < P0_HANDSHAKE_OPS {
            if let Some(i) = pick(0) {
                granted[0] += 1;
                return Decision::Run(i);
            }
        }
        // Phase D: scanner alone.
        if let Some(i) = pick(2) {
            granted[2] += 1;
            return Decision::Run(i);
        }
        Decision::Halt
    })
}

fn run_attack(variant: MwVariant) -> History<u64> {
    let scripts: Vec<Vec<MwStep>> = vec![
        vec![MwStep::Update(0)],          // P0: the staller
        vec![MwStep::Update(1)],          // P1: completes first
        vec![MwStep::Scan, MwStep::Scan], // P2: the victim scanner
    ];
    let (history, report) = run_mw_sim(
        N,
        M,
        &scripts,
        &mut attack_policy(),
        SimConfig {
            max_steps: Some(10_000),
            stop_when_done: vec![ProcessId::new(2)],
            record_trace: false,
        },
        |b| MultiWriterSnapshot::with_options(N, M, 0u64, b, b, variant),
    )
    .expect("simulation failed");
    assert!(
        report.completed(ProcessId::new(2)),
        "scanner did not complete under {variant:?} (halt: {:?})",
        report.halt
    );
    history
}

/// The scanner's recorded scan views, in invocation order.
fn scan_views(history: &History<u64>) -> Vec<Vec<u64>> {
    history
        .ops()
        .iter()
        .filter_map(|o| match &o.op {
            SnapOp::Scan { view } if o.res.is_some() => Some(view.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn literal_goto1_returns_a_stale_borrowed_view() {
    let history = run_attack(MwVariant::LiteralGoto1);
    let views = scan_views(&history);
    assert_eq!(views.len(), 2, "both scans should complete");
    // Scan #1 saw P1's completed update; scan #2 — invoked strictly after
    // scan #1 responded — lost it again: the borrowed initial view.
    assert_eq!(
        views[0][1],
        1_000_000 * 2 + 1,
        "scan #1 must see P1's value"
    );
    assert_eq!(
        views[1],
        vec![0, 0],
        "scan #2 returns the stale initial view"
    );
    // And the checker convicts the whole history.
    assert_eq!(
        check_history(&history),
        WgResult::NotLinearizable,
        "the literal variant must produce a linearizability violation"
    );
}

#[test]
fn rescan_handshake_survives_the_same_attack() {
    let history = run_attack(MwVariant::RescanHandshake);
    let views = scan_views(&history);
    assert_eq!(views.len(), 2);
    assert_eq!(views[0][1], 1_000_000 * 2 + 1);
    // Scan #2 re-handshakes, the single flip is blamed only once, the
    // next double collect is clean, and the true memory is returned.
    assert_eq!(views[1][1], 1_000_000 * 2 + 1, "scan #2 keeps P1's value");
    assert!(
        check_history(&history).is_linearizable(),
        "the corrected variant must stay linearizable"
    );
}

#[test]
fn literal_variant_is_fine_without_the_pathological_schedule() {
    // The bug needs the stall-after-handshake schedule; under plain
    // round-robin both variants behave identically. (This is why the
    // ambiguity is easy to miss without a model checker.)
    use snapshot_sim::RoundRobinPolicy;
    let scripts: Vec<Vec<MwStep>> = vec![
        vec![MwStep::Update(0)],
        vec![MwStep::Update(1)],
        vec![MwStep::Scan, MwStep::Scan],
    ];
    let (history, _) = run_mw_sim(
        N,
        M,
        &scripts,
        &mut RoundRobinPolicy::new(),
        SimConfig::default(),
        |b| MultiWriterSnapshot::with_options(N, M, 0u64, b, b, MwVariant::LiteralGoto1),
    )
    .unwrap();
    assert!(check_history(&history).is_linearizable());
}
