//! The Section 6 compound construction in wall-clock terms: the
//! multi-writer snapshot over hardware multi-writer registers vs over
//! multi-writer registers *built from single-writer registers*
//! ([`MwmrFromSwmr`]) — the `Θ(n)` blow-up per register access that the
//! `O(n³)` compound figure comes from.
//!
//! [`MwmrFromSwmr`]: snapshot_registers::MwmrFromSwmr

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snapshot_core::{MultiWriterSnapshot, MwSnapshot, MwSnapshotHandle, MwVariant};
use snapshot_registers::{CompoundBackend, EpochBackend, ProcessId, Register};

fn bench_compound(c: &mut Criterion) {
    let mut group = c.benchmark_group("compound_scan");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(20);

    for n in [2usize, 4, 8] {
        let m = n;
        {
            let object = MultiWriterSnapshot::new(n, m, 0u64);
            let mut h = object.handle(ProcessId::new(0));
            h.update(0, 1);
            group.bench_with_input(BenchmarkId::new("direct_mwmr", n), &n, |b, _| {
                b.iter(|| black_box(h.scan()))
            });
        }
        {
            let swmr = EpochBackend::new();
            let mwmr = CompoundBackend::new(n, EpochBackend::new());
            let object = MultiWriterSnapshot::with_options(
                n,
                m,
                0u64,
                &swmr,
                &mwmr,
                MwVariant::RescanHandshake,
            );
            let mut h = object.handle(ProcessId::new(0));
            h.update(0, 1);
            group.bench_with_input(BenchmarkId::new("mwmr_from_swmr", n), &n, |b, _| {
                b.iter(|| black_box(h.scan()))
            });
        }
    }
    group.finish();

    // The register construction itself: read/write latency vs n.
    let mut group = c.benchmark_group("mwmr_from_swmr_register");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(20);
    for n in [2usize, 4, 8, 16, 32] {
        let reg = snapshot_registers::MwmrFromSwmr::new(&EpochBackend::new(), n, 0u64);
        let p = ProcessId::new(0);
        reg.write(p, 1);
        group.bench_with_input(BenchmarkId::new("read", n), &n, |b, _| {
            b.iter(|| black_box(reg.read(p)))
        });
        let mut k = 0u64;
        group.bench_with_input(BenchmarkId::new("write", n), &n, |b, _| {
            b.iter(|| {
                k += 1;
                reg.write(p, black_box(k))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compound);
criterion_main!(benches);
