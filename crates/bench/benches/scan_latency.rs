//! Uncontended scan latency of every construction as `n` grows.
//!
//! The paper's `O(n²)` is a worst-case bound; the quiescent fast path is a
//! single double collect, i.e. `Θ(n)` reads — these benches confirm the
//! fast-path shape and compare constant factors across the constructions
//! and the baselines.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snapshot_core::{
    BoundedSnapshot, DoubleCollectSnapshot, LockSnapshot, MultiWriterSnapshot, MwSnapshot,
    MwSnapshotHandle, SwSnapshot, SwSnapshotHandle, UnboundedSnapshot,
};
use snapshot_registers::ProcessId;

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_latency");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(30);

    for n in [2usize, 4, 8, 16] {
        {
            let object = UnboundedSnapshot::new(n, 0u64);
            let mut h = object.handle(ProcessId::new(0));
            h.update(1);
            group.bench_with_input(BenchmarkId::new("unbounded", n), &n, |b, _| {
                b.iter(|| black_box(h.scan()))
            });
        }
        {
            let object = BoundedSnapshot::new(n, 0u64);
            let mut h = object.handle(ProcessId::new(0));
            h.update(1);
            group.bench_with_input(BenchmarkId::new("bounded", n), &n, |b, _| {
                b.iter(|| black_box(h.scan()))
            });
        }
        {
            let object = MultiWriterSnapshot::new(n, n, 0u64);
            let mut h = object.handle(ProcessId::new(0));
            h.update(0, 1);
            group.bench_with_input(BenchmarkId::new("multi_writer", n), &n, |b, _| {
                b.iter(|| black_box(h.scan()))
            });
        }
        {
            let object = DoubleCollectSnapshot::new(n, 0u64);
            let mut h = object.handle(ProcessId::new(0));
            h.update(1);
            group.bench_with_input(BenchmarkId::new("double_collect", n), &n, |b, _| {
                b.iter(|| black_box(h.scan()))
            });
        }
        {
            let object = LockSnapshot::new(n, 0u64);
            let mut h = object.handle(ProcessId::new(0));
            h.update(1);
            group.bench_with_input(BenchmarkId::new("lock", n), &n, |b, _| {
                b.iter(|| black_box(h.scan()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scans);
criterion_main!(benches);
