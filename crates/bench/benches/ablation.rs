//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * register backend: lock-free epoch cells vs mutex cells (the
//!   "composite writes are one pointer swap" decision);
//! * the Figure 4 retry edge: re-handshake (default) vs the literal
//!   `goto line 1` — measuring what the correctness fix costs on the
//!   fast path (nothing measurable, since the handshake refresh only
//!   happens on *retries*);
//! * view representation: `Arc<[V]>` sharing vs copying out.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snapshot_core::{
    BoundedSnapshot, MultiWriterSnapshot, MwSnapshot, MwSnapshotHandle, MwVariant, SwSnapshot,
    SwSnapshotHandle,
};
use snapshot_registers::{EpochBackend, MutexBackend, ProcessId};

fn bench_backend_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_register_backend");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(25);

    for n in [4usize, 16] {
        {
            let object = BoundedSnapshot::with_backend(n, 0u64, &EpochBackend::new());
            let mut h = object.handle(ProcessId::new(0));
            h.update(1);
            group.bench_with_input(BenchmarkId::new("epoch_scan", n), &n, |b, _| {
                b.iter(|| black_box(h.scan()))
            });
        }
        {
            let object = BoundedSnapshot::with_backend(n, 0u64, &MutexBackend::new());
            let mut h = object.handle(ProcessId::new(0));
            h.update(1);
            group.bench_with_input(BenchmarkId::new("mutex_scan", n), &n, |b, _| {
                b.iter(|| black_box(h.scan()))
            });
        }
    }
    group.finish();
}

fn bench_variant_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_figure4_retry_edge");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(25);

    for variant in [MwVariant::RescanHandshake, MwVariant::LiteralGoto1] {
        let n = 4;
        let m = 4;
        let backend = EpochBackend::new();
        let object = MultiWriterSnapshot::with_options(n, m, 0u64, &backend, &backend, variant);
        let mut h = object.handle(ProcessId::new(0));
        h.update(0, 1);
        group.bench_with_input(
            BenchmarkId::new(format!("{variant:?}"), n),
            &n,
            |b, _| b.iter(|| black_box(h.scan())),
        );
    }
    group.finish();
}

fn bench_view_representation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_view_representation");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(25);

    for n in [4usize, 64] {
        let object = BoundedSnapshot::new(n, 0u64);
        let mut h = object.handle(ProcessId::new(0));
        h.update(1);
        let view = h.scan();
        // Cloning shares the Arc — what the algorithms do when embedding
        // views in registers.
        group.bench_with_input(BenchmarkId::new("arc_clone", n), &n, |b, _| {
            b.iter(|| black_box(view.clone()))
        });
        // Copying out — what a view embedded *by value* would cost per
        // register write.
        group.bench_with_input(BenchmarkId::new("deep_copy", n), &n, |b, _| {
            b.iter(|| black_box(view.to_vec()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_backend_ablation,
    bench_variant_ablation,
    bench_view_representation
);
criterion_main!(benches);
