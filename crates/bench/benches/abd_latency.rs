//! Wall-clock cost of the message-passing deployment (Section 6 / E7):
//! ABD register ops and snapshot scans as the replica count grows, and
//! the (absence of) cost of a crashed minority.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snapshot_abd::{AbdBackend, Network};
use snapshot_core::{BoundedSnapshot, SwSnapshot, SwSnapshotHandle};
use snapshot_registers::{Backend, ProcessId, Register};

fn bench_abd(c: &mut Criterion) {
    let mut group = c.benchmark_group("abd_register");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(20);

    for replicas in [3usize, 5, 7] {
        let network = Arc::new(Network::new(replicas));
        let backend = AbdBackend::new(&network);
        let reg = backend.cell(0u64);
        let p = ProcessId::new(0);
        reg.write(p, 1);
        group.bench_with_input(BenchmarkId::new("read", replicas), &replicas, |b, _| {
            b.iter(|| black_box(reg.read(p)))
        });
        let mut k = 0u64;
        group.bench_with_input(BenchmarkId::new("write", replicas), &replicas, |b, _| {
            b.iter(|| {
                k += 1;
                reg.write(p, black_box(k))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("abd_snapshot_scan");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(15);

    for (replicas, crashed) in [(3usize, 0usize), (3, 1), (5, 0), (5, 2)] {
        let network = Arc::new(Network::new(replicas));
        for i in 0..crashed {
            network.crash(i);
        }
        let backend = AbdBackend::new(&network);
        let object = BoundedSnapshot::with_backend(2, 0u64, &backend);
        let mut h = object.handle(ProcessId::new(0));
        h.update(1);
        group.bench_with_input(
            BenchmarkId::new(format!("r{replicas}_crashed{crashed}"), replicas),
            &replicas,
            |b, _| b.iter(|| black_box(h.scan())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_abd);
criterion_main!(benches);
