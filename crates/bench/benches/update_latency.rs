//! Uncontended update latency of every construction as `n` grows.
//!
//! Updates in the wait-free algorithms embed a full scan (Observation 2's
//! price for helping starving scanners) — compare against the
//! single-register-write updates of the double-collect baseline to see
//! exactly what the wait-freedom guarantee costs on the write path.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snapshot_core::{
    BoundedSnapshot, DoubleCollectSnapshot, LockSnapshot, MultiWriterSnapshot, MwSnapshot,
    MwSnapshotHandle, SwSnapshot, SwSnapshotHandle, UnboundedSnapshot,
};
use snapshot_registers::ProcessId;

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("update_latency");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(30);

    for n in [2usize, 4, 8, 16] {
        {
            let object = UnboundedSnapshot::new(n, 0u64);
            let mut h = object.handle(ProcessId::new(0));
            let mut k = 0u64;
            group.bench_with_input(BenchmarkId::new("unbounded", n), &n, |b, _| {
                b.iter(|| {
                    k += 1;
                    h.update(black_box(k))
                })
            });
        }
        {
            let object = BoundedSnapshot::new(n, 0u64);
            let mut h = object.handle(ProcessId::new(0));
            let mut k = 0u64;
            group.bench_with_input(BenchmarkId::new("bounded", n), &n, |b, _| {
                b.iter(|| {
                    k += 1;
                    h.update(black_box(k))
                })
            });
        }
        {
            let object = MultiWriterSnapshot::new(n, n, 0u64);
            let mut h = object.handle(ProcessId::new(0));
            let mut k = 0u64;
            group.bench_with_input(BenchmarkId::new("multi_writer", n), &n, |b, _| {
                b.iter(|| {
                    k += 1;
                    h.update((k % n as u64) as usize, black_box(k))
                })
            });
        }
        {
            let object = DoubleCollectSnapshot::new(n, 0u64);
            let mut h = object.handle(ProcessId::new(0));
            let mut k = 0u64;
            group.bench_with_input(BenchmarkId::new("double_collect", n), &n, |b, _| {
                b.iter(|| {
                    k += 1;
                    h.update(black_box(k))
                })
            });
        }
        {
            let object = LockSnapshot::new(n, 0u64);
            let mut h = object.handle(ProcessId::new(0));
            let mut k = 0u64;
            group.bench_with_input(BenchmarkId::new("lock", n), &n, |b, _| {
                b.iter(|| {
                    k += 1;
                    h.update(black_box(k))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
