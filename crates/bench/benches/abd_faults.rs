//! Cost of resilience: ABD register operation latency under seeded link
//! faults. Measures how the retransmission machinery degrades as the fault
//! mix thickens — the "graceful" half of graceful degradation, to put next
//! to `abd_latency`'s fault-free numbers.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snapshot_abd::{
    AbdRegister, FaultPlan, LinkFault, Network, NetworkConfig, RetryPolicy,
};
use snapshot_registers::ProcessId;

/// Fast retries so retransmission latency, not backoff idling, dominates.
fn bench_retry() -> RetryPolicy {
    RetryPolicy {
        initial_backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(4),
        multiplier: 2,
        jitter: 0.5,
    }
}

fn fault_mixes() -> Vec<(&'static str, LinkFault)> {
    vec![
        ("clean", LinkFault::healthy()),
        ("drop10", LinkFault::healthy().with_drop(0.10)),
        ("drop25", LinkFault::healthy().with_drop(0.25)),
        (
            "dup_reorder",
            LinkFault::healthy()
                .with_duplicate(0.15)
                .with_reorder(0.20, 3),
        ),
        (
            "storm",
            LinkFault::healthy()
                .with_drop(0.15)
                .with_duplicate(0.10)
                .with_reorder(0.15, 3)
                .with_reply_drop(0.08),
        ),
    ]
}

fn bench_abd_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("abd_faulty_link");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(15);

    for (name, fault) in fault_mixes() {
        let network = Arc::new(Network::with_config(
            NetworkConfig::new(5)
                .with_jitter(2026)
                .with_faults(FaultPlan::seeded(42).with_default(fault))
                .with_retry(bench_retry()),
        ));
        let reg = AbdRegister::new(Arc::clone(&network), 0u64);
        let p = ProcessId::new(0);
        reg.try_write(p, 1).expect("all replicas reachable");

        group.bench_with_input(BenchmarkId::new("read", name), &name, |b, _| {
            b.iter(|| black_box(reg.try_read(p).expect("majority reachable")))
        });
        let mut k = 1u64;
        group.bench_with_input(BenchmarkId::new("write", name), &name, |b, _| {
            b.iter(|| {
                k += 1;
                reg.try_write(p, black_box(k)).expect("majority reachable")
            })
        });
    }
    group.finish();

    // A crashed minority forces the client to time out on its acks — the
    // quorum still answers, but every phase sends to dead replicas.
    let mut group = c.benchmark_group("abd_crashed_minority");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(15);
    for crashed in [0usize, 1, 2] {
        let network = Arc::new(Network::with_config(
            NetworkConfig::new(5).with_jitter(7).with_retry(bench_retry()),
        ));
        for i in 0..crashed {
            network.crash(i);
        }
        let reg = AbdRegister::new(Arc::clone(&network), 0u64);
        let p = ProcessId::new(0);
        group.bench_with_input(
            BenchmarkId::new("read", format!("crashed{crashed}")),
            &crashed,
            |b, _| b.iter(|| black_box(reg.try_read(p).expect("majority alive"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_abd_faults);
criterion_main!(benches);
