//! Scan latency while an updater continuously churns — the regime that
//! separates the wait-free algorithms (bounded retries, borrowed views)
//! from the double-collect baseline (unbounded retries).
//!
//! On a single-CPU host the "concurrent" updater interleaves via
//! preemption only; shapes still hold, absolute numbers are machine noise.

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snapshot_core::{
    BoundedSnapshot, DoubleCollectSnapshot, SwSnapshot, SwSnapshotHandle, UnboundedSnapshot,
};
use snapshot_registers::ProcessId;

/// Benchmarks `scan` on process `n-1` while process 0 updates in a
/// background thread for the duration of the measurement.
macro_rules! contended_scan {
    ($group:expr, $name:expr, $n:expr, $ty:ident) => {{
        let n: usize = $n;
        let object = $ty::new(n, 0u64);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            {
                let object = &object;
                let stop = &stop;
                s.spawn(move || {
                    let mut h = object.handle(ProcessId::new(0));
                    let mut k = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        k += 1;
                        h.update(k);
                        // Give the benched thread cycles on small hosts.
                        if k % 64 == 0 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let mut h = object.handle(ProcessId::new(n - 1));
            $group.bench_with_input(BenchmarkId::new($name, n), &n, |b, _| {
                b.iter(|| black_box(h.scan()))
            });
            stop.store(true, Ordering::Relaxed);
        });
    }};
}

fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("contended_scan");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(20);

    for n in [2usize, 4, 8] {
        contended_scan!(group, "unbounded", n, UnboundedSnapshot);
        contended_scan!(group, "bounded", n, BoundedSnapshot);
    }
    group.finish();

    // The double-collect baseline is benchmarked with a bounded retry
    // budget (its unbounded scan may never return under churn — that is
    // experiment E3's point); failures count as max-budget work.
    let mut group = c.benchmark_group("contended_scan_double_collect_budgeted");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(800))
        .sample_size(20);
    for n in [2usize, 4, 8] {
        let object = DoubleCollectSnapshot::new(n, 0u64);
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            {
                let object = &object;
                let stop = &stop;
                s.spawn(move || {
                    let mut h = object.handle(ProcessId::new(0));
                    let mut k = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        k += 1;
                        h.update(k);
                        if k % 64 == 0 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let mut h = object.handle(ProcessId::new(n - 1));
            group.bench_with_input(BenchmarkId::new("double_collect", n), &n, |b, _| {
                b.iter(|| black_box(h.try_scan(64)))
            });
            stop.store(true, Ordering::Relaxed);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_contended);
criterion_main!(benches);
