//! Operation-count models for the Section 6 comparison.
//!
//! Section 6 of the paper compares register-operation costs:
//!
//! * Anderson's bounded single-writer composite registers \[A89a\]:
//!   `O(2ⁿ)` single-writer register operations per snapshot operation;
//! * this paper's bounded single-writer algorithm: `O(n²)`;
//! * Anderson's multi-writer construction layered over this paper's
//!   single-writer algorithm: `O(n⁴)` single-writer operations;
//! * this paper's multi-writer algorithm over multi-writer registers that
//!   are in turn built from single-writer ones: `O(n³)`.
//!
//! The paper's comparison is asymptotic; reimplementing Anderson's
//! recursive composite registers is a separate paper's artifact, so — per
//! the substitution policy in `DESIGN.md` — Anderson's side is modeled by
//! its published operation counts, while **our** side is *measured* by the
//! instrumented register backend and cross-checked against the exact
//! worst-case formulas below (derived line-by-line from Figures 2–4).
//!
//! All formulas count primitive reads + writes of the component registers.

/// Worst-case register ops of one scan of the **unbounded** single-writer
/// algorithm (Figure 2): at most `n + 1` double collects of `2n` reads.
pub fn unbounded_sw_scan_ops(n: u64) -> u64 {
    2 * n * (n + 1)
}

/// Worst-case register ops of one update of the unbounded algorithm: an
/// embedded scan plus one write.
pub fn unbounded_sw_update_ops(n: u64) -> u64 {
    unbounded_sw_scan_ops(n) + 1
}

/// Worst-case register ops of one scan of the **bounded** single-writer
/// algorithm (Figure 3): at most `n + 1` iterations, each performing the
/// handshake (`n` register reads + `n` bit writes) and a double collect
/// (`2n` reads).
pub fn bounded_sw_scan_ops(n: u64) -> u64 {
    4 * n * (n + 1)
}

/// Worst-case register ops of one update of the bounded algorithm: `n`
/// handshake-bit reads, the embedded scan, and one register write.
pub fn bounded_sw_update_ops(n: u64) -> u64 {
    n + bounded_sw_scan_ops(n) + 1
}

/// Worst-case *multi-writer*-register ops of one scan of the multi-writer
/// algorithm (Figure 4) with `n` processes and `m` words: at most `2n + 1`
/// iterations, each re-reading the handshake (`n` reads + `n` bit writes),
/// double-collecting the `m` value registers (`2m` reads) and collecting
/// the `n` handshake bits (`n` reads), plus possibly one borrowed-view
/// read.
pub fn mw_scan_ops(n: u64, m: u64) -> u64 {
    (3 * n + 2 * m) * (2 * n + 1) + 1
}

/// Worst-case ops of one multi-writer update: `2n` handshake-bit ops, the
/// embedded scan, the view write and the value write.
pub fn mw_update_ops(n: u64, m: u64) -> u64 {
    2 * n + mw_scan_ops(n, m) + 2
}

/// Single-writer ops per operation of the **compound** construction of
/// Section 6: the multi-writer algorithm with each of its `m` value
/// registers implemented from `n` single-writer registers
/// ([`MwmrFromSwmr`]: a read or write of the embedded register costs
/// `n + 1` single-writer ops). Handshake bits and view registers are
/// already single-writer. `Θ(n³)` for `m = n`.
///
/// [`MwmrFromSwmr`]: snapshot_registers::MwmrFromSwmr
pub fn compound_mw_scan_swmr_ops(n: u64, m: u64) -> u64 {
    // Per iteration: 2n handshake bit ops + n handshake-bit collect reads
    // (single-writer), plus 2m embedded-register reads at (n + 1) each.
    (3 * n + 2 * m * (n + 1)) * (2 * n + 1) + 1
}

/// Anderson's bounded single-writer composite register \[A89a\]: the paper
/// credits it with `O(2ⁿ)` single-writer operations per snapshot
/// operation. Modeled as `c · 2ⁿ` with `c = 1` (shape, not constant,
/// is what Section 6 compares).
pub fn anderson_sw_ops(n: u32) -> u128 {
    1u128 << n.min(127)
}

/// Anderson's multi-writer snapshot built over a single-writer snapshot
/// \[A89b\]: `O(n²)` single-writer-snapshot operations, each costing this
/// paper's bounded `O(n²)` — the `O(n⁴)` figure of Section 6.
pub fn anderson_mw_over_bounded_sw_ops(n: u64) -> u128 {
    (n as u128) * (n as u128) * bounded_sw_update_ops(n) as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_scale_as_claimed() {
        // O(n^2): quadrupling n multiplies cost by ~16.
        let r = bounded_sw_scan_ops(64) as f64 / bounded_sw_scan_ops(16) as f64;
        assert!((14.0..18.0).contains(&r), "ratio {r}");

        // O(n^3) for the compound construction at m = n.
        let r = compound_mw_scan_swmr_ops(64, 64) as f64 / compound_mw_scan_swmr_ops(16, 16) as f64;
        assert!((50.0..80.0).contains(&r), "ratio {r}");

        // O(n^4) for Anderson's compound.
        let r =
            anderson_mw_over_bounded_sw_ops(64) as f64 / anderson_mw_over_bounded_sw_ops(16) as f64;
        assert!((200.0..300.0).contains(&r), "ratio {r}");

        // O(2^n) dwarfs everything quickly.
        assert!(anderson_sw_ops(30) > bounded_sw_scan_ops(30) as u128 * 1000);
    }

    #[test]
    fn crossover_where_the_paper_claims_it() {
        // For small n the exponential construction is competitive; by
        // n ≈ 16 it is hopeless. (Shape claim, constants are modeled.)
        assert!(anderson_sw_ops(4) < bounded_sw_scan_ops(4) as u128);
        assert!(anderson_sw_ops(16) > bounded_sw_scan_ops(16) as u128);
    }

    #[test]
    fn shift_saturates_instead_of_overflowing() {
        assert_eq!(anderson_sw_ops(200), 1u128 << 127);
    }
}
