//! Command-line model checker for the snapshot constructions.
//!
//! Exhaustively (or randomly) explores schedules of a scripted workload
//! over a chosen algorithm, checks every history for linearizability, and
//! on a violation prints the history timeline plus a shrunken
//! reproduction schedule.
//!
//! ```text
//! USAGE:
//!   explore --algorithm <unbounded|bounded|multiwriter|multiwriter-literal|double-collect>
//!           --scripts <per-process scripts, comma-separated>
//!           [--words <m>] [--max-runs <k>] [--random <seeds>]
//!
//! SCRIPT SYNTAX (one string per process, joined by commas):
//!   U        update own segment (single-writer)
//!   S        scan
//!   0..9     update that word (multi-writer)
//!
//! EXAMPLES:
//!   # every schedule of update-vs-scan on the bounded algorithm
//!   explore --algorithm bounded --scripts US,S
//!
//!   # hunt the Figure 4 bug: the literal variant over random schedules
//!   explore --algorithm multiwriter-literal --words 2 --scripts 0,1,SS --random 5000
//! ```

use snapshot_bench::harness::{run_mw_sim, run_sw_sim, MwStep, SwStep};
use snapshot_core::{
    BoundedSnapshot, DoubleCollectSnapshot, MultiWriterSnapshot, MwVariant, UnboundedSnapshot,
};
use snapshot_lin::{check_history, render_timeline, History, WgResult};
use snapshot_sim::{replay, shrink_schedule, ExploreLimits, Explorer, RandomPolicy, SimConfig};

#[derive(Clone, Copy, Debug, PartialEq)]
enum Algorithm {
    Unbounded,
    Bounded,
    MultiWriter,
    MultiWriterLiteral,
    DoubleCollect,
}

struct Options {
    algorithm: Algorithm,
    scripts: Vec<String>,
    words: usize,
    max_runs: u64,
    random: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: explore --algorithm <unbounded|bounded|multiwriter|multiwriter-literal|double-collect> \
         --scripts <S1,S2,...> [--words m] [--max-runs k] [--random seeds]\n\
         script chars: U=update own segment, S=scan, 0-9=update that word (multi-writer)"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut algorithm = None;
    let mut scripts = Vec::new();
    let mut words = 0usize;
    let mut max_runs = 50_000u64;
    let mut random = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--algorithm" => {
                algorithm = Some(match args.next().as_deref() {
                    Some("unbounded") => Algorithm::Unbounded,
                    Some("bounded") => Algorithm::Bounded,
                    Some("multiwriter") => Algorithm::MultiWriter,
                    Some("multiwriter-literal") => Algorithm::MultiWriterLiteral,
                    Some("double-collect") => Algorithm::DoubleCollect,
                    other => {
                        eprintln!("unknown algorithm {other:?}");
                        usage()
                    }
                });
            }
            "--scripts" => match args.next() {
                Some(s) => scripts = s.split(',').map(str::to_string).collect(),
                None => usage(),
            },
            "--words" => words = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()),
            "--max-runs" => {
                max_runs = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--random" => {
                random = Some(args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }

    let algorithm = algorithm.unwrap_or_else(|| usage());
    if scripts.is_empty() {
        usage();
    }
    Options {
        algorithm,
        scripts,
        words,
        max_runs,
        random,
    }
}

fn sw_scripts(raw: &[String]) -> Vec<Vec<SwStep>> {
    raw.iter()
        .map(|s| {
            s.chars()
                .map(|c| match c {
                    'U' | 'u' => SwStep::Update,
                    'S' | 's' => SwStep::Scan,
                    other => {
                        eprintln!("bad single-writer script char {other:?}");
                        usage()
                    }
                })
                .collect()
        })
        .collect()
}

fn mw_scripts(raw: &[String]) -> Vec<Vec<MwStep>> {
    raw.iter()
        .map(|s| {
            s.chars()
                .map(|c| match c {
                    'S' | 's' => MwStep::Scan,
                    d if d.is_ascii_digit() => MwStep::Update(d as usize - '0' as usize),
                    other => {
                        eprintln!("bad multi-writer script char {other:?}");
                        usage()
                    }
                })
                .collect()
        })
        .collect()
}

fn main() {
    let opts = parse_args();
    let n = opts.scripts.len();

    // A closure that runs one schedule and returns the history (or a sim
    // error); shared between DFS and random exploration and the shrinker.
    let run_one = |schedule_policy: &mut dyn snapshot_sim::SchedulePolicy| -> Result<History<u64>, String> {
        let config = SimConfig {
            max_steps: Some(5_000_000),
            ..SimConfig::default()
        };
        match opts.algorithm {
            Algorithm::Unbounded => {
                let scripts = sw_scripts(&opts.scripts);
                run_sw_sim(n, &scripts, schedule_policy, config, |b| {
                    UnboundedSnapshot::with_backend(n, 0u64, b)
                })
                .map(|(h, _)| h)
                .map_err(|e| e.to_string())
            }
            Algorithm::Bounded => {
                let scripts = sw_scripts(&opts.scripts);
                run_sw_sim(n, &scripts, schedule_policy, config, |b| {
                    BoundedSnapshot::with_backend(n, 0u64, b)
                })
                .map(|(h, _)| h)
                .map_err(|e| e.to_string())
            }
            Algorithm::DoubleCollect => {
                let scripts = sw_scripts(&opts.scripts);
                run_sw_sim(n, &scripts, schedule_policy, config, |b| {
                    DoubleCollectSnapshot::with_backend(n, 0u64, b)
                })
                .map(|(h, _)| h)
                .map_err(|e| e.to_string())
            }
            Algorithm::MultiWriter | Algorithm::MultiWriterLiteral => {
                let scripts = mw_scripts(&opts.scripts);
                let m = if opts.words > 0 {
                    opts.words
                } else {
                    scripts
                        .iter()
                        .flatten()
                        .filter_map(|s| match s {
                            MwStep::Update(w) => Some(w + 1),
                            MwStep::Scan => None,
                        })
                        .max()
                        .unwrap_or(1)
                };
                let variant = if opts.algorithm == Algorithm::MultiWriterLiteral {
                    MwVariant::LiteralGoto1
                } else {
                    MwVariant::RescanHandshake
                };
                run_mw_sim(n, m, &scripts, schedule_policy, config, |b| {
                    MultiWriterSnapshot::with_options(n, m, 0u64, b, b, variant)
                })
                .map(|(h, _)| h)
                .map_err(|e| e.to_string())
            }
        }
    };

    let verdict = |history: &History<u64>| -> Result<(), String> {
        match check_history(history) {
            WgResult::Linearizable { .. } => Ok(()),
            WgResult::NotLinearizable => Err("NOT LINEARIZABLE".to_string()),
            WgResult::TooLarge { len } => Err(format!("history too large ({len} ops)")),
        }
    };

    let report_violation = |schedule: Vec<usize>, history: &History<u64>| {
        println!("LINEARIZABILITY VIOLATION FOUND");
        println!("{}", render_timeline(history));
        println!("shrinking the schedule ...");
        let minimal = shrink_schedule(schedule, |s| {
            let mut p = replay(s);
            run_one(&mut p).map(|h| verdict(&h).is_err()).unwrap_or(false)
        });
        println!("minimal reproduction schedule (ready-set indices): {minimal:?}");
        std::process::exit(1);
    };

    if let Some(seeds) = opts.random {
        println!("# random exploration: {seeds} seeds, algorithm {:?}", opts.algorithm);
        for seed in 0..seeds {
            let mut policy = RandomPolicy::seeded(seed);
            let history = run_one(&mut policy).expect("simulation failed");
            if verdict(&history).is_err() {
                println!("seed {seed}:");
                // Random policies cannot be shrunk directly; re-find via a
                // short DFS from scratch would be costly — print timeline.
                println!("{}", render_timeline(&history));
                std::process::exit(1);
            }
            if (seed + 1) % 500 == 0 {
                println!("  {}/{} seeds clean", seed + 1, seeds);
            }
        }
        println!("all {seeds} random schedules linearizable");
        return;
    }

    println!(
        "# exhaustive exploration: up to {} schedules, algorithm {:?}",
        opts.max_runs, opts.algorithm
    );
    let mut runs = 0u64;
    let outcome = Explorer::new(ExploreLimits {
        max_runs: opts.max_runs,
        max_depth: 8192,
    })
    .explore::<String>(|policy| {
        let history = run_one(policy)?;
        verdict(&history).map_err(|e| {
            // Re-derive the schedule for shrinking via taken choices.
            let schedule = policy.taken().to_vec();
            report_violation(schedule, &history);
            e
        })?;
        runs += 1;
        Ok(())
    })
    .unwrap_or_else(|e| {
        eprintln!("exploration failed: {e}");
        std::process::exit(1);
    });
    println!(
        "{} schedules executed, all linearizable (coverage: {})",
        runs,
        if outcome.is_complete() {
            "complete"
        } else {
            "budget-truncated"
        }
    );
}
