//! `snapbench` — the tracked benchmark suite behind `BENCH_*.json`.
//!
//! Runs a fixed matrix of workloads (`scan_heavy`, `update_heavy`,
//! `mixed`, the multi-writer-only `contended_mw`, the
//! service-routed `partial-scan-{s1,sq,sn,zipf}` family — subset sizes
//! 1, n/4 and n over rotating windows, plus a zipf-skewed two-segment
//! mix that hammers the hot segments the way real partial traffic
//! does — through `snapshot_service::SnapshotService` —
//! `abd-scan`, the service over an `AbdSnapshotCore` on a healthy
//! in-process replica network, `abd-scan-tcp`, the same stack over the
//! *real* wire transport against in-process `snapshotd` replicas on TCP
//! loopback (every quorum phase a framed socket round-trip, so the cell
//! prices syscalls and the wire codec against the simulator),
//! `abd-scan-tcp-durable`, the wire stack against replicas carrying
//! fsync-always CRC state logs (pricing crash-consistent durability on
//! the quorum write path), and
//! `degraded-shard`, the service over
//! a backing whose full collects blip in bursts so the windowed
//! breaker cycles trip → shed → probe → close while the bench
//! measures the typed-failure path) against the four
//! contention-relevant constructions (`unbounded`, `bounded`,
//! `multiwriter`, `locked`) at several thread counts, on real OS
//! threads with wall-clock timing.
//! Unlike the criterion micro-benchmarks in `benches/`, the output is a
//! stable machine-readable JSON report (schema `snapbench/v1`, see
//! `snapshot_bench::tracked`) meant to be committed and diffed:
//!
//! ```text
//! cargo run -p snapshot-bench --release --bin snapbench -- \
//!     --out BENCH_10.json
//! cargo run -p snapshot-bench --release --bin snapbench -- \
//!     --quick --compare BENCH_10.json --report-only
//! ```
//!
//! `--compare` exits with status 1 when any entry's median ns/op
//! regressed by more than `--threshold-pct` (default 20%) against the
//! baseline, unless `--report-only` is given. Usage errors exit 2.
//!
//! The `trend` subcommand runs no benchmarks at all: it loads every
//! committed `BENCH_<n>.json` generation from `--dir` (default `.`),
//! renders a per-benchmark markdown trend table (`snapshot_bench::trend`),
//! and exits 1 only on *monotone multi-generation* decay — a
//! strictly-increasing ns/op run across ≥ 3 generations totalling more
//! than `--threshold-pct` (default 25%) — unless `--report-only`:
//!
//! ```text
//! cargo run -p snapshot-bench --release --bin snapbench -- \
//!     trend --dir . --report-only --out TREND.md
//! ```

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use snapshot_abd::{AbdSnapshotCore, Network, NetworkConfig, RemoteConfig, RemoteTransport, Transport};
use snapshot_bench::tracked::{self, BenchEntry, BenchReport};
use snapshot_bench::trend;
use snapshot_core::{
    BoundedSnapshot, CoreError, LockSnapshot, MultiWriterSnapshot, MwSnapshot, MwSnapshotHandle,
    ScanStats, SnapshotView, SwSnapshot, SwSnapshotHandle, TrySnapshotCore, UnboundedSnapshot,
};
use snapshot_registers::ProcessId;
use snapshot_service::{HealthConfig, RetryConfig, ServiceConfig, ServiceError, SnapshotService};
use snapshot_wire::{Endpoint, FsyncPolicy, ReplicaServer, ReplicaStore, ServerConfig};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Workload {
    /// 7 scans per update: the shape that rewards the clone-free
    /// incremental collect.
    ScanHeavy,
    /// 7 updates per scan: stresses the embedded scan inside update.
    UpdateHeavy,
    /// Alternating update/scan.
    Mixed,
    /// Multi-writer only: every thread hammers the same two words.
    ContendedMw,
    /// Service-routed: alternating update / `scan_subset` of 1 segment.
    PartialScanS1,
    /// Service-routed: subsets of n/4 segments.
    PartialScanSq,
    /// Service-routed: subsets covering all n segments (the coalesced
    /// full-scan path in service clothing).
    PartialScanSn,
    /// Service-routed: two-segment subsets whose segments are drawn from
    /// a zipf(s = 1) distribution over segment ids — the skewed shape of
    /// real partial traffic, where a few hot segments absorb most reads.
    /// Native O(touched) subset scans keep the hot path off the full
    /// collect; version-filter contention on the hot segments is the
    /// interesting cost.
    PartialScanZipf,
    /// Service over `AbdSnapshotCore` on a healthy in-process replica
    /// network: alternating update / full scan, every register access a
    /// pair of quorum phases. Runs only against `unbounded` (the
    /// construction `AbdSnapshotCore` executes) with reduced iteration
    /// counts — message-passing ops are orders of magnitude slower.
    AbdScan,
    /// The same service-over-`AbdSnapshotCore` shape, but over the real
    /// wire transport: three in-process `snapshotd` replicas on TCP
    /// loopback, every quorum phase a framed socket round-trip. The
    /// delta against `abd-scan` prices the wire codec, syscalls, and
    /// the connection managers; unbounded-only, heavily reduced
    /// iteration counts.
    AbdScanTcp,
    /// The wire workload again, but against *durable* replicas: each
    /// `snapshotd` carries a CRC-framed state log with `fsync always`,
    /// so every winning store pays a full fsync before acking. The
    /// delta against `abd-scan-tcp` prices crash-consistent durability
    /// on the quorum write path; unbounded-only, minimal iterations.
    AbdScanTcpDurable,
    /// Service over a backing whose full collects fail in periodic
    /// bursts: the windowed breaker cycles trip → shed → probe → close
    /// under load, so the cell times the *typed-failure* path — retry
    /// budgets, `Degraded` shedding at the gate, and half-open
    /// recovery — rather than the happy path. Runs only against
    /// `unbounded`.
    DegradedShard,
}

impl Workload {
    const ALL: [Workload; 12] = [
        Workload::ScanHeavy,
        Workload::UpdateHeavy,
        Workload::Mixed,
        Workload::ContendedMw,
        Workload::PartialScanS1,
        Workload::PartialScanSq,
        Workload::PartialScanSn,
        Workload::PartialScanZipf,
        Workload::AbdScan,
        Workload::AbdScanTcp,
        Workload::AbdScanTcpDurable,
        Workload::DegradedShard,
    ];

    fn name(self) -> &'static str {
        match self {
            Workload::ScanHeavy => "scan_heavy",
            Workload::UpdateHeavy => "update_heavy",
            Workload::Mixed => "mixed",
            Workload::ContendedMw => "contended_mw",
            Workload::PartialScanS1 => "partial-scan-s1",
            Workload::PartialScanSq => "partial-scan-sq",
            Workload::PartialScanSn => "partial-scan-sn",
            Workload::PartialScanZipf => "partial-scan-zipf",
            Workload::AbdScan => "abd-scan",
            Workload::AbdScanTcp => "abd-scan-tcp",
            Workload::AbdScanTcpDurable => "abd-scan-tcp-durable",
            Workload::DegradedShard => "degraded-shard",
        }
    }

    /// Whether the `k`-th operation of a thread is an update.
    fn is_update(self, k: u64) -> bool {
        match self {
            Workload::ScanHeavy => k % 8 == 0,
            Workload::UpdateHeavy => k % 8 != 0,
            Workload::Mixed => k % 2 == 0,
            Workload::ContendedMw => k % 2 == 0,
            Workload::PartialScanS1
            | Workload::PartialScanSq
            | Workload::PartialScanSn
            | Workload::PartialScanZipf => k % 2 == 0,
            Workload::AbdScan
            | Workload::AbdScanTcp
            | Workload::AbdScanTcpDurable
            | Workload::DegradedShard => k % 2 == 0,
        }
    }

    /// Per-thread iteration divisor: quorum-phase workloads are orders
    /// of magnitude slower per op, so they run a slice of the budget.
    fn iters_divisor(self) -> u64 {
        match self {
            Workload::AbdScan => 20,
            Workload::AbdScanTcp => 40,
            Workload::AbdScanTcpDurable => 80,
            Workload::DegradedShard => 4,
            _ => 1,
        }
    }

    /// Subset size for the service-routed partial-scan workloads, given
    /// `n` segments; `None` for the direct-handle workloads.
    fn subset_len(self, n: usize) -> Option<usize> {
        match self {
            Workload::PartialScanS1 => Some(1),
            Workload::PartialScanSq => Some((n / 4).max(1)),
            Workload::PartialScanSn => Some(n),
            Workload::PartialScanZipf => Some(2.min(n)),
            _ => None,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Construction {
    Unbounded,
    Bounded,
    MultiWriter,
    Locked,
}

impl Construction {
    const ALL: [Construction; 4] = [
        Construction::Unbounded,
        Construction::Bounded,
        Construction::MultiWriter,
        Construction::Locked,
    ];

    fn name(self) -> &'static str {
        match self {
            Construction::Unbounded => "unbounded",
            Construction::Bounded => "bounded",
            Construction::MultiWriter => "multiwriter",
            Construction::Locked => "locked",
        }
    }
}

/// One cell of the benchmark matrix.
struct Config {
    workload: Workload,
    construction: Construction,
    threads: usize,
}

impl Config {
    fn name(&self) -> String {
        format!(
            "{}/{}/t{}",
            self.workload.name(),
            self.construction.name(),
            self.threads
        )
    }
}

/// Suite knobs; `--quick` shrinks everything for CI smoke runs.
struct Tuning {
    iters_per_thread: u64,
    samples: u32,
    warmup: u32,
    thread_counts: &'static [usize],
}

const FULL: Tuning = Tuning {
    iters_per_thread: 4_000,
    samples: 5,
    warmup: 1,
    thread_counts: &[1, 2, 4],
};

const QUICK: Tuning = Tuning {
    iters_per_thread: 300,
    samples: 2,
    warmup: 1,
    thread_counts: &[1, 2],
};

fn suite(tuning: &Tuning) -> Vec<Config> {
    let mut configs = Vec::new();
    for workload in Workload::ALL {
        for construction in Construction::ALL {
            // The contended workload writes arbitrary words, which only
            // the multi-writer construction supports.
            if workload == Workload::ContendedMw && construction != Construction::MultiWriter {
                continue;
            }
            // The abd workload always runs Figure 2 over ABD lanes, and
            // the degraded-shard workload wraps the same construction in
            // a fault injector — both are unbounded-only.
            if matches!(
                workload,
                Workload::AbdScan
                    | Workload::AbdScanTcp
                    | Workload::AbdScanTcpDurable
                    | Workload::DegradedShard
            ) && construction != Construction::Unbounded
            {
                continue;
            }
            for &threads in tuning.thread_counts {
                // Contention needs at least two threads to mean anything.
                if workload == Workload::ContendedMw && threads < 2 {
                    continue;
                }
                configs.push(Config {
                    workload,
                    construction,
                    threads,
                });
            }
        }
    }
    configs
}

/// Times one sample of a single-writer-style workload: every thread runs
/// `iters` operations against its own handle; returns total wall ns.
fn time_sw<O: SwSnapshot<u64>>(object: &O, threads: usize, iters: u64, workload: Workload) -> u128 {
    let barrier = Barrier::new(threads + 1);
    let mut elapsed = 0u128;
    std::thread::scope(|s| {
        for i in 0..threads {
            let barrier = &barrier;
            s.spawn(move || {
                let mut handle = object.handle(ProcessId::new(i));
                barrier.wait();
                let mut acc = 0u64;
                for k in 0..iters {
                    if workload.is_update(k) {
                        handle.update(((i as u64) << 32) | k);
                    } else {
                        acc = acc.wrapping_add(handle.scan().as_slice().iter().sum::<u64>());
                    }
                }
                std::hint::black_box(acc);
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        elapsed = start.elapsed().as_nanos();
    });
    elapsed
}

/// Multi-writer analogue of [`time_sw`]. In the disjoint workloads each
/// thread owns word `i`; under [`Workload::ContendedMw`] all threads
/// scatter writes over the whole (small) word array.
fn time_mw<O: MwSnapshot<u64>>(object: &O, threads: usize, iters: u64, workload: Workload) -> u128 {
    let words = object.words();
    let barrier = Barrier::new(threads + 1);
    let mut elapsed = 0u128;
    std::thread::scope(|s| {
        for i in 0..threads {
            let barrier = &barrier;
            s.spawn(move || {
                let mut handle = object.handle(ProcessId::new(i));
                barrier.wait();
                let mut acc = 0u64;
                for k in 0..iters {
                    if workload.is_update(k) {
                        let word = if workload == Workload::ContendedMw {
                            // Cheap multiplicative scatter, deterministic
                            // per (thread, op).
                            (k.wrapping_add(i as u64).wrapping_mul(2_654_435_761) as usize) % words
                        } else {
                            i
                        };
                        handle.update(word, ((i as u64) << 32) | k);
                    } else {
                        acc = acc.wrapping_add(handle.scan().as_slice().iter().sum::<u64>());
                    }
                }
                std::hint::black_box(acc);
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        elapsed = start.elapsed().as_nanos();
    });
    elapsed
}

/// Deterministic xorshift64 generator — the bench runs offline with no
/// `rand` dependency, and reproducible subsets matter more than quality.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Cumulative zipf(s = 1) distribution over `n` segment ranks: segment 0
/// is the hottest, with weight 1/(r + 1) for rank r.
fn zipf_cdf(n: usize) -> Vec<f64> {
    let mut weights: Vec<f64> = (0..n).map(|r| 1.0 / (r as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in &mut weights {
        acc += *w / total;
        *w = acc;
    }
    weights
}

/// Draws one segment from the zipf CDF using 53 bits of `raw`.
fn zipf_sample(cdf: &[f64], raw: u64) -> usize {
    let u = (raw >> 11) as f64 / (1u64 << 53) as f64;
    cdf.iter().position(|&c| u < c).unwrap_or(cdf.len() - 1)
}

/// Times one sample of a service-routed partial-scan workload: every
/// thread claims a service client and alternates updates (its own lane's
/// segment — legal on every backing) with `scan_subset` over either a
/// rotating window of `subset_len` segments or (under
/// [`Workload::PartialScanZipf`]) `subset_len` distinct zipf-skewed
/// segments, exercising native subset scans, certified collects, shard
/// coalescing, and the projected-full-scan fallback depending on the
/// backing construction.
fn time_service<C: TrySnapshotCore<u64>>(
    core: C,
    threads: usize,
    iters: u64,
    subset_len: usize,
    workload: Workload,
) -> u128 {
    let service = SnapshotService::new(core);
    let n = service.segments();
    let cdf = zipf_cdf(n);
    let barrier = Barrier::new(threads + 1);
    let mut elapsed = 0u128;
    std::thread::scope(|s| {
        for i in 0..threads {
            let barrier = &barrier;
            let service = &service;
            let cdf = &cdf;
            s.spawn(move || {
                let mut client = service.client(i);
                let mut rng =
                    XorShift::new(0x5EED ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1));
                barrier.wait();
                let mut acc = 0u64;
                let mut subset = Vec::with_capacity(subset_len);
                for k in 0..iters {
                    if k % 2 == 0 {
                        client.update(i, ((i as u64) << 32) | k).expect("in budget");
                    } else {
                        subset.clear();
                        if workload == Workload::PartialScanZipf {
                            // Skewed draws, deterministic per thread; cap
                            // the rejection loop and fill from neighbours
                            // so small n always reaches subset_len.
                            for _ in 0..16 {
                                if subset.len() == subset_len {
                                    break;
                                }
                                let seg = zipf_sample(cdf, rng.next());
                                if !subset.contains(&seg) {
                                    subset.push(seg);
                                }
                            }
                            while subset.len() < subset_len {
                                let fill = (subset.last().copied().unwrap_or(0) + 1) % n;
                                if subset.contains(&fill) {
                                    break;
                                }
                                subset.push(fill);
                            }
                        } else {
                            // Rotating window start, deterministic per
                            // (thread, op); wrapping windows span shards.
                            let start = (k.wrapping_add(i as u64).wrapping_mul(2_654_435_761)
                                as usize)
                                % n;
                            for j in 0..subset_len {
                                subset.push((start + j) % n);
                            }
                        }
                        let view = client.scan_subset(&subset).expect("valid subset");
                        acc = acc.wrapping_add(view.values().iter().sum::<u64>());
                    }
                }
                std::hint::black_box(acc);
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        elapsed = start.elapsed().as_nanos();
    });
    elapsed
}

/// Times one sample of the `abd-scan` workload: the service fronts an
/// `AbdSnapshotCore` whose every register access is a pair of quorum
/// phases over a healthy in-process 3-replica network. Full scans (the
/// coalesced path) alternate with single-writer updates; on a healthy
/// network every fallible operation must succeed.
fn time_abd(threads: usize, iters: u64) -> u128 {
    let network = Arc::new(Network::with_config(NetworkConfig::new(3)));
    let service = SnapshotService::new(AbdSnapshotCore::new(&network, threads, 0u64));
    let barrier = Barrier::new(threads + 1);
    let mut elapsed = 0u128;
    std::thread::scope(|s| {
        for i in 0..threads {
            let barrier = &barrier;
            let service = &service;
            s.spawn(move || {
                let mut client = service.client(i);
                barrier.wait();
                let mut acc = 0u64;
                for k in 0..iters {
                    if k % 2 == 0 {
                        client
                            .update(i, ((i as u64) << 32) | k)
                            .expect("healthy network");
                    } else {
                        let view = client.scan().expect("healthy network");
                        acc = acc.wrapping_add(view.iter().sum::<u64>());
                    }
                }
                std::hint::black_box(acc);
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        elapsed = start.elapsed().as_nanos();
    });
    elapsed
}

/// Times one sample of the `abd-scan-tcp` workload: the same shape as
/// [`time_abd`], but the quorum phases travel the real wire — three
/// in-process `snapshotd` replicas on TCP loopback behind a
/// `RemoteTransport`. Cluster setup (listeners, dials, handshakes) is
/// excluded from the timed region; on healthy loopback every operation
/// must succeed.
fn time_abd_tcp(threads: usize, iters: u64) -> u128 {
    let servers: Vec<ReplicaServer> = (0..3)
        .map(|i| {
            ReplicaServer::spawn(ServerConfig::new(
                Endpoint::parse("tcp:127.0.0.1:0").expect("loopback endpoint"),
                i as u32,
            ))
            .expect("spawning loopback replica")
        })
        .collect();
    let endpoints = servers.iter().map(|s| s.endpoint().clone()).collect();
    let transport: Arc<dyn Transport> =
        Arc::new(RemoteTransport::connect(RemoteConfig::new(endpoints)));
    let service = SnapshotService::new(AbdSnapshotCore::remote(transport, threads, 0u64));
    let barrier = Barrier::new(threads + 1);
    let mut elapsed = 0u128;
    std::thread::scope(|s| {
        for i in 0..threads {
            let barrier = &barrier;
            let service = &service;
            s.spawn(move || {
                let mut client = service.client(i);
                barrier.wait();
                let mut acc = 0u64;
                for k in 0..iters {
                    if k % 2 == 0 {
                        client
                            .update(i, ((i as u64) << 32) | k)
                            .expect("healthy loopback cluster");
                    } else {
                        let view = client.scan().expect("healthy loopback cluster");
                        acc = acc.wrapping_add(view.iter().sum::<u64>());
                    }
                }
                std::hint::black_box(acc);
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        elapsed = start.elapsed().as_nanos();
    });
    drop(service);
    drop(servers);
    elapsed
}

/// Times one sample of the `abd-scan-tcp-durable` workload: the same
/// wire-backed cluster as [`time_abd_tcp`] but over Unix-domain sockets
/// with a CRC-framed state log per replica under `fsync always` — every
/// winning store fsyncs before its ack, so the cell prices the full
/// crash-consistent write path. Cluster setup and state-file cleanup
/// are excluded from the timed region.
fn time_abd_tcp_durable(threads: usize, iters: u64) -> u128 {
    static SAMPLE: AtomicU64 = AtomicU64::new(0);
    let sample = SAMPLE.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let mut state_logs = Vec::new();
    let servers: Vec<ReplicaServer> = (0..3)
        .map(|i| {
            let sock = std::env::temp_dir().join(format!("snapbench-dur-{pid}-{sample}-{i}.sock"));
            let _ = std::fs::remove_file(&sock);
            let log = std::env::temp_dir().join(format!("snapbench-dur-{pid}-{sample}-{i}.log"));
            let _ = std::fs::remove_file(&log);
            let _ = std::fs::remove_file(ReplicaStore::checkpoint_path_for(&log));
            state_logs.push(log.clone());
            ReplicaServer::spawn(
                ServerConfig::new(Endpoint::Uds(sock), i as u32)
                    .with_state_log(log)
                    .with_fsync(FsyncPolicy::Always),
            )
            .expect("spawning durable replica")
        })
        .collect();
    let endpoints = servers.iter().map(|s| s.endpoint().clone()).collect();
    let transport: Arc<dyn Transport> =
        Arc::new(RemoteTransport::connect(RemoteConfig::new(endpoints)));
    let service = SnapshotService::new(AbdSnapshotCore::remote(transport, threads, 0u64));
    let barrier = Barrier::new(threads + 1);
    let mut elapsed = 0u128;
    std::thread::scope(|s| {
        for i in 0..threads {
            let barrier = &barrier;
            let service = &service;
            s.spawn(move || {
                let mut client = service.client(i);
                barrier.wait();
                let mut acc = 0u64;
                for k in 0..iters {
                    if k % 2 == 0 {
                        client
                            .update(i, ((i as u64) << 32) | k)
                            .expect("healthy durable cluster");
                    } else {
                        let view = client.scan().expect("healthy durable cluster");
                        acc = acc.wrapping_add(view.iter().sum::<u64>());
                    }
                }
                std::hint::black_box(acc);
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        elapsed = start.elapsed().as_nanos();
    });
    drop(service);
    drop(servers);
    for log in state_logs {
        let _ = std::fs::remove_file(ReplicaStore::checkpoint_path_for(&log));
        let _ = std::fs::remove_file(log);
    }
    elapsed
}

/// An `UnboundedSnapshot` whose full collects fail in periodic bursts
/// (2 of every 8 scans err `Unavailable`, counted globally): enough
/// sustained error rate to trip the service's windowed breaker, with
/// enough successes in between for the half-open ramp to close it
/// again. Updates and certified reads stay healthy, so single-shard
/// partials and health probes always succeed — the shape of a shard
/// that is degrading, not dead.
struct BurstyCore {
    inner: UnboundedSnapshot<u64>,
    scans: AtomicU64,
}

impl BurstyCore {
    fn new(lanes: usize) -> Self {
        BurstyCore { inner: UnboundedSnapshot::new(lanes, 0u64), scans: AtomicU64::new(0) }
    }
}

impl TrySnapshotCore<u64> for BurstyCore {
    fn segments(&self) -> usize {
        TrySnapshotCore::segments(&self.inner)
    }

    fn lanes(&self) -> usize {
        TrySnapshotCore::lanes(&self.inner)
    }

    fn single_writer(&self) -> bool {
        TrySnapshotCore::single_writer(&self.inner)
    }

    fn try_scan(&self, lane: ProcessId) -> Result<(SnapshotView<u64>, ScanStats), CoreError> {
        if self.scans.fetch_add(1, Ordering::Relaxed) % 8 < 2 {
            return Err(CoreError::Unavailable { reason: "injected collect blip".into() });
        }
        self.inner.try_scan(lane)
    }

    fn try_update(
        &self,
        lane: ProcessId,
        segment: usize,
        value: u64,
    ) -> Result<ScanStats, CoreError> {
        self.inner.try_update(lane, segment, value)
    }

    fn try_certified_read(
        &self,
        reader: ProcessId,
        segment: usize,
    ) -> Result<Option<(u64, u64)>, CoreError> {
        self.inner.try_certified_read(reader, segment)
    }
}

/// Times one sample of the `degraded-shard` workload: the service fronts
/// a [`BurstyCore`] with a fast-cycling breaker (short cooldown, short
/// ramp interval), and every thread alternates updates with full scans.
/// Scans answered with `Backend`, `Degraded`, or a view all count as one
/// completed operation — the point of the cell is the cost of the
/// *failure* path (retry budget, gate shed, half-open probe), and a
/// panic or a hang is the only wrong answer.
fn time_degraded(threads: usize, iters: u64) -> u128 {
    let service = SnapshotService::with_config(
        BurstyCore::new(threads),
        ServiceConfig {
            retry: RetryConfig { max_attempts: 2, ..RetryConfig::default() },
            health: HealthConfig {
                window: 16,
                trip_error_pct: 25,
                min_volume: 4,
                cooldown: Duration::from_micros(500),
                ramp_successes: 2,
                ramp_tokens: 8,
                ramp_interval: Duration::from_micros(100),
                jitter_pct: 25,
            },
            ..ServiceConfig::default()
        },
    );
    let barrier = Barrier::new(threads + 1);
    let mut elapsed = 0u128;
    std::thread::scope(|s| {
        for i in 0..threads {
            let barrier = &barrier;
            let service = &service;
            s.spawn(move || {
                let mut client = service.client(i);
                barrier.wait();
                let mut acc = 0u64;
                let mut shed = 0u64;
                for k in 0..iters {
                    let outcome = if k % 2 == 0 {
                        // Bulk updates are the last class the half-open
                        // ramp readmits, so they shed too while the
                        // breaker recovers.
                        client.update(i, ((i as u64) << 32) | k).map(|()| 0)
                    } else {
                        client.scan().map(|view| view.iter().sum::<u64>())
                    };
                    match outcome {
                        Ok(sum) => acc = acc.wrapping_add(sum),
                        Err(ServiceError::Backend { .. }) => {}
                        Err(ServiceError::Degraded { .. }) => shed += 1,
                        Err(other) => panic!("unexpected service error: {other:?}"),
                    }
                }
                std::hint::black_box((acc, shed));
                barrier.wait();
            });
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        elapsed = start.elapsed().as_nanos();
    });
    elapsed
}

/// Runs one matrix cell: warmups, then `samples` timed runs; returns the
/// finished entry. A fresh object is built per sample so handle claims
/// and cache state never leak between samples.
fn run_config(config: &Config, tuning: &Tuning) -> BenchEntry {
    let threads = config.threads;
    let iters = (tuning.iters_per_thread / config.workload.iters_divisor()).max(2);
    let total_ops = threads as u64 * iters;
    let mut ns_per_op = Vec::with_capacity(tuning.samples as usize);

    for round in 0..tuning.warmup + tuning.samples {
        let elapsed = if config.workload == Workload::AbdScan {
            time_abd(threads, iters)
        } else if config.workload == Workload::AbdScanTcp {
            time_abd_tcp(threads, iters)
        } else if config.workload == Workload::AbdScanTcpDurable {
            time_abd_tcp_durable(threads, iters)
        } else if config.workload == Workload::DegradedShard {
            time_degraded(threads, iters)
        } else if let Some(subset_len) = config.workload.subset_len(threads) {
            let workload = config.workload;
            match config.construction {
                Construction::Unbounded => time_service(
                    UnboundedSnapshot::new(threads, 0u64),
                    threads,
                    iters,
                    subset_len,
                    workload,
                ),
                Construction::Bounded => time_service(
                    BoundedSnapshot::new(threads, 0u64),
                    threads,
                    iters,
                    subset_len,
                    workload,
                ),
                Construction::Locked => time_service(
                    LockSnapshot::new(threads, 0u64),
                    threads,
                    iters,
                    subset_len,
                    workload,
                ),
                Construction::MultiWriter => time_service(
                    MultiWriterSnapshot::new(threads, threads, 0u64),
                    threads,
                    iters,
                    subset_len,
                    workload,
                ),
            }
        } else {
            match config.construction {
                Construction::Unbounded => {
                    let object = UnboundedSnapshot::new(threads, 0u64);
                    time_sw(&object, threads, iters, config.workload)
                }
                Construction::Bounded => {
                    let object = BoundedSnapshot::new(threads, 0u64);
                    time_sw(&object, threads, iters, config.workload)
                }
                Construction::Locked => {
                    let object = LockSnapshot::new(threads, 0u64);
                    time_sw(&object, threads, iters, config.workload)
                }
                Construction::MultiWriter => {
                    // Two words under contention (maximal collisions);
                    // otherwise one word per thread.
                    let words = if config.workload == Workload::ContendedMw {
                        2
                    } else {
                        threads
                    };
                    let object = MultiWriterSnapshot::new(threads, words, 0u64);
                    time_mw(&object, threads, iters, config.workload)
                }
            }
        };
        if round >= tuning.warmup {
            ns_per_op.push(elapsed as f64 / total_ops as f64);
        }
    }

    ns_per_op.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median = ns_per_op[ns_per_op.len() / 2];
    BenchEntry {
        name: config.name(),
        workload: config.workload.name().to_string(),
        construction: config.construction.name().to_string(),
        threads,
        iters_per_thread: iters,
        samples: tuning.samples,
        warmup: tuning.warmup,
        total_ops,
        median_ns_per_op: median,
        min_ns_per_op: ns_per_op[0],
        max_ns_per_op: ns_per_op[ns_per_op.len() - 1],
    }
}

struct Args {
    quick: bool,
    out: String,
    compare: Option<String>,
    threshold_pct: f64,
    report_only: bool,
    filter: Option<String>,
    list: bool,
}

const USAGE: &str = "usage: snapbench [--quick] [--out PATH] [--compare BASELINE.json]\n\
                     \x20                [--threshold-pct N] [--report-only] [--filter SUBSTR] [--list]\n\
                     \x20      snapbench trend [--dir PATH] [--threshold-pct N] [--report-only] [--out PATH]";

/// Flags of the `trend` subcommand.
struct TrendArgs {
    dir: String,
    threshold_pct: f64,
    report_only: bool,
    out: Option<String>,
}

fn parse_trend_args(mut it: impl Iterator<Item = String>) -> Result<TrendArgs, String> {
    let mut args = TrendArgs {
        dir: ".".to_string(),
        threshold_pct: 25.0,
        report_only: false,
        out: None,
    };
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--dir" => args.dir = value_of("--dir")?,
            "--threshold-pct" => {
                args.threshold_pct = value_of("--threshold-pct")?
                    .parse()
                    .map_err(|_| "--threshold-pct needs a number".to_string())?;
            }
            "--report-only" => args.report_only = true,
            "--out" => args.out = Some(value_of("--out")?),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// The `trend` subcommand: load every committed generation, render the
/// barometer, gate on monotone decay.
fn run_trend(args: TrendArgs) -> ExitCode {
    let mut generations: Vec<(u32, String)> = Vec::new();
    let dir_entries = match std::fs::read_dir(&args.dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("snapbench trend: cannot read {}: {e}", args.dir);
            return ExitCode::from(2);
        }
    };
    for entry in dir_entries.flatten() {
        let file_name = entry.file_name();
        let Some(name) = file_name.to_str() else { continue };
        if let Some(generation) = trend::generation_of(name) {
            generations.push((generation, entry.path().display().to_string()));
        }
    }
    generations.sort_by_key(|(g, _)| *g);
    if generations.len() < 2 {
        eprintln!(
            "snapbench trend: need at least 2 BENCH_<n>.json generations in {}, found {}",
            args.dir,
            generations.len()
        );
        return ExitCode::from(2);
    }

    let mut reports = Vec::with_capacity(generations.len());
    for (generation, path) in &generations {
        let report = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| BenchReport::from_json(&text).map_err(|e| e.to_string()))
        {
            Ok(report) => report,
            Err(e) => {
                eprintln!("snapbench trend: cannot load {path}: {e}");
                return ExitCode::from(2);
            }
        };
        reports.push((*generation, report));
    }

    let barometer = trend::build(&reports, args.threshold_pct);
    let markdown = barometer.render_markdown();
    print!("{markdown}");
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, &markdown) {
            eprintln!("snapbench trend: cannot write {out}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("wrote {out}");
    }
    if barometer.has_decay() {
        if args.report_only {
            println!("monotone decay detected (report-only: not failing)");
        } else {
            println!("monotone decay beyond {}% detected", args.threshold_pct);
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: "BENCH_10.json".to_string(),
        compare: None,
        threshold_pct: 20.0,
        report_only: false,
        filter: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = value_of("--out")?,
            "--compare" => args.compare = Some(value_of("--compare")?),
            "--threshold-pct" => {
                args.threshold_pct = value_of("--threshold-pct")?
                    .parse()
                    .map_err(|_| "--threshold-pct needs a number".to_string())?;
            }
            "--report-only" => args.report_only = true,
            "--filter" => args.filter = Some(value_of("--filter")?),
            "--list" => args.list = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    if std::env::args().nth(1).as_deref() == Some("trend") {
        return match parse_trend_args(std::env::args().skip(2)) {
            Ok(args) => run_trend(args),
            Err(msg) => {
                eprintln!("snapbench trend: {msg}\n{USAGE}");
                ExitCode::from(2)
            }
        };
    }
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("snapbench: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let tuning = if args.quick { &QUICK } else { &FULL };
    let mut configs = suite(tuning);
    if let Some(filter) = &args.filter {
        configs.retain(|c| c.name().contains(filter.as_str()));
    }
    if configs.is_empty() {
        eprintln!("snapbench: no benchmarks match the filter\n{USAGE}");
        return ExitCode::from(2);
    }
    if args.list {
        for config in &configs {
            println!("{}", config.name());
        }
        return ExitCode::SUCCESS;
    }

    let mut report = BenchReport::new();
    for (i, config) in configs.iter().enumerate() {
        eprint!("[{:>2}/{}] {:<32} ", i + 1, configs.len(), config.name());
        let entry = run_config(config, tuning);
        eprintln!(
            "median {:>10.1} ns/op  (min {:.1}, max {:.1})",
            entry.median_ns_per_op, entry.min_ns_per_op, entry.max_ns_per_op
        );
        report.entries.push(entry);
    }

    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("snapbench: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    eprintln!("wrote {} ({} entries)", args.out, report.entries.len());

    if let Some(baseline_path) = &args.compare {
        let baseline = match std::fs::read_to_string(baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|text| BenchReport::from_json(&text).map_err(|e| e.to_string()))
        {
            Ok(baseline) => baseline,
            Err(e) => {
                eprintln!("snapbench: cannot load baseline {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let cmp = tracked::compare(&baseline, &report, args.threshold_pct);
        print!("{}", cmp.render());
        if cmp.has_regressions() {
            if args.report_only {
                println!(
                    "regressions beyond {}% detected (report-only: not failing)",
                    args.threshold_pct
                );
            } else {
                println!("regressions beyond {}% detected", args.threshold_pct);
                return ExitCode::from(1);
            }
        } else {
            println!("no regressions beyond {}%", args.threshold_pct);
        }
    }
    ExitCode::SUCCESS
}
