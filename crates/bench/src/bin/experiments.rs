//! Regenerates every quantitative claim of the paper as a measured table.
//!
//! Usage:
//!
//! ```text
//! cargo run -p snapshot-bench --release --bin experiments -- all
//! cargo run -p snapshot-bench --release --bin experiments -- e1 e4
//! cargo run -p snapshot-bench --release --bin experiments -- e8 --trace-out trace.jsonl
//! ```
//!
//! `--trace-out PATH` makes `e8` dump its captured trace as JSON lines to
//! `PATH` and as a chrome://tracing file to `PATH.chrome.json`.
//!
//! Experiment index (see EXPERIMENTS.md for paper-vs-measured records):
//!
//! * `e1` — single-writer wait-freedom & `O(n²)` step complexity
//!   (Lemmas 3.4 / 4.4), under adversarial schedules;
//! * `e2` — multi-writer wait-freedom & step complexity (Section 5);
//! * `e3` — Observation 1 vs Observation 2: the plain double-collect
//!   scanner starves where the wait-free algorithms finish;
//! * `e4` — Section 6 compound costs: measured single-writer ops of the
//!   multi-writer snapshot over register-from-register construction, vs
//!   the modeled Anderson constructions;
//! * `e5` — linearizability battery: exhaustive + randomized model
//!   checking and threaded stress, plus the Figure 4 retry-edge ablation;
//! * `e6` — wall-clock latency/throughput of all algorithms vs the lock
//!   baseline (criterion benches give the precise distributions);
//! * `e7` — snapshots over message passing via \[ABD\] under replica
//!   crashes (Section 6);
//! * `e8` — observability demo: one shared trace across a threaded soak,
//!   a deterministic sim run and ABD quorum phases, with the metrics
//!   registry and (optionally) JSON-lines / chrome://tracing dumps.

use std::sync::Arc;

use parking_lot::Mutex;
use snapshot_bench::anderson_model as model;
use snapshot_bench::harness::{self, run_mw_sim, run_sw_sim, sw_mixed_scripts, MwStep, SwStep};
use snapshot_bench::report::Table;
use snapshot_core::{
    BoundedSnapshot, DoubleCollectSnapshot, LockSnapshot, MultiWriterSnapshot, MwSnapshot,
    MwSnapshotHandle, MwVariant, SwSnapshot, SwSnapshotHandle, UnboundedSnapshot,
};
use snapshot_lin::{check_history, check_intervals, WgResult};
use snapshot_registers::OpKind;
use snapshot_registers::{CompoundBackend, EpochBackend, Instrumented, OpCounters, ProcessId};
use snapshot_sim::{
    Decision, ExploreLimits, Explorer, FnPolicy, OpBiasPolicy, RandomPolicy, RoundRobinPolicy, Sim,
    SimConfig,
};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace-out" {
            args.remove(i);
            if i < args.len() {
                trace_out = Some(std::path::PathBuf::from(args.remove(i)));
            } else {
                eprintln!("--trace-out requires a path argument");
                std::process::exit(2);
            }
        } else {
            i += 1;
        }
    }
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    println!("# Atomic Snapshots of Shared Memory — experiment harness");
    println!("# (adversarial results come from the deterministic simulator;");
    println!("#  wall-clock results from real threads on this machine)");
    println!();

    if want("e1") {
        e1_single_writer_complexity();
    }
    if want("e2") {
        e2_multi_writer_complexity();
    }
    if want("e3") {
        e3_starvation();
    }
    if want("e4") {
        e4_compound_costs();
    }
    if want("e5") {
        e5_linearizability();
    }
    if want("e6") {
        e6_wall_clock();
    }
    if want("e7") {
        e7_message_passing();
    }
    if want("e8") {
        e8_observability(trace_out.as_deref());
    }
}

fn e8_observability(trace_out: Option<&std::path::Path>) {
    use snapshot_abd::{AbdRegister, Network, NetworkConfig};
    use snapshot_obs::{
        chrome_tracing, json_lines, CountingSink, FanoutSink, Registry, RingSink, Sink, Trace,
    };
    use snapshot_registers::Register;

    const N: usize = 4;
    let ring = Arc::new(RingSink::new(N, 65_536));
    let counts = Arc::new(CountingSink::new());
    let fanout: Arc<dyn Sink> = Arc::new(FanoutSink::new(vec![
        Arc::clone(&ring) as Arc<dyn Sink>,
        Arc::clone(&counts) as Arc<dyn Sink>,
    ]));
    let trace = Trace::new(fanout);
    let registry = Arc::new(Registry::new());

    // (a) A 4-process threaded soak on the bounded algorithm: real
    // interleavings of rounds, handshakes, toggles and borrows.
    {
        let object = BoundedSnapshot::new(N, 0u64).with_trace(trace.clone());
        std::thread::scope(|s| {
            for i in 0..N {
                let object = &object;
                s.spawn(move || {
                    let mut h = object.handle(ProcessId::new(i));
                    for k in 0..100u64 {
                        h.update(k);
                        std::hint::black_box(h.scan());
                    }
                });
            }
        });
    }

    // (b) A deterministic sim run: scheduler step grants interleaved with
    // the algorithm's own events on the same sequence axis.
    {
        let sim = Sim::new(2).with_trace(trace.clone());
        let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
        let object = UnboundedSnapshot::with_backend(2, 0u64, &backend).with_trace(trace.clone());
        let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        {
            let object = &object;
            bodies.push(Box::new(move || {
                let mut h = object.handle(ProcessId::new(0));
                for k in 0..10u64 {
                    h.update(k);
                }
            }));
        }
        {
            let object = &object;
            bodies.push(Box::new(move || {
                let mut h = object.handle(ProcessId::new(1));
                for _ in 0..5 {
                    std::hint::black_box(h.scan());
                }
            }));
        }
        sim.run(&mut RoundRobinPolicy::new(), SimConfig::default(), bodies)
            .expect("simulation failed");
    }

    // (c) ABD quorum phases onto the same trace, with the network's
    // counters on the shared registry.
    {
        let network = Arc::new(Network::with_config(
            NetworkConfig::new(3)
                .with_registry(Arc::clone(&registry))
                .with_trace(trace.clone()),
        ));
        let reg = AbdRegister::new(Arc::clone(&network), 0u64);
        for k in 1..=10u64 {
            reg.write(ProcessId::new(0), k);
            std::hint::black_box(reg.read(ProcessId::new(1)));
        }
    }

    let events = ring.drain();
    let mut t = Table::new(
        "E8 — observability: event counts by kind (one trace shared by threads, sim and ABD)",
        &["event kind", "count"],
    );
    for (kind, count) in counts.counts() {
        t.row(&[kind.to_string(), count.to_string()]);
    }
    println!("{t}");
    println!("   metrics registry:");
    for line in registry.render().lines() {
        println!("   {line}");
    }
    if ring.dropped() > 0 {
        println!("   ({} oldest events evicted by the ring buffer)", ring.dropped());
    }
    if let Some(path) = trace_out {
        std::fs::write(path, json_lines(&events)).expect("writing --trace-out JSON lines");
        let chrome_path = std::path::PathBuf::from(format!("{}.chrome.json", path.display()));
        std::fs::write(&chrome_path, chrome_tracing(&events))
            .expect("writing --trace-out chrome://tracing file");
        println!(
            "   wrote {} events to {} (JSON lines) and {} (chrome://tracing)",
            events.len(),
            path.display(),
            chrome_path.display()
        );
    }
    println!();
}

fn e7_message_passing() {
    use snapshot_abd::{AbdBackend, Network};

    let mut t = Table::new(
        "E7 — snapshots over message passing via [ABD] (Section 6): n=2 processes, snapshot ops under replica crashes",
        &[
            "replicas",
            "crashed",
            "tolerance",
            "outcome",
            "messages per scan",
            "scan latency (us)",
        ],
    );
    for replicas in [3usize, 5, 7] {
        let network = std::sync::Arc::new(Network::new(replicas));
        let tolerance = network.fault_tolerance();
        for crashed in 0..=tolerance {
            for c in 0..crashed {
                network.crash(c);
            }
            let backend = AbdBackend::new(&network);
            let n = 2;
            let object = BoundedSnapshot::with_backend(n, 0u64, &backend);
            let mut h0 = object.handle(ProcessId::new(0));
            h0.update(1);
            let msgs_before = network.messages_sent();
            let start = std::time::Instant::now();
            const SCANS: u32 = 50;
            for _ in 0..SCANS {
                std::hint::black_box(h0.scan());
            }
            let latency_us = start.elapsed().as_micros() / SCANS as u128;
            let msgs_per_scan = (network.messages_sent() - msgs_before) / SCANS as u64;
            let view_ok = h0.scan().to_vec() == vec![1, 0];
            t.row(&[
                replicas.to_string(),
                crashed.to_string(),
                tolerance.to_string(),
                if view_ok { "correct scans" } else { "WRONG" }.to_string(),
                msgs_per_scan.to_string(),
                latency_us.to_string(),
            ]);
            for c in 0..crashed {
                network.restart(c);
            }
        }
    }
    println!("{t}");
    println!("   (liveness holds at every crash count up to the tolerance; beyond it");
    println!("    operations block by design — the paper's majority condition)");
    println!();
}

/// Worst observations of a single-writer algorithm under adversarial
/// schedules: (max double collects, max register ops per scan, max
/// register ops per update).
macro_rules! measure_sw {
    ($ty:ident, $n:expr, $updates:expr, $scans:expr, $seeds:expr) => {{
        let n: usize = $n;
        let mut max_dc = 0u32;
        let mut max_scan_ops = 0u64;
        let mut max_update_ops = 0u64;
        let mut run_one = |policy: &mut dyn snapshot_sim::SchedulePolicy| {
            let sim = Sim::new(n);
            let counters = Arc::new(OpCounters::new(n));
            let backend = Instrumented::new(EpochBackend::new())
                .with_gate(sim.gate())
                .with_counters(Arc::clone(&counters));
            let object = $ty::with_backend(n, 0u64, &backend);
            let worst: Mutex<(u32, u64, u64)> = Mutex::new((0, 0, 0));

            let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            for i in 0..n - 1 {
                let object = &object;
                let counters = Arc::clone(&counters);
                let worst = &worst;
                bodies.push(Box::new(move || {
                    let pid = ProcessId::new(i);
                    let mut h = object.handle(pid);
                    for k in 0..$updates {
                        let before = counters.snapshot(pid);
                        h.update(k);
                        let cost = (counters.snapshot(pid) - before).total();
                        let mut w = worst.lock();
                        w.2 = w.2.max(cost);
                    }
                }));
            }
            {
                let object = &object;
                let counters = Arc::clone(&counters);
                let worst = &worst;
                bodies.push(Box::new(move || {
                    let pid = ProcessId::new(n - 1);
                    let mut h = object.handle(pid);
                    for _ in 0..$scans {
                        let before = counters.snapshot(pid);
                        let (_, stats) = h.scan_with_stats();
                        let cost = (counters.snapshot(pid) - before).total();
                        let mut w = worst.lock();
                        w.0 = w.0.max(stats.double_collects);
                        w.1 = w.1.max(cost);
                    }
                }));
            }
            sim.run(
                policy,
                SimConfig {
                    max_steps: Some(20_000_000),
                    stop_when_done: vec![ProcessId::new(n - 1)],
                    record_trace: false,
                },
                bodies,
            )
            .expect("simulation failed");
            let (dc, so, uo) = *worst.lock();
            max_dc = max_dc.max(dc);
            max_scan_ops = max_scan_ops.max(so);
            max_update_ops = max_update_ops.max(uo);
        };
        run_one(&mut RoundRobinPolicy::new());
        run_one(&mut OpBiasPolicy::new(
            OpKind::Write,
            RoundRobinPolicy::new(),
        ));
        for seed in 0..$seeds {
            run_one(&mut RandomPolicy::seeded(seed));
        }
        (max_dc, max_scan_ops, max_update_ops)
    }};
}

fn e1_single_writer_complexity() {
    let mut t = Table::new(
        "E1 — single-writer wait-freedom & step complexity (Lemmas 3.4/4.4): worst case over adversarial schedules",
        &[
            "n",
            "algorithm",
            "max double collects",
            "bound n+1",
            "max ops/scan",
            "scan model (worst)",
            "max ops/update",
            "update model (worst)",
        ],
    );
    for n in [2usize, 3, 4, 6, 8] {
        let seeds = if n <= 4 { 12 } else { 6 };
        let (dc, so, uo) = measure_sw!(UnboundedSnapshot, n, 30u64, 8, seeds);
        t.row(&[
            n.to_string(),
            "unbounded (Fig 2)".into(),
            dc.to_string(),
            (n + 1).to_string(),
            so.to_string(),
            model::unbounded_sw_scan_ops(n as u64).to_string(),
            uo.to_string(),
            model::unbounded_sw_update_ops(n as u64).to_string(),
        ]);
        let (dc, so, uo) = measure_sw!(BoundedSnapshot, n, 30u64, 8, seeds);
        t.row(&[
            n.to_string(),
            "bounded (Fig 3)".into(),
            dc.to_string(),
            (n + 1).to_string(),
            so.to_string(),
            model::bounded_sw_scan_ops(n as u64).to_string(),
            uo.to_string(),
            model::bounded_sw_update_ops(n as u64).to_string(),
        ]);
    }
    println!("{t}");
    println!("   (measured <= model everywhere; growth ~n^2: the paper's O(n^2) claim)");
    println!();
}

fn e2_multi_writer_complexity() {
    let mut t = Table::new(
        "E2 — multi-writer wait-freedom & step complexity (Section 5): worst case over adversarial schedules",
        &[
            "n",
            "m",
            "max double collects",
            "bound 2n+1",
            "max ops/scan",
            "scan model (worst)",
            "max ops/update",
            "update model (worst)",
        ],
    );
    for (n, m) in [(2usize, 1usize), (2, 2), (3, 2), (3, 3), (4, 4), (4, 8)] {
        let mut max_dc = 0u32;
        let mut max_scan_ops = 0u64;
        let mut max_update_ops = 0u64;
        let mut run_one = |policy: &mut dyn snapshot_sim::SchedulePolicy| {
            let sim = Sim::new(n);
            let counters = Arc::new(OpCounters::new(n));
            let backend = Instrumented::new(EpochBackend::new())
                .with_gate(sim.gate())
                .with_counters(Arc::clone(&counters));
            let object = MultiWriterSnapshot::with_backend(n, m, 0u64, &backend);
            let worst: Mutex<(u32, u64, u64)> = Mutex::new((0, 0, 0));

            let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            for i in 0..n - 1 {
                let object = &object;
                let counters = Arc::clone(&counters);
                let worst = &worst;
                bodies.push(Box::new(move || {
                    let pid = ProcessId::new(i);
                    let mut h = object.handle(pid);
                    for k in 0..20u64 {
                        let before = counters.snapshot(pid);
                        h.update(i % m, k);
                        let cost = (counters.snapshot(pid) - before).total();
                        let mut w = worst.lock();
                        w.2 = w.2.max(cost);
                    }
                }));
            }
            {
                let object = &object;
                let counters = Arc::clone(&counters);
                let worst = &worst;
                bodies.push(Box::new(move || {
                    let pid = ProcessId::new(n - 1);
                    let mut h = object.handle(pid);
                    for _ in 0..6 {
                        let before = counters.snapshot(pid);
                        let (_, stats) = h.scan_with_stats();
                        let cost = (counters.snapshot(pid) - before).total();
                        let mut w = worst.lock();
                        w.0 = w.0.max(stats.double_collects);
                        w.1 = w.1.max(cost);
                    }
                }));
            }
            sim.run(
                policy,
                SimConfig {
                    max_steps: Some(20_000_000),
                    stop_when_done: vec![ProcessId::new(n - 1)],
                    record_trace: false,
                },
                bodies,
            )
            .expect("simulation failed");
            let (dc, so, uo) = *worst.lock();
            max_dc = max_dc.max(dc);
            max_scan_ops = max_scan_ops.max(so);
            max_update_ops = max_update_ops.max(uo);
        };
        run_one(&mut RoundRobinPolicy::new());
        run_one(&mut OpBiasPolicy::new(
            OpKind::Write,
            RoundRobinPolicy::new(),
        ));
        for seed in 0..8 {
            run_one(&mut RandomPolicy::seeded(seed));
        }
        t.row(&[
            n.to_string(),
            m.to_string(),
            max_dc.to_string(),
            (2 * n + 1).to_string(),
            max_scan_ops.to_string(),
            model::mw_scan_ops(n as u64, m as u64).to_string(),
            max_update_ops.to_string(),
            model::mw_update_ops(n as u64, m as u64).to_string(),
        ]);
    }
    println!("{t}");
    println!();
}

fn e3_starvation() {
    let mut t = Table::new(
        "E3 — Observation 1 vs Observation 2: scanner vs continuous updater, round-robin adversary",
        &[
            "algorithm",
            "scan budget (double collects)",
            "outcome",
            "double collects used",
        ],
    );

    // Plain double collect: starved at any budget while updates continue.
    for budget in [10u32, 100, 1000] {
        let n = 2;
        let sim = Sim::new(n);
        let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
        let object = DoubleCollectSnapshot::with_backend(n, 0u64, &backend);
        let outcome: Mutex<Option<u32>> = Mutex::new(None);
        let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        {
            let object = &object;
            bodies.push(Box::new(move || {
                let mut h = object.handle(ProcessId::new(0));
                for k in 0..4 * budget as u64 * 2 {
                    h.update(k);
                }
            }));
        }
        {
            let object = &object;
            let outcome = &outcome;
            bodies.push(Box::new(move || {
                let mut h = object.handle(ProcessId::new(1));
                *outcome.lock() = h.try_scan(budget).map(|(_, s)| s.double_collects);
            }));
        }
        sim.run(
            &mut RoundRobinPolicy::new(),
            SimConfig {
                max_steps: Some(20_000_000),
                stop_when_done: vec![ProcessId::new(1)],
                record_trace: false,
            },
            bodies,
        )
        .expect("simulation failed");
        let o = *outcome.lock();
        t.row(&[
            "double-collect (Obs. 1 only)".to_string(),
            budget.to_string(),
            match o {
                Some(_) => "completed".to_string(),
                None => "STARVED".to_string(),
            },
            o.map_or_else(|| format!(">{budget}"), |d| d.to_string()),
        ]);
    }

    // The wait-free algorithms under the same adversary.
    for n in [2usize, 4, 8] {
        let (dc, _, _) = measure_sw!(UnboundedSnapshot, n, 200u64, 15, 0);
        t.row(&[
            format!("unbounded (Fig 2), n={n}"),
            "unlimited".to_string(),
            "completed (wait-free)".to_string(),
            format!("{dc} <= {}", n + 1),
        ]);
        let (dc, _, _) = measure_sw!(BoundedSnapshot, n, 200u64, 15, 0);
        t.row(&[
            format!("bounded (Fig 3), n={n}"),
            "unlimited".to_string(),
            "completed (wait-free)".to_string(),
            format!("{dc} <= {}", n + 1),
        ]);
    }
    println!("{t}");
    println!();
}

fn e4_compound_costs() {
    let mut t = Table::new(
        "E4 — Section 6 compound construction: single-writer register ops per operation (m = n)",
        &[
            "n",
            "measured SWMR ops/scan (quiescent)",
            "ours, worst-case model O(n^3)",
            "Anderson MW over bounded SW, model O(n^4)",
            "Anderson SW composite, model O(2^n)",
        ],
    );
    for n in [2usize, 4, 8, 16, 32] {
        let m = n;
        let counters = Arc::new(OpCounters::new(n));
        let inner = Instrumented::new(EpochBackend::new()).with_counters(Arc::clone(&counters));
        let mwmr = CompoundBackend::new(n, inner);
        let swmr = Instrumented::new(EpochBackend::new()).with_counters(Arc::clone(&counters));
        let object =
            MultiWriterSnapshot::with_options(n, m, 0u64, &swmr, &mwmr, MwVariant::RescanHandshake);
        let pid = ProcessId::new(0);
        let mut h = object.handle(pid);
        let before = counters.snapshot(pid);
        let _ = h.scan();
        let measured = (counters.snapshot(pid) - before).total();
        t.row(&[
            n.to_string(),
            measured.to_string(),
            model::compound_mw_scan_swmr_ops(n as u64, m as u64).to_string(),
            model::anderson_mw_over_bounded_sw_ops(n as u64).to_string(),
            model::anderson_sw_ops(n as u32).to_string(),
        ]);
    }
    println!("{t}");
    println!("   (ours grows ~n^3, Anderson's compound ~n^4, Anderson's direct 2^n:");
    println!("    who wins and where the exponential blows up match Section 6)");
    println!();
}

fn e5_linearizability() {
    let mut t = Table::new(
        "E5 — linearizability battery (Theorems 3.5/4.5/5.4)",
        &["check", "configuration", "runs/histories", "violations"],
    );

    // (a) Exhaustive exploration, small configs.
    let mut explore_sw = |name: &str, make: &dyn Fn(&harness::GatedBackend, usize) -> BoxedSw| {
        for (scripts, label) in [
            (vec![vec![SwStep::Update], vec![SwStep::Scan]], "n=2: U | S"),
            (
                vec![vec![SwStep::Update, SwStep::Update], vec![SwStep::Scan]],
                "n=2: UU | S",
            ),
        ] {
            let mut runs = 0u64;
            let mut violations = 0u64;
            Explorer::new(ExploreLimits {
                max_runs: 25_000,
                max_depth: 4096,
            })
            .explore::<String>(|policy| {
                let (history, _) =
                    run_sw_boxed(2, &scripts, policy, make).map_err(|e| e.to_string())?;
                runs += 1;
                if !check_history(&history).is_linearizable() {
                    violations += 1;
                }
                Ok(())
            })
            .unwrap();
            t.row(&[
                format!("exhaustive DFS ({name})"),
                label.to_string(),
                runs.to_string(),
                violations.to_string(),
            ]);
        }
    };
    explore_sw("unbounded", &|b, n| {
        Box::new(UnboundedSnapshot::with_backend(n, 0u64, b))
    });
    explore_sw("bounded", &|b, n| {
        Box::new(BoundedSnapshot::with_backend(n, 0u64, b))
    });

    // (b) Random deep sims, bigger configs.
    let mut total = 0u64;
    let mut violations = 0u64;
    for n in [3usize, 4] {
        let scripts = sw_mixed_scripts(n, 2);
        for seed in 0..200 {
            let (history, _) = run_sw_sim(
                n,
                &scripts,
                &mut RandomPolicy::seeded(seed),
                SimConfig::default(),
                |b| BoundedSnapshot::with_backend(n, 0u64, b),
            )
            .unwrap();
            total += 1;
            if !check_history(&history).is_linearizable() {
                violations += 1;
            }
        }
    }
    t.row(&[
        "random sims + Wing-Gong (bounded)".to_string(),
        "n=3..4, 2 rounds".to_string(),
        total.to_string(),
        violations.to_string(),
    ]);

    // (c) Threaded stress + interval checker.
    let mut total_ops = 0usize;
    let mut violations = 0usize;
    for n in [4usize, 8] {
        let object = BoundedSnapshot::new(n, 0u64);
        let history = harness::run_sw_threaded(&object, &sw_mixed_scripts(n, 300));
        total_ops += history.len();
        if check_intervals(&history).is_err() {
            violations += 1;
        }
    }
    t.row(&[
        "threaded stress + interval checker".to_string(),
        "n=4,8, 300 rounds".to_string(),
        format!("{total_ops} ops"),
        violations.to_string(),
    ]);

    // (d) The Figure 4 retry-edge ablation.
    for variant in [MwVariant::LiteralGoto1, MwVariant::RescanHandshake] {
        let found = figure4_attack_finds_violation(variant);
        t.row(&[
            format!("Figure 4 retry ablation ({variant:?})"),
            "n=3, m=2, crafted schedule".to_string(),
            "1".to_string(),
            if found {
                "1 — stale borrowed view".to_string()
            } else {
                "0".to_string()
            },
        ]);
    }

    println!("{t}");
    println!();
}

type BoxedSw = Box<dyn SwBox>;

/// Object-safe veneer over the GAT-based snapshot trait, for E5's dynamic
/// dispatch across algorithms.
trait SwBox: Send + Sync {
    fn run_script(&self, pid: ProcessId, script: &[SwStep], recorder: &snapshot_lin::Recorder<u64>);
}

impl<O: SwSnapshot<u64>> SwBox for O {
    fn run_script(
        &self,
        pid: ProcessId,
        script: &[SwStep],
        recorder: &snapshot_lin::Recorder<u64>,
    ) {
        let mut h = self.handle(pid);
        let mut k = 0u64;
        for step in script {
            match step {
                SwStep::Update => {
                    k += 1;
                    let value = harness::value_for(pid, k);
                    let inv = recorder.begin();
                    h.update(value);
                    recorder.end_update(pid, pid.get(), value, inv);
                }
                SwStep::Scan => {
                    let inv = recorder.begin();
                    let view = h.scan();
                    recorder.end_scan(pid, view.to_vec(), inv);
                }
            }
        }
    }
}

fn run_sw_boxed(
    n: usize,
    scripts: &[Vec<SwStep>],
    policy: &mut dyn snapshot_sim::SchedulePolicy,
    make: &dyn Fn(&harness::GatedBackend, usize) -> BoxedSw,
) -> Result<(snapshot_lin::History<u64>, snapshot_sim::SimReport), snapshot_sim::SimError> {
    let sim = Sim::new(n);
    let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
    let object = make(&backend, n);
    let recorder = snapshot_lin::Recorder::new(n, n, 0u64);
    let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
    for (i, script) in scripts.iter().enumerate() {
        let object = &object;
        let recorder = &recorder;
        bodies.push(Box::new(move || {
            object.run_script(ProcessId::new(i), script, recorder);
        }));
    }
    let report = sim.run(policy, SimConfig::default(), bodies)?;
    Ok((recorder.finish(), report))
}

fn figure4_attack_finds_violation(variant: MwVariant) -> bool {
    const N: usize = 3;
    const M: usize = 2;
    let mut granted = [0u64; N];
    let mut policy = FnPolicy(move |ready: &[snapshot_sim::ReadyProcess], _| {
        let pick = |pid: usize| ready.iter().position(|r| r.pid.get() == pid);
        if let Some(i) = pick(1) {
            granted[1] += 1;
            return Decision::Run(i);
        }
        if granted[2] < 19 {
            if let Some(i) = pick(2) {
                granted[2] += 1;
                return Decision::Run(i);
            }
        }
        if granted[0] < 6 {
            if let Some(i) = pick(0) {
                granted[0] += 1;
                return Decision::Run(i);
            }
        }
        if let Some(i) = pick(2) {
            granted[2] += 1;
            return Decision::Run(i);
        }
        Decision::Halt
    });
    let scripts: Vec<Vec<MwStep>> = vec![
        vec![MwStep::Update(0)],
        vec![MwStep::Update(1)],
        vec![MwStep::Scan, MwStep::Scan],
    ];
    let (history, _) = run_mw_sim(
        N,
        M,
        &scripts,
        &mut policy,
        SimConfig {
            max_steps: Some(10_000),
            stop_when_done: vec![ProcessId::new(2)],
            record_trace: false,
        },
        |b| MultiWriterSnapshot::with_options(N, M, 0u64, b, b, variant),
    )
    .expect("simulation failed");
    matches!(check_history(&history), WgResult::NotLinearizable)
}

fn e6_wall_clock() {
    let mut t = Table::new(
        "E6 — wall-clock costs on this machine (real threads; see criterion benches for distributions)",
        &[
            "n",
            "algorithm",
            "uncontended scan (ns)",
            "uncontended update (ns)",
            "contended scan+update ops/ms",
        ],
    );
    for n in [2usize, 4, 8] {
        wall_clock_row(
            &mut t,
            n,
            "unbounded (Fig 2)",
            &UnboundedSnapshot::new(n, 0u64),
        );
        wall_clock_row(&mut t, n, "bounded (Fig 3)", &BoundedSnapshot::new(n, 0u64));
        let mw = MultiWriterSnapshot::new(n, n, 0u64);
        wall_clock_row_mw(&mut t, n, "multi-writer (Fig 4)", &mw);
        wall_clock_row(&mut t, n, "lock baseline", &LockSnapshot::new(n, 0u64));
        wall_clock_row(
            &mut t,
            n,
            "double-collect baseline",
            &DoubleCollectSnapshot::new(n, 0u64),
        );
    }
    println!("{t}");
    println!("   (single-CPU machine: contended numbers reflect timeslicing, not");
    println!("    parallel cache traffic; shapes, not absolutes, are the claim)");
    println!();
}

fn wall_clock_row<O: SwSnapshot<u64>>(t: &mut Table, n: usize, name: &str, object: &O) {
    const ITERS: u32 = 20_000;
    // Uncontended.
    let (scan_ns, update_ns) = {
        let mut h = object.handle(ProcessId::new(0));
        let start = std::time::Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(h.scan());
        }
        let scan_ns = start.elapsed().as_nanos() / ITERS as u128;
        let start = std::time::Instant::now();
        for k in 0..ITERS {
            h.update(k as u64);
        }
        (scan_ns, start.elapsed().as_nanos() / ITERS as u128)
    };
    // Contended: every process mixes scans and updates for a fixed time.
    let ops_per_ms = {
        let total_ops = std::sync::atomic::AtomicU64::new(0);
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for i in 0..n {
                let total_ops = &total_ops;
                s.spawn(move || {
                    let mut h = object.handle(ProcessId::new(i));
                    let mut ops = 0u64;
                    while start.elapsed().as_millis() < 150 {
                        h.update(ops);
                        std::hint::black_box(h.scan());
                        ops += 2;
                    }
                    total_ops.fetch_add(ops, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        total_ops.load(std::sync::atomic::Ordering::Relaxed) as u128 * 1000
            / start.elapsed().as_micros().max(1)
    };
    t.row(&[
        n.to_string(),
        name.to_string(),
        scan_ns.to_string(),
        update_ns.to_string(),
        ops_per_ms.to_string(),
    ]);
}

fn wall_clock_row_mw<O: MwSnapshot<u64>>(t: &mut Table, n: usize, name: &str, object: &O) {
    const ITERS: u32 = 20_000;
    let (scan_ns, update_ns) = {
        let mut h = object.handle(ProcessId::new(0));
        let start = std::time::Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(h.scan());
        }
        let scan_ns = start.elapsed().as_nanos() / ITERS as u128;
        let start = std::time::Instant::now();
        for k in 0..ITERS {
            h.update(0, k as u64);
        }
        (scan_ns, start.elapsed().as_nanos() / ITERS as u128)
    };
    let ops_per_ms = {
        let total_ops = std::sync::atomic::AtomicU64::new(0);
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for i in 0..n {
                let total_ops = &total_ops;
                s.spawn(move || {
                    let mut h = object.handle(ProcessId::new(i));
                    let mut ops = 0u64;
                    while start.elapsed().as_millis() < 150 {
                        h.update(i % object.words(), ops);
                        std::hint::black_box(h.scan());
                        ops += 2;
                    }
                    total_ops.fetch_add(ops, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        total_ops.load(std::sync::atomic::Ordering::Relaxed) as u128 * 1000
            / start.elapsed().as_micros().max(1)
    };
    t.row(&[
        n.to_string(),
        name.to_string(),
        scan_ns.to_string(),
        update_ns.to_string(),
        ops_per_ms.to_string(),
    ]);
}
