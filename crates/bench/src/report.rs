//! Minimal plain-text table rendering for the `experiments` binary.

use std::fmt;

/// A plain-text table: the `experiments` binary prints one per reproduced
/// claim, in the same rows/series shape as EXPERIMENTS.md records.
///
/// # Example
///
/// ```
/// use snapshot_bench::report::Table;
///
/// let mut t = Table::new("demo", &["n", "ops"]);
/// t.row(&["2", "24"]);
/// t.row(&["4", "80"]);
/// let text = t.to_string();
/// assert!(text.contains("demo"));
/// assert!(text.contains("80"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; missing cells render empty, extra cells are kept.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }

        writeln!(f, "## {}", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for i in 0..cols {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                write!(f, " {:>width$} |", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("t", &["algorithm", "n"]);
        t.row(&["bounded", "4"]);
        t.row(&["unbounded", "16"]);
        let s = t.to_string();
        assert!(s.contains("## t"));
        assert!(s.lines().count() >= 4);
        // All data lines have the same length (aligned).
        let lens: Vec<usize> = s.lines().skip(1).map(str::len).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn empty_table_reports_empty() {
        let t = Table::new("e", &["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
