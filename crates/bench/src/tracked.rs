//! Tracked-benchmark report format: the `snapbench` binary's JSON schema,
//! a hand-rolled writer and parser (the workspace takes no serialization
//! dependency), and the regression comparator behind `snapbench --compare`.
//!
//! A report is committed at the repository root as `BENCH_<pr>.json` so
//! that later changes can be diffed against it: `snapbench --compare
//! BENCH_3.json` re-runs the suite and exits non-zero when any matching
//! entry's median cost per operation regressed by more than the
//! threshold. The numbers are machine-dependent, so CI runs the compare
//! in report-only mode; the committed file documents the *shape* of the
//! expected costs (e.g. locked scans degrade under writers, wait-free
//! scans do not).

use std::fmt;

/// Schema identifier stamped into every report; bump on breaking format
/// changes so `--compare` refuses to diff across incompatible files.
pub const SCHEMA: &str = "snapbench/v1";

/// One benchmark configuration's measured result.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Unique key, `"{workload}/{construction}/t{threads}"` — the join key
    /// for `--compare`.
    pub name: String,
    /// Workload shape (`scan_heavy`, `update_heavy`, `mixed`,
    /// `contended_mw`).
    pub workload: String,
    /// Construction under test (`unbounded`, `bounded`, `multiwriter`,
    /// `locked`).
    pub construction: String,
    /// Concurrent processes (one OS thread each).
    pub threads: usize,
    /// Operations issued by each thread per sample.
    pub iters_per_thread: u64,
    /// Timed samples taken; the reported figure is their median.
    pub samples: u32,
    /// Untimed warmup runs before the first sample.
    pub warmup: u32,
    /// `threads * iters_per_thread` — total operations per sample.
    pub total_ops: u64,
    /// Median over samples of (sample wall time in ns / `total_ops`).
    pub median_ns_per_op: f64,
    /// Fastest sample's ns/op.
    pub min_ns_per_op: f64,
    /// Slowest sample's ns/op.
    pub max_ns_per_op: f64,
}

/// A full `snapbench` run: the schema tag plus one entry per
/// configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Always [`SCHEMA`] for reports written by this version.
    pub schema: String,
    /// Measured entries, in suite order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// An empty report with the current schema tag.
    pub fn new() -> Self {
        BenchReport {
            schema: SCHEMA.to_string(),
            entries: Vec::new(),
        }
    }

    /// Renders the report as pretty-printed JSON (one entry per line).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.entries.len() * 256);
        out.push_str("{\n  \"schema\": ");
        push_json_string(&mut out, &self.schema);
        out.push_str(",\n  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            push_json_string(&mut out, &e.name);
            out.push_str(", \"workload\": ");
            push_json_string(&mut out, &e.workload);
            out.push_str(", \"construction\": ");
            push_json_string(&mut out, &e.construction);
            out.push_str(&format!(
                ", \"threads\": {}, \"iters_per_thread\": {}, \"samples\": {}, \"warmup\": {}, \
                 \"total_ops\": {}, \"median_ns_per_op\": {}, \"min_ns_per_op\": {}, \
                 \"max_ns_per_op\": {}}}",
                e.threads,
                e.iters_per_thread,
                e.samples,
                e.warmup,
                e.total_ops,
                e.median_ns_per_op,
                e.min_ns_per_op,
                e.max_ns_per_op
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a report previously written by [`BenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed JSON, a missing or
    /// wrongly-typed field, or a schema tag other than [`SCHEMA`].
    pub fn from_json(text: &str) -> Result<Self, ParseError> {
        let value = Parser::new(text).parse_document()?;
        let root = value.as_obj("top level")?;
        let schema = get(root, "schema")?.as_str("schema")?.to_string();
        if schema != SCHEMA {
            return Err(ParseError::new(0, "unsupported schema (want snapbench/v1)"));
        }
        let mut entries = Vec::new();
        for item in get(root, "entries")?.as_arr("entries")? {
            let o = item.as_obj("entry")?;
            entries.push(BenchEntry {
                name: get(o, "name")?.as_str("name")?.to_string(),
                workload: get(o, "workload")?.as_str("workload")?.to_string(),
                construction: get(o, "construction")?.as_str("construction")?.to_string(),
                threads: get(o, "threads")?.as_u64("threads")? as usize,
                iters_per_thread: get(o, "iters_per_thread")?.as_u64("iters_per_thread")?,
                samples: get(o, "samples")?.as_u64("samples")? as u32,
                warmup: get(o, "warmup")?.as_u64("warmup")? as u32,
                total_ops: get(o, "total_ops")?.as_u64("total_ops")?,
                median_ns_per_op: get(o, "median_ns_per_op")?.as_f64("median_ns_per_op")?,
                min_ns_per_op: get(o, "min_ns_per_op")?.as_f64("min_ns_per_op")?,
                max_ns_per_op: get(o, "max_ns_per_op")?.as_f64("max_ns_per_op")?,
            });
        }
        Ok(BenchReport { schema, entries })
    }
}

impl Default for BenchReport {
    fn default() -> Self {
        Self::new()
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// Per-entry outcome of comparing a new report against a baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct Delta {
    /// The entry's join key.
    pub name: String,
    /// Baseline median ns/op.
    pub old_ns: f64,
    /// New median ns/op.
    pub new_ns: f64,
    /// Percentage change, `(new - old) / old * 100` (positive = slower).
    pub pct: f64,
    /// Whether `pct` exceeds the comparison threshold.
    pub regressed: bool,
}

/// Result of [`compare`]: matched deltas plus the entries present on only
/// one side (never treated as regressions — suites are allowed to grow).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Comparison {
    /// One delta per entry name present in both reports, in new-report
    /// order.
    pub deltas: Vec<Delta>,
    /// Baseline entries absent from the new report.
    pub missing_in_new: Vec<String>,
    /// New entries absent from the baseline.
    pub new_only: Vec<String>,
}

impl Comparison {
    /// True when any matched entry regressed beyond the threshold.
    pub fn has_regressions(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }

    /// Plain-text table of the comparison, one line per delta, regressions
    /// flagged.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<36} {:>12} {:>12} {:>9}\n",
            "benchmark", "old ns/op", "new ns/op", "delta"
        ));
        for d in &self.deltas {
            out.push_str(&format!(
                "{:<36} {:>12.1} {:>12.1} {:>+8.1}%{}\n",
                d.name,
                d.old_ns,
                d.new_ns,
                d.pct,
                if d.regressed { "  REGRESSION" } else { "" }
            ));
        }
        for name in &self.missing_in_new {
            out.push_str(&format!("{name:<36} (missing in new report)\n"));
        }
        for name in &self.new_only {
            out.push_str(&format!("{name:<36} (no baseline)\n"));
        }
        out
    }
}

/// Compares `new` against the `old` baseline, flagging every matched
/// entry whose median ns/op grew by more than `threshold_pct` percent.
pub fn compare(old: &BenchReport, new: &BenchReport, threshold_pct: f64) -> Comparison {
    let mut cmp = Comparison::default();
    for e in &new.entries {
        match old.entries.iter().find(|o| o.name == e.name) {
            Some(o) => {
                let pct = if o.median_ns_per_op > 0.0 {
                    (e.median_ns_per_op - o.median_ns_per_op) / o.median_ns_per_op * 100.0
                } else {
                    0.0
                };
                cmp.deltas.push(Delta {
                    name: e.name.clone(),
                    old_ns: o.median_ns_per_op,
                    new_ns: e.median_ns_per_op,
                    pct,
                    regressed: pct > threshold_pct,
                });
            }
            None => cmp.new_only.push(e.name.clone()),
        }
    }
    for o in &old.entries {
        if !new.entries.iter().any(|e| e.name == o.name) {
            cmp.missing_in_new.push(o.name.clone());
        }
    }
    cmp
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (the subset the report format emits)
// ---------------------------------------------------------------------------

/// Parse failure: byte offset plus a static description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl ParseError {
    fn new(pos: usize, msg: &'static str) -> Self {
        ParseError { pos, msg }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_obj(&self, what: &'static str) -> Result<&[(String, Json)], ParseError> {
        match self {
            Json::Obj(fields) => Ok(fields),
            _ => Err(ParseError::new(0, type_err(what, "an object"))),
        }
    }

    fn as_arr(&self, what: &'static str) -> Result<&[Json], ParseError> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(ParseError::new(0, type_err(what, "an array"))),
        }
    }

    fn as_str(&self, what: &'static str) -> Result<&str, ParseError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(ParseError::new(0, type_err(what, "a string"))),
        }
    }

    fn as_f64(&self, what: &'static str) -> Result<f64, ParseError> {
        match self {
            Json::Num(x) => Ok(*x),
            _ => Err(ParseError::new(0, type_err(what, "a number"))),
        }
    }

    fn as_u64(&self, what: &'static str) -> Result<u64, ParseError> {
        let x = self.as_f64(what)?;
        if x < 0.0 || x.fract() != 0.0 || x > u64::MAX as f64 {
            return Err(ParseError::new(0, type_err(what, "a non-negative integer")));
        }
        Ok(x as u64)
    }
}

/// Static "field X must be Y" messages without allocating in the error
/// type: the comparator only ever needs a handful of shapes.
fn type_err(what: &'static str, want: &'static str) -> &'static str {
    // The field/type pair is informative enough for a format this small;
    // fold both into one static message per expected type.
    let _ = what;
    match want {
        "an object" => "expected an object",
        "an array" => "expected an array",
        "a string" => "expected a string",
        "a number" => "expected a number",
        _ => "expected a non-negative integer",
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &'static str) -> Result<&'a Json, ParseError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or(ParseError::new(0, "missing required field"))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Json, ParseError> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(ParseError::new(self.pos, "trailing garbage after document"));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, ParseError> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or(ParseError::new(self.pos, "unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError::new(self.pos, "unexpected character"))
        }
    }

    fn parse_value(&mut self) -> Result<Json, ParseError> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Json::Str(self.parse_string()?)),
            b't' => self.parse_keyword("true", Json::Bool(true)),
            b'f' => self.parse_keyword("false", Json::Bool(false)),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(ParseError::new(self.pos, "unrecognized keyword"))
        }
    }

    fn parse_object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(ParseError::new(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(ParseError::new(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or(ParseError::new(self.pos, "unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or(ParseError::new(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or(ParseError::new(self.pos, "bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| ParseError::new(self.pos, "bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs never occur in this format's
                            // identifiers; reject rather than mis-decode.
                            out.push(
                                char::from_u32(code)
                                    .ok_or(ParseError::new(self.pos, "bad \\u escape"))?,
                            );
                        }
                        _ => return Err(ParseError::new(self.pos, "unknown escape")),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the raw
                    // input rather than byte-by-byte.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let chunk = self
                            .bytes
                            .get(start..start + width)
                            .and_then(|c| std::str::from_utf8(c).ok())
                            .ok_or(ParseError::new(start, "invalid UTF-8 in string"))?;
                        out.push_str(chunk);
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(ParseError::new(start, "expected a value"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or(ParseError::new(start, "malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, median: f64) -> BenchEntry {
        let (workload, rest) = name.split_once('/').unwrap();
        let (construction, threads) = rest.split_once("/t").unwrap();
        BenchEntry {
            name: name.to_string(),
            workload: workload.to_string(),
            construction: construction.to_string(),
            threads: threads.parse().unwrap(),
            iters_per_thread: 10_000,
            samples: 5,
            warmup: 1,
            total_ops: 10_000 * threads.parse::<u64>().unwrap(),
            median_ns_per_op: median,
            min_ns_per_op: median * 0.9,
            max_ns_per_op: median * 1.25,
        }
    }

    fn report(entries: Vec<BenchEntry>) -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            entries,
        }
    }

    #[test]
    fn serialize_parse_round_trips_exactly() {
        // Rust's f64 Display emits the shortest exactly-round-tripping
        // decimal, so field-for-field equality (not approximate) holds.
        let original = report(vec![
            entry("scan_heavy/unbounded/t1", 812.5),
            entry("mixed/locked/t4", 153.071),
        ]);
        let parsed = BenchReport::from_json(&original.to_json()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn parser_rejects_wrong_schema_and_malformed_input() {
        let bad_schema = r#"{"schema": "snapbench/v0", "entries": []}"#;
        assert!(BenchReport::from_json(bad_schema).is_err());
        assert!(BenchReport::from_json("{\"schema\": \"snapbench/v1\"").is_err());
        assert!(BenchReport::from_json("[]").is_err());
        assert!(BenchReport::from_json("{} trailing").is_err());
    }

    #[test]
    fn missing_fields_are_parse_errors() {
        let text = r#"{"schema": "snapbench/v1", "entries": [{"name": "x"}]}"#;
        assert!(BenchReport::from_json(text).is_err());
    }

    #[test]
    fn injected_regression_beyond_threshold_is_flagged() {
        // The acceptance fixture: a 30% slowdown must trip a 20% gate.
        let old = report(vec![
            entry("scan_heavy/unbounded/t2", 100.0),
            entry("mixed/bounded/t2", 200.0),
        ]);
        let new = report(vec![
            entry("scan_heavy/unbounded/t2", 130.0), // +30%
            entry("mixed/bounded/t2", 210.0),        // +5%
        ]);
        let cmp = compare(&old, &new, 20.0);
        assert!(cmp.has_regressions());
        let flagged: Vec<&str> = cmp
            .deltas
            .iter()
            .filter(|d| d.regressed)
            .map(|d| d.name.as_str())
            .collect();
        assert_eq!(flagged, vec!["scan_heavy/unbounded/t2"]);

        // Raising the threshold above the slowdown clears the gate.
        assert!(!compare(&old, &new, 35.0).has_regressions());
    }

    #[test]
    fn improvements_and_suite_growth_are_not_regressions() {
        let old = report(vec![entry("mixed/locked/t1", 500.0)]);
        let new = report(vec![
            entry("mixed/locked/t1", 250.0),
            entry("mixed/locked/t4", 900.0),
        ]);
        let cmp = compare(&old, &new, 20.0);
        assert!(!cmp.has_regressions());
        assert_eq!(cmp.deltas[0].pct, -50.0);
        assert_eq!(cmp.new_only, vec!["mixed/locked/t4".to_string()]);
        assert!(cmp.missing_in_new.is_empty());
    }

    #[test]
    fn removed_entries_are_reported_but_do_not_gate() {
        let old = report(vec![
            entry("mixed/locked/t1", 500.0),
            entry("mixed/locked/t2", 600.0),
        ]);
        let new = report(vec![entry("mixed/locked/t1", 505.0)]);
        let cmp = compare(&old, &new, 20.0);
        assert!(!cmp.has_regressions());
        assert_eq!(cmp.missing_in_new, vec!["mixed/locked/t2".to_string()]);
    }

    #[test]
    fn render_marks_regressions() {
        let old = report(vec![entry("scan_heavy/locked/t2", 100.0)]);
        let new = report(vec![entry("scan_heavy/locked/t2", 150.0)]);
        let table = compare(&old, &new, 20.0).render();
        assert!(table.contains("scan_heavy/locked/t2"));
        assert!(table.contains("REGRESSION"));
        assert!(table.contains("+50.0%"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut r = report(vec![entry("mixed/locked/t1", 1.0)]);
        r.entries[0].name = "weird \"name\"\\with\nescapes".to_string();
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.entries[0].name, r.entries[0].name);
    }
}
