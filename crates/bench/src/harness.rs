//! Scripted workload drivers: run any snapshot construction under the
//! deterministic simulator or on real threads, recording a full
//! [`History`] for the linearizability checkers.
//!
//! Update values are auto-generated as `(pid + 1) * 1_000_000 + k` (the
//! `k`-th update of a process), which makes every written value unique —
//! a precondition of the fast interval checker and harmless elsewhere.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use snapshot_core::{MwSnapshot, MwSnapshotHandle, SwSnapshot, SwSnapshotHandle};
use snapshot_lin::{History, Recorder};
use snapshot_registers::{EpochBackend, Instrumented, ProcessId};
use snapshot_sim::{SchedulePolicy, Sim, SimConfig, SimError, SimReport};

/// The backend handed to object builders in the simulator runners: the
/// default lock-free registers, gated on the simulation scheduler.
pub type GatedBackend = Instrumented<EpochBackend>;

/// One step of a single-writer process script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwStep {
    /// Update the own segment with the next auto-generated value.
    Update,
    /// Scan and record the view.
    Scan,
}

/// One step of a multi-writer process script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MwStep {
    /// Update the given word with the next auto-generated value.
    Update(usize),
    /// Scan and record the view.
    Scan,
}

/// The auto-generated value of process `pid`'s `k`-th update (`k >= 1`).
pub fn value_for(pid: ProcessId, k: u64) -> u64 {
    (pid.get() as u64 + 1) * 1_000_000 + k
}

/// Scripts where every process alternates `Update; Scan` for `rounds`
/// rounds.
pub fn sw_mixed_scripts(n: usize, rounds: usize) -> Vec<Vec<SwStep>> {
    (0..n)
        .map(|_| {
            (0..rounds)
                .flat_map(|_| [SwStep::Update, SwStep::Scan])
                .collect()
        })
        .collect()
}

/// Scripts where the first `n - 1` processes only update and the last only
/// scans — the scanner-vs-updaters shape of the starvation experiments.
pub fn sw_scanner_vs_updaters(n: usize, updates: usize, scans: usize) -> Vec<Vec<SwStep>> {
    assert!(n >= 2, "need at least one updater and one scanner");
    let mut scripts: Vec<Vec<SwStep>> = (0..n - 1).map(|_| vec![SwStep::Update; updates]).collect();
    scripts.push(vec![SwStep::Scan; scans]);
    scripts
}

/// Seeded random single-writer scripts with `len` steps per process and
/// the given probability of a step being an update.
pub fn sw_random_scripts(n: usize, len: usize, update_prob: f64, seed: u64) -> Vec<Vec<SwStep>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..len)
                .map(|_| {
                    if rng.random_bool(update_prob) {
                        SwStep::Update
                    } else {
                        SwStep::Scan
                    }
                })
                .collect()
        })
        .collect()
}

/// Multi-writer scripts where process `i` owns word `i` (requires
/// `m >= n`): per-word updates stay totally ordered, so the interval
/// checker applies.
pub fn mw_disjoint_scripts(n: usize, m: usize, rounds: usize) -> Vec<Vec<MwStep>> {
    assert!(
        m >= n,
        "disjoint scripts need at least one word per process"
    );
    (0..n)
        .map(|i| {
            (0..rounds)
                .flat_map(|_| [MwStep::Update(i), MwStep::Scan])
                .collect()
        })
        .collect()
}

/// Seeded random multi-writer scripts where every process writes random
/// words (contended; check with Wing–Gong only).
pub fn mw_contended_scripts(
    n: usize,
    m: usize,
    len: usize,
    update_prob: f64,
    seed: u64,
) -> Vec<Vec<MwStep>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..len)
                .map(|_| {
                    if rng.random_bool(update_prob) {
                        MwStep::Update(rng.random_range(0..m))
                    } else {
                        MwStep::Scan
                    }
                })
                .collect()
        })
        .collect()
}

/// Records a pending update if the operation unwinds (simulator abort)
/// before completing.
struct UpdateGuard<'a> {
    rec: &'a Recorder<u64>,
    pid: ProcessId,
    word: usize,
    value: u64,
    inv: u64,
    done: bool,
}

impl UpdateGuard<'_> {
    fn complete(mut self) {
        self.rec
            .end_update(self.pid, self.word, self.value, self.inv);
        self.done = true;
    }
}

impl Drop for UpdateGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.rec
                .pending_update(self.pid, self.word, self.value, self.inv);
        }
    }
}

/// Runs a single-writer workload under the deterministic simulator.
///
/// `build` constructs the object over the gated backend; each process then
/// executes its script, and every operation is recorded. Returns the
/// history (including updates left pending by aborted processes) and the
/// simulator's report.
///
/// # Errors
///
/// Propagates [`SimError`] (a panicking process body or a body-count
/// mismatch).
pub fn run_sw_sim<O, F>(
    n: usize,
    scripts: &[Vec<SwStep>],
    policy: &mut dyn SchedulePolicy,
    config: SimConfig,
    build: F,
) -> Result<(History<u64>, SimReport), SimError>
where
    O: SwSnapshot<u64>,
    F: FnOnce(&GatedBackend) -> O,
{
    assert_eq!(scripts.len(), n, "one script per process");
    let sim = Sim::new(n);
    let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
    let object = build(&backend);
    let recorder = Recorder::new(n, n, 0u64);

    let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(n);
    for (i, script) in scripts.iter().enumerate() {
        let object = &object;
        let recorder = &recorder;
        let script = script.clone();
        bodies.push(Box::new(move || {
            let pid = ProcessId::new(i);
            let mut handle = object.handle(pid);
            let mut k = 0u64;
            for step in script {
                match step {
                    SwStep::Update => {
                        k += 1;
                        let value = value_for(pid, k);
                        let inv = recorder.begin();
                        let guard = UpdateGuard {
                            rec: recorder,
                            pid,
                            word: i,
                            value,
                            inv,
                            done: false,
                        };
                        handle.update(value);
                        guard.complete();
                    }
                    SwStep::Scan => {
                        let inv = recorder.begin();
                        let view = handle.scan();
                        recorder.end_scan(pid, view.to_vec(), inv);
                    }
                }
            }
        }));
    }

    let report = sim.run(policy, config, bodies)?;
    Ok((recorder.finish(), report))
}

/// Runs a multi-writer workload under the deterministic simulator; the
/// multi-writer analogue of [`run_sw_sim`].
///
/// # Errors
///
/// Propagates [`SimError`].
pub fn run_mw_sim<O, F>(
    n: usize,
    m: usize,
    scripts: &[Vec<MwStep>],
    policy: &mut dyn SchedulePolicy,
    config: SimConfig,
    build: F,
) -> Result<(History<u64>, SimReport), SimError>
where
    O: MwSnapshot<u64>,
    F: FnOnce(&GatedBackend) -> O,
{
    assert_eq!(scripts.len(), n, "one script per process");
    let sim = Sim::new(n);
    let backend = Instrumented::new(EpochBackend::new()).with_gate(sim.gate());
    let object = build(&backend);
    let recorder = Recorder::new(n, m, 0u64);

    let mut bodies: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(n);
    for (i, script) in scripts.iter().enumerate() {
        let object = &object;
        let recorder = &recorder;
        let script = script.clone();
        bodies.push(Box::new(move || {
            let pid = ProcessId::new(i);
            let mut handle = object.handle(pid);
            let mut k = 0u64;
            for step in script {
                match step {
                    MwStep::Update(word) => {
                        k += 1;
                        let value = value_for(pid, k);
                        let inv = recorder.begin();
                        let guard = UpdateGuard {
                            rec: recorder,
                            pid,
                            word,
                            value,
                            inv,
                            done: false,
                        };
                        handle.update(word, value);
                        guard.complete();
                    }
                    MwStep::Scan => {
                        let inv = recorder.begin();
                        let view = handle.scan();
                        recorder.end_scan(pid, view.to_vec(), inv);
                    }
                }
            }
        }));
    }

    let report = sim.run(policy, config, bodies)?;
    Ok((recorder.finish(), report))
}

/// Runs a single-writer workload on real OS threads against an
/// already-constructed object, recording the history.
pub fn run_sw_threaded<O: SwSnapshot<u64>>(object: &O, scripts: &[Vec<SwStep>]) -> History<u64> {
    let n = object.processes();
    assert_eq!(scripts.len(), n, "one script per process");
    let recorder = Recorder::new(n, n, 0u64);
    std::thread::scope(|s| {
        for (i, script) in scripts.iter().enumerate() {
            let recorder = &recorder;
            s.spawn(move || {
                let pid = ProcessId::new(i);
                let mut handle = object.handle(pid);
                let mut k = 0u64;
                for step in script {
                    match step {
                        SwStep::Update => {
                            k += 1;
                            let value = value_for(pid, k);
                            let inv = recorder.begin();
                            handle.update(value);
                            recorder.end_update(pid, i, value, inv);
                        }
                        SwStep::Scan => {
                            let inv = recorder.begin();
                            let view = handle.scan();
                            recorder.end_scan(pid, view.to_vec(), inv);
                        }
                    }
                }
            });
        }
    });
    recorder.finish()
}

/// Runs a multi-writer workload on real OS threads; multi-writer analogue
/// of [`run_sw_threaded`].
pub fn run_mw_threaded<O: MwSnapshot<u64>>(object: &O, scripts: &[Vec<MwStep>]) -> History<u64> {
    let n = object.processes();
    let m = object.words();
    assert_eq!(scripts.len(), n, "one script per process");
    let recorder = Recorder::new(n, m, 0u64);
    std::thread::scope(|s| {
        for (i, script) in scripts.iter().enumerate() {
            let recorder = &recorder;
            s.spawn(move || {
                let pid = ProcessId::new(i);
                let mut handle = object.handle(pid);
                let mut k = 0u64;
                for step in script {
                    match step {
                        MwStep::Update(word) => {
                            k += 1;
                            let value = value_for(pid, k);
                            let inv = recorder.begin();
                            handle.update(*word, value);
                            recorder.end_update(pid, *word, value, inv);
                        }
                        MwStep::Scan => {
                            let inv = recorder.begin();
                            let view = handle.scan();
                            recorder.end_scan(pid, view.to_vec(), inv);
                        }
                    }
                }
            });
        }
    });
    recorder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapshot_core::{BoundedSnapshot, UnboundedSnapshot};
    use snapshot_lin::{check_history, check_intervals};
    use snapshot_sim::RandomPolicy;

    #[test]
    fn sim_run_produces_checkable_history() {
        let n = 2;
        let scripts = sw_mixed_scripts(n, 2);
        let (history, report) = run_sw_sim(
            n,
            &scripts,
            &mut RandomPolicy::seeded(3),
            SimConfig::default(),
            |b| UnboundedSnapshot::with_backend(n, 0u64, b),
        )
        .unwrap();
        assert!(report
            .statuses
            .iter()
            .all(|s| matches!(s, snapshot_sim::ProcessStatus::Completed)));
        assert_eq!(history.len(), 8); // 2 procs x 2 rounds x (update+scan)
        assert!(check_history(&history).is_linearizable());
        assert_eq!(check_intervals(&history), Ok(()));
    }

    #[test]
    fn threaded_run_produces_checkable_history() {
        let n = 3;
        let object = BoundedSnapshot::new(n, 0u64);
        let history = run_sw_threaded(&object, &sw_mixed_scripts(n, 20));
        assert_eq!(history.len(), n * 40);
        assert_eq!(check_intervals(&history), Ok(()));
    }

    #[test]
    fn script_generators_have_expected_shapes() {
        let s = sw_scanner_vs_updaters(3, 5, 2);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], vec![SwStep::Update; 5]);
        assert_eq!(s[2], vec![SwStep::Scan; 2]);

        let r = sw_random_scripts(2, 10, 0.5, 42);
        assert_eq!(r[0].len(), 10);
        assert_eq!(r, sw_random_scripts(2, 10, 0.5, 42)); // deterministic

        let d = mw_disjoint_scripts(2, 3, 1);
        assert_eq!(d[1][0], MwStep::Update(1));
    }

    #[test]
    fn values_are_globally_unique() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for pid in 0..8 {
            for k in 1..1000 {
                assert!(seen.insert(value_for(ProcessId::new(pid), k)));
            }
        }
    }
}
