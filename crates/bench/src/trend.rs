//! Multi-generation trend analysis over committed `BENCH_*.json`
//! baselines: the barometer behind `snapbench trend`.
//!
//! `--compare` answers "did *this* change regress against *one*
//! baseline?"; the trend barometer answers the slower question — "has a
//! benchmark been quietly decaying across the last several committed
//! generations?" It loads every `BENCH_<n>.json` at the repository root,
//! lines each benchmark's medians up by generation, and flags only
//! *monotone multi-generation* decay: a strictly-increasing ns/op suffix
//! spanning at least three present generations whose total rise exceeds
//! the threshold. A single noisy generation (machine variance, a
//! transient regression already fixed) therefore never trips the gate —
//! the dip resets the run.

use crate::tracked::BenchReport;

/// One benchmark's median at one committed generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrendPoint {
    /// Baseline generation — the `<n>` in `BENCH_<n>.json`.
    pub generation: u32,
    /// Median ns/op recorded by that generation.
    pub median_ns_per_op: f64,
}

/// One benchmark's history across every generation that measured it.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchTrend {
    /// The entry's join key, `"{workload}/{construction}/t{threads}"`.
    pub name: String,
    /// Medians at the generations that ran this benchmark, ascending.
    pub points: Vec<TrendPoint>,
    /// Length in points of the strictly-increasing ns/op suffix (1 when
    /// the latest generation is not slower than its predecessor).
    pub decay_run: usize,
    /// Percent rise across the decay run, `(last - first) / first * 100`;
    /// zero when the run is a single point.
    pub decay_pct: f64,
    /// True when the run spans ≥ 3 present generations *and* its total
    /// rise exceeds the report threshold.
    pub decayed: bool,
}

/// The assembled barometer: every benchmark's trend across every loaded
/// generation.
#[derive(Clone, Debug, PartialEq)]
pub struct TrendReport {
    /// Generations loaded, ascending.
    pub generations: Vec<u32>,
    /// One trend per benchmark name, in first-seen suite order.
    pub trends: Vec<BenchTrend>,
    /// Decay gate: monotone rises larger than this percentage flag.
    pub threshold_pct: f64,
}

/// Parses the generation number out of a committed baseline filename
/// (`BENCH_<n>.json`); returns `None` for any other name.
pub fn generation_of(file_name: &str) -> Option<u32> {
    let digits = file_name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Longest strictly-increasing suffix of the points' medians, with its
/// total percent rise. A single point is a run of 1 with 0% rise.
fn decay_suffix(points: &[TrendPoint]) -> (usize, f64) {
    if points.is_empty() {
        return (0, 0.0);
    }
    let mut run = 1;
    let mut i = points.len() - 1;
    while i > 0 && points[i - 1].median_ns_per_op < points[i].median_ns_per_op {
        run += 1;
        i -= 1;
    }
    let first = points[points.len() - run].median_ns_per_op;
    let last = points[points.len() - 1].median_ns_per_op;
    let pct = if run >= 2 && first > 0.0 {
        (last - first) / first * 100.0
    } else {
        0.0
    };
    (run, pct)
}

/// Builds the barometer from `(generation, report)` pairs, which must be
/// sorted ascending by generation. Benchmark order follows the first
/// generation each name appears in; a benchmark absent from some
/// generations simply has fewer points (absences neither extend nor
/// reset a decay run — the run is over *present* generations).
pub fn build(reports: &[(u32, BenchReport)], threshold_pct: f64) -> TrendReport {
    let mut names: Vec<String> = Vec::new();
    for (_, report) in reports {
        for entry in &report.entries {
            if !names.iter().any(|n| n == &entry.name) {
                names.push(entry.name.clone());
            }
        }
    }
    let trends = names
        .into_iter()
        .map(|name| {
            let points: Vec<TrendPoint> = reports
                .iter()
                .filter_map(|(generation, report)| {
                    report.entries.iter().find(|e| e.name == name).map(|e| TrendPoint {
                        generation: *generation,
                        median_ns_per_op: e.median_ns_per_op,
                    })
                })
                .collect();
            let (decay_run, decay_pct) = decay_suffix(&points);
            BenchTrend {
                name,
                points,
                decay_run,
                decay_pct,
                decayed: decay_run >= 3 && decay_pct > threshold_pct,
            }
        })
        .collect();
    TrendReport {
        generations: reports.iter().map(|(g, _)| *g).collect(),
        trends,
        threshold_pct,
    }
}

/// Eight-level bar sparkline of a row's medians, normalized to the row's
/// own min..max (a flat row renders as a flat mid-height line).
fn sparkline(points: &[TrendPoint]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let min = points.iter().map(|p| p.median_ns_per_op).fold(f64::INFINITY, f64::min);
    let max = points.iter().map(|p| p.median_ns_per_op).fold(0.0f64, f64::max);
    points
        .iter()
        .map(|p| {
            let level = if max > min {
                (((p.median_ns_per_op - min) / (max - min)) * 7.0).round() as usize
            } else {
                3
            };
            BARS[level.min(7)]
        })
        .collect()
}

impl TrendReport {
    /// True when any benchmark's monotone decay run trips the gate.
    pub fn has_decay(&self) -> bool {
        self.trends.iter().any(|t| t.decayed)
    }

    /// Renders the barometer as a markdown document: one table row per
    /// benchmark with its per-generation medians, a sparkline trend
    /// line, and the decay verdict.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# snapbench trend barometer\n\n");
        out.push_str(&format!(
            "{} generations loaded ({}); decay gate: monotone rise across \
             >= 3 generations totalling more than {}%.\n\n",
            self.generations.len(),
            self.generations
                .iter()
                .map(|g| format!("BENCH_{g}.json"))
                .collect::<Vec<_>>()
                .join(", "),
            self.threshold_pct
        ));
        out.push_str("| benchmark |");
        for g in &self.generations {
            out.push_str(&format!(" gen {g} |"));
        }
        out.push_str(" trend | run Δ | status |\n");
        out.push_str("|---|");
        for _ in &self.generations {
            out.push_str("---:|");
        }
        out.push_str(":---:|---:|---|\n");
        for t in &self.trends {
            out.push_str(&format!("| {} |", t.name));
            for g in &self.generations {
                match t.points.iter().find(|p| p.generation == *g) {
                    Some(p) => out.push_str(&format!(" {:.1} |", p.median_ns_per_op)),
                    None => out.push_str(" — |"),
                }
            }
            let run = if t.decay_run >= 2 {
                format!("{:+.1}% over {}", t.decay_pct, t.decay_run)
            } else {
                "steady".to_string()
            };
            out.push_str(&format!(
                " {} | {} | {} |\n",
                sparkline(&t.points),
                run,
                if t.decayed { "**DECAY**" } else { "ok" }
            ));
        }
        let decayed: Vec<&str> =
            self.trends.iter().filter(|t| t.decayed).map(|t| t.name.as_str()).collect();
        if decayed.is_empty() {
            out.push_str("\nNo monotone multi-generation decay detected.\n");
        } else {
            out.push_str(&format!(
                "\n{} benchmark(s) show monotone multi-generation decay: {}.\n",
                decayed.len(),
                decayed.join(", ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracked::{BenchEntry, BenchReport, SCHEMA};

    fn entry(name: &str, median: f64) -> BenchEntry {
        BenchEntry {
            name: name.to_string(),
            workload: "mixed".to_string(),
            construction: "unbounded".to_string(),
            threads: 2,
            iters_per_thread: 100,
            samples: 3,
            warmup: 1,
            total_ops: 200,
            median_ns_per_op: median,
            min_ns_per_op: median * 0.9,
            max_ns_per_op: median * 1.1,
        }
    }

    fn gens(series: &[(u32, &[(&str, f64)])]) -> Vec<(u32, BenchReport)> {
        series
            .iter()
            .map(|(g, entries)| {
                (
                    *g,
                    BenchReport {
                        schema: SCHEMA.to_string(),
                        entries: entries.iter().map(|(n, m)| entry(n, *m)).collect(),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn generation_parsing_accepts_only_bench_n_json() {
        assert_eq!(generation_of("BENCH_6.json"), Some(6));
        assert_eq!(generation_of("BENCH_12.json"), Some(12));
        assert_eq!(generation_of("BENCH_.json"), None);
        assert_eq!(generation_of("BENCH_6.json.bak"), None);
        assert_eq!(generation_of("bench_6.json"), None);
        assert_eq!(generation_of("BENCH_x.json"), None);
    }

    #[test]
    fn monotone_three_generation_rise_past_threshold_decays() {
        let reports = gens(&[
            (3, &[("a", 100.0)]),
            (4, &[("a", 120.0)]),
            (5, &[("a", 150.0)]),
        ]);
        let report = build(&reports, 25.0);
        assert_eq!(report.trends[0].decay_run, 3);
        assert!((report.trends[0].decay_pct - 50.0).abs() < 1e-9);
        assert!(report.has_decay());
    }

    #[test]
    fn rise_below_threshold_or_too_short_does_not_decay() {
        // Three rising generations but only +10% total: under the gate.
        let small = build(
            &gens(&[(3, &[("a", 100.0)]), (4, &[("a", 105.0)]), (5, &[("a", 110.0)])]),
            25.0,
        );
        assert!(!small.has_decay());

        // A large rise but only two generations deep: one regression is
        // --compare's job, not the barometer's.
        let short = build(&gens(&[(5, &[("a", 100.0)]), (6, &[("a", 200.0)])]), 25.0);
        assert_eq!(short.trends[0].decay_run, 2);
        assert!(!short.has_decay());
    }

    #[test]
    fn a_dip_resets_the_decay_run() {
        // 100 → 160 → 140 → 190: the gen-5 dip breaks monotonicity, so
        // the run is only the 140→190 tail.
        let report = build(
            &gens(&[
                (3, &[("a", 100.0)]),
                (4, &[("a", 160.0)]),
                (5, &[("a", 140.0)]),
                (6, &[("a", 190.0)]),
            ]),
            25.0,
        );
        assert_eq!(report.trends[0].decay_run, 2);
        assert!(!report.has_decay());
    }

    #[test]
    fn absent_generations_leave_gaps_without_resetting_runs() {
        // "b" only exists from gen 4 on; its three present points rise
        // monotonically past the gate.
        let reports = gens(&[
            (3, &[("a", 50.0)]),
            (4, &[("a", 50.0), ("b", 100.0)]),
            (5, &[("a", 50.0), ("b", 140.0)]),
            (6, &[("a", 50.0), ("b", 200.0)]),
        ]);
        let report = build(&reports, 25.0);
        let b = report.trends.iter().find(|t| t.name == "b").unwrap();
        assert_eq!(b.points.len(), 3);
        assert!(b.decayed);
        let md = report.render_markdown();
        assert!(md.contains("| b |"));
        assert!(md.contains(" — |"), "gen-3 gap renders as a dash");
        assert!(md.contains("**DECAY**"));
    }

    #[test]
    fn markdown_lists_every_generation_and_names_decayed_rows() {
        let report = build(
            &gens(&[
                (3, &[("a", 100.0)]),
                (4, &[("a", 130.0)]),
                (5, &[("a", 170.0)]),
            ]),
            25.0,
        );
        let md = report.render_markdown();
        assert!(md.contains("BENCH_3.json, BENCH_4.json, BENCH_5.json"));
        assert!(md.contains("gen 3 |"));
        assert!(md.contains("decay: a."));

        let steady = build(&gens(&[(3, &[("a", 100.0)]), (4, &[("a", 100.0)])]), 25.0);
        assert!(steady.render_markdown().contains("No monotone multi-generation decay"));
    }
}
