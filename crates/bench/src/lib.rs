//! Benchmark and experiment harness for the atomic-snapshot reproduction.
//!
//! The paper (PODC 1990) is a theory paper: its "evaluation" is a set of
//! quantitative claims — wait-freedom pigeonhole bounds, `O(n²)` step
//! complexity, and the Section 6 comparison against Anderson's
//! constructions. This crate regenerates each claim as a measured
//! experiment (see `EXPERIMENTS.md` at the workspace root for the index):
//!
//! * [`harness`] — scripted workload drivers that run any of the snapshot
//!   constructions under the deterministic simulator or on real threads,
//!   recording full histories for the linearizability checkers;
//! * [`anderson_model`] — operation-count cost models of Anderson's
//!   composite-register constructions (the paper's Section 6 comparison
//!   baseline);
//! * [`report`] — plain-text table rendering for the `experiments` binary;
//! * [`tracked`] — the `snapbench` JSON report format (schema
//!   `snapbench/v1`) and its regression comparator;
//! * [`trend`] — the multi-generation trend barometer over every
//!   committed `BENCH_*.json` (`snapbench trend`);
//! * `benches/` — criterion micro-benchmarks of scan/update latency and
//!   contention behavior;
//! * `src/bin/experiments.rs` — the table generator
//!   (`cargo run -p snapshot-bench --release --bin experiments -- all`);
//! * `src/bin/snapbench.rs` — the tracked wall-clock suite behind the
//!   committed `BENCH_*.json` baselines.

#![warn(missing_docs)]

pub mod anderson_model;
pub mod harness;
pub mod report;
pub mod tracked;
pub mod trend;
