//! Property tests for the ABD register emulation: sequential semantics
//! against a last-write model, invariance under minority crash/restart
//! churn, and quorum arithmetic.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use snapshot_abd::{
    AbdBackend, AbdRegister, FaultPlan, LinkFault, Network, NetworkConfig, RetryPolicy,
};
use snapshot_registers::{Backend, ProcessId, Register};

#[derive(Clone, Debug)]
enum Op {
    Write {
        pid: usize,
        value: u64,
    },
    Read {
        pid: usize,
    },
    /// Crash replica `index % replicas` if doing so keeps a majority.
    Crash {
        index: usize,
    },
    /// Restart replica `index % replicas`.
    Restart {
        index: usize,
    },
}

fn ops(len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..4usize, any::<u64>()).prop_map(|(pid, value)| Op::Write { pid, value }),
            (0..4usize).prop_map(|pid| Op::Read { pid }),
            (0..8usize).prop_map(|index| Op::Crash { index }),
            (0..8usize).prop_map(|index| Op::Restart { index }),
        ],
        0..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sequential_semantics_survive_crash_restart_churn(
        replicas in prop::sample::select(vec![3usize, 5]),
        init in any::<u64>(),
        script in ops(24),
    ) {
        let network = Arc::new(Network::new(replicas));
        let backend = AbdBackend::new(&network);
        let reg = backend.cell(init);
        let mut model = init;
        let mut crashed = vec![false; replicas];
        let tolerance = network.fault_tolerance();

        for op in script {
            match op {
                Op::Write { pid, value } => {
                    reg.write(ProcessId::new(pid), value);
                    model = value;
                }
                Op::Read { pid } => {
                    prop_assert_eq!(reg.read(ProcessId::new(pid)), model);
                }
                Op::Crash { index } => {
                    let i = index % replicas;
                    let down = crashed.iter().filter(|&&c| c).count();
                    if !crashed[i] && down < tolerance {
                        network.crash(i);
                        crashed[i] = true;
                    }
                }
                Op::Restart { index } => {
                    let i = index % replicas;
                    if crashed[i] {
                        network.restart(i);
                        crashed[i] = false;
                    }
                }
            }
        }
    }

    #[test]
    fn independent_registers_do_not_interfere(
        writes in prop::collection::vec((0..3usize, any::<u64>()), 1..16)
    ) {
        let network = Arc::new(Network::with_config(NetworkConfig::new(3).with_jitter(1)));
        let backend = AbdBackend::new(&network);
        let regs: Vec<_> = (0..3).map(|i| backend.cell(i as u64)).collect();
        let mut model = [0u64, 1, 2];
        let p = ProcessId::new(0);
        for (which, value) in writes {
            regs[which].write(p, value);
            model[which] = value;
            for (i, r) in regs.iter().enumerate() {
                prop_assert_eq!(r.read(p), model[i]);
            }
        }
    }

    #[test]
    fn quorum_is_a_strict_majority(replicas in 1usize..12) {
        let network = Network::new(replicas);
        prop_assert!(2 * network.quorum() > replicas);
        prop_assert!(2 * (network.quorum() - 1) <= replicas);
        prop_assert_eq!(network.fault_tolerance(), replicas - network.quorum());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sequential semantics are *fault-oblivious*: under any seeded mix of
    /// message drops, duplicates and reordering (majority still reachable),
    /// retransmission plus replica-side dedup must make every operation
    /// complete with exactly the last-write model's answer.
    #[test]
    fn sequential_semantics_survive_a_lossy_network(
        seed in any::<u64>(),
        drop in 0.0f64..0.35,
        duplicate in 0.0f64..0.3,
        reorder in 0.0f64..0.3,
        script in prop::collection::vec((0..4usize, any::<u64>()), 1..12),
    ) {
        let fault = LinkFault::healthy()
            .with_drop(drop)
            .with_duplicate(duplicate)
            .with_reorder(reorder, 3)
            .with_reply_drop(drop / 2.0);
        let network = Arc::new(Network::with_config(
            NetworkConfig::new(3)
                .with_jitter(seed)
                .with_faults(FaultPlan::seeded(seed).with_default(fault))
                .with_retry(RetryPolicy {
                    initial_backoff: Duration::from_micros(300),
                    max_backoff: Duration::from_millis(5),
                    multiplier: 2,
                    jitter: 0.5,
                }),
        ));
        let reg = AbdRegister::new(Arc::clone(&network), 0u64);
        let mut model = 0u64;
        for (pid, value) in script {
            let p = ProcessId::new(pid);
            reg.try_write(p, value).expect("majority reachable: write completes");
            model = value;
            let got = reg.try_read(p).expect("majority reachable: read completes");
            prop_assert_eq!(got, model);
        }
        prop_assert!(!network.poisoned());
    }
}
