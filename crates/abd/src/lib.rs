//! ABD register emulation over a simulated asynchronous message-passing
//! network.
//!
//! Section 6 of the paper observes: *"By applying the emulators of \[ABD\]
//! to the constructions presented in this paper, implementations of atomic
//! snapshot memory are obtained in message-passing systems. Snapshots
//! obtained this way are true instantaneous images of the global state. In
//! addition, these implementations are resilient to process and link
//! failures, as long as a majority of the system remains connected."*
//!
//! This crate builds that stack:
//!
//! * [`Network`] — a simulated asynchronous message-passing system:
//!   replica server threads with unbounded FIFO channels, optional random
//!   processing jitter, and crash injection;
//! * [`AbdRegister`] — the Attiya–Bar-Noy–Dolev emulation of a
//!   multi-writer atomic register over the replicas: two-phase writes
//!   (query the majority for the max tag, then store a higher tag) and
//!   two-phase reads (query, then write back the maximum before
//!   returning, preventing new/old inversion);
//! * [`AbdBackend`] — plugs the emulated registers into the snapshot
//!   constructions' [`Backend`] interface, so **the very same snapshot
//!   code** that runs on shared memory runs message-passing, and keeps
//!   working while any minority of replicas is crashed.
//!
//! [`Backend`]: snapshot_registers::Backend
//!
//! Liveness requires a live majority: an operation issued while more than
//! `⌈r/2⌉ - 1` replicas are crashed blocks until replicas recover (tests
//! use [`Network::restart`]) — exactly the resilience boundary the paper
//! states.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use snapshot_abd::{AbdBackend, Network};
//! use snapshot_registers::{Backend, ProcessId, Register};
//!
//! let network = Arc::new(Network::new(3)); // 3 replicas: tolerates 1 crash
//! let backend = AbdBackend::new(&network);
//! let reg = backend.cell(0u32);
//!
//! network.crash(2); // a minority crash
//! reg.write(ProcessId::new(0), 7);
//! assert_eq!(reg.read(ProcessId::new(1)), 7);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod message;
mod network;
mod register;

pub use backend::AbdBackend;
pub use message::{RegisterId, Tag};
pub use network::{Network, NetworkConfig};
pub use register::AbdRegister;
