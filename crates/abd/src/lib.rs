//! ABD register emulation over a simulated asynchronous message-passing
//! network, with seeded fault injection and a gracefully degrading client.
//!
//! Section 6 of the paper observes: *"By applying the emulators of \[ABD\]
//! to the constructions presented in this paper, implementations of atomic
//! snapshot memory are obtained in message-passing systems. Snapshots
//! obtained this way are true instantaneous images of the global state. In
//! addition, these implementations are resilient to process and link
//! failures, as long as a majority of the system remains connected."*
//!
//! This crate builds that stack — and then attacks it:
//!
//! * [`Network`] — a simulated asynchronous message-passing system:
//!   replica server threads behind per-link fault injectors, with crash
//!   injection, runtime partitions and fault/retry counters;
//! * [`FaultPlan`] / [`LinkFault`] — a seeded, reproducible fault plan:
//!   per-link drop/duplicate/reorder/delay probabilities and reply loss,
//!   all drawn from one `StdRng` seed;
//! * [`Nemesis`] — a driver that walks a schedule of fault phases
//!   (heal → partition a minority → flap a replica → heal) over
//!   wall-clock or message-count triggers while a workload runs;
//! * [`AbdRegister`] — the Attiya–Bar-Noy–Dolev emulation of a
//!   multi-writer atomic register over the replicas: two-phase writes
//!   (query the majority for the max tag, then store a higher tag) and
//!   two-phase reads (query, then write back the maximum before
//!   returning, preventing new/old inversion). Each phase retransmits to
//!   silent replicas under capped exponential backoff ([`RetryPolicy`]),
//!   replicas dedupe retries by request id, and liveness failures surface
//!   as typed [`AbdError`]s via [`AbdRegister::try_read`] /
//!   [`AbdRegister::try_write`] instead of panics;
//! * [`AbdBackend`] — plugs the emulated registers into the snapshot
//!   constructions' [`Backend`] interface, so **the very same snapshot
//!   code** that runs on shared memory runs message-passing, and keeps
//!   working while any minority of replicas is crashed, partitioned, or
//!   behind a lossy link;
//! * [`AbdSnapshotCore`] — the unbounded single-writer construction
//!   (Figure 2) run *fallibly* over `AbdRegister` lanes through
//!   `snapshot-core`'s `TrySnapshotCore` interface: where the infallible
//!   backend panics past the liveness boundary, this surfaces typed
//!   `CoreError`s the `snapshot-service` front-end retries, sheds, or
//!   fans out to a coalescing cohort;
//! * [`Transport`] — the seam between the quorum engine and its medium.
//!   The simulated [`Network`] is one implementation; [`RemoteTransport`]
//!   carries the exact same protocol over TCP or Unix-domain sockets to
//!   `snapshotd` replica processes (the `snapshot-wire` crate), so the
//!   very same client stack — retries, breakers, deadlines, spans — runs
//!   distributed for real ([`AbdSnapshotCore::remote`]).
//!
//! [`Backend`]: snapshot_registers::Backend
//!
//! # Fault model & degradation
//!
//! Safety (linearizability) holds under **any** mix of message loss,
//! duplication, bounded reordering, delay, replica crash/restart and
//! partition — the protocol never relies on the network being nice, only
//! on majorities intersecting. Liveness requires a live, reachable
//! majority: an operation issued while more than `⌈r/2⌉ - 1` replicas are
//! crashed or partitioned away retries until the configured
//! [`op_timeout`](NetworkConfig::with_op_timeout), then returns
//! [`AbdError::QuorumUnavailable`] — not a panic, not a hang — and can be
//! retried after the network heals (tests use [`Network::restart`] /
//! [`Network::heal`]). That is exactly the resilience boundary the paper
//! states.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use snapshot_abd::{AbdBackend, FaultPlan, LinkFault, Network, NetworkConfig};
//! use snapshot_registers::{Backend, ProcessId, Register};
//!
//! // 3 replicas behind seeded lossy links: tolerates 1 crash, and the
//! // client's retransmissions mask the drops.
//! let network = Arc::new(Network::with_config(
//!     NetworkConfig::new(3)
//!         .with_faults(FaultPlan::seeded(7).with_default(LinkFault::healthy().with_drop(0.2))),
//! ));
//! let backend = AbdBackend::new(&network);
//! let reg = backend.cell(0u32);
//!
//! network.crash(2); // a minority crash, on top of the lossy links
//! for k in 1..=10u32 {
//!     reg.write(ProcessId::new(0), k);
//!     assert_eq!(reg.read(ProcessId::new(1)), k);
//! }
//! assert!(network.stats().messages_dropped > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod error;
mod fault;
mod message;
mod network;
mod register;
mod remote;
mod snapshot_core;
mod stats;
mod transport;

pub use backend::AbdBackend;
pub use snapshot_core::AbdSnapshotCore;
pub use error::{AbdError, AbdPhase};
pub use fault::{Dwell, FaultPlan, LinkFault, Nemesis, NemesisEvent, NemesisPhase};
pub use message::{ErasedValue, RegisterId, RequestId, Tag};
pub use network::{Network, NetworkConfig, RetryPolicy};
pub use register::AbdRegister;
pub use remote::{RemoteConfig, RemoteTransport};
pub use stats::{LatencySnapshot, NetworkStats};
pub use transport::{Payload, Phase, PhaseRequest, Reply, ReplyBody, Transport};
