use std::fmt;
use std::time::Duration;

use crate::RegisterId;

/// Which quorum phase of an ABD operation failed.
///
/// Both reads and writes run a query phase followed by a store phase
/// (reads write back the maximum they saw), so either phase of either
/// operation can be the one that exhausts its timeout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbdPhase {
    /// Phase 1: collecting `(tag, value)` replies from a majority.
    Query,
    /// Phase 2: collecting store acknowledgements from a majority.
    Store,
}

impl fmt::Display for AbdPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbdPhase::Query => f.write_str("query"),
            AbdPhase::Store => f.write_str("store"),
        }
    }
}

/// Typed failure of an ABD register operation.
///
/// ABD is safe under any message loss, duplication, reordering or replica
/// crash pattern — but it is *live* only while a majority of replicas is
/// reachable (the paper's exact resilience boundary). When liveness is
/// lost, [`AbdRegister::try_read`]/[`AbdRegister::try_write`] surface this
/// error instead of panicking or hanging forever; the operation may be
/// retried once the partition heals or replicas restart.
///
/// [`AbdRegister::try_read`]: crate::AbdRegister::try_read
/// [`AbdRegister::try_write`]: crate::AbdRegister::try_write
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbdError {
    /// A quorum phase timed out before a majority of replicas answered.
    ///
    /// The operation is *indeterminate*: a write may or may not have taken
    /// effect at the replicas it did reach (linearizability checkers must
    /// treat it as pending). It had **no effect** only if `acks == 0` in
    /// the `Query` phase.
    QuorumUnavailable {
        /// The phase that starved.
        phase: AbdPhase,
        /// Distinct replicas that answered before the timeout.
        acks: usize,
        /// Majority size that was required.
        needed: usize,
        /// Wall-clock time spent waiting (≥ the configured
        /// [`op_timeout`](crate::NetworkConfig::op_timeout)).
        elapsed: Duration,
    },
    /// A replica returned a value of a different type than this register's.
    ///
    /// Registers of all value types share one replica fleet, keyed by
    /// [`RegisterId`]; this error means two `AbdRegister` handles of
    /// different types were constructed with the same id (a bug in the
    /// embedding, not a network fault).
    ValueTypeMismatch {
        /// The register whose value failed to downcast.
        register: RegisterId,
    },
    /// A replica's reply carried bytes this register's wire codec could
    /// not decode.
    ///
    /// Like [`ValueTypeMismatch`](AbdError::ValueTypeMismatch) this is a
    /// deployment bug (two clients addressing one register with different
    /// codecs, or a version skew across the cluster), not a network
    /// fault — retries read the same bytes and fail the same way.
    DecodeFailed {
        /// The register whose value failed to decode.
        register: RegisterId,
        /// The codec's typed decode error, rendered.
        detail: String,
    },
    /// The replica fleet is poisoned: a replica thread panicked, or the
    /// network was explicitly [`poison`](crate::Network::poison)ed.
    ///
    /// Unlike [`QuorumUnavailable`](AbdError::QuorumUnavailable) this is
    /// terminal — retries cannot succeed, so every operation on a poisoned
    /// network fails fast (no retransmission burn, no timeout wait).
    NetworkPoisoned,
}

impl fmt::Display for AbdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbdError::QuorumUnavailable {
                phase,
                acks,
                needed,
                elapsed,
            } => write!(
                f,
                "no majority: {phase} phase got {acks}/{needed} replica acks in {elapsed:?} \
                 (more than a minority crashed or partitioned away?)"
            ),
            AbdError::ValueTypeMismatch { register } => write!(
                f,
                "replica returned a value of the wrong type for register {register:?}"
            ),
            AbdError::DecodeFailed { register, detail } => write!(
                f,
                "replica returned undecodable bytes for register {register:?}: {detail}"
            ),
            AbdError::NetworkPoisoned => f.write_str(
                "replica fleet poisoned (a replica thread panicked or the network was \
                 marked failed); operations cannot succeed and fail fast",
            ),
        }
    }
}

impl std::error::Error for AbdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_phase_and_counts() {
        let e = AbdError::QuorumUnavailable {
            phase: AbdPhase::Query,
            acks: 1,
            needed: 3,
            elapsed: Duration::from_millis(250),
        };
        let s = e.to_string();
        assert!(s.contains("query"), "{s}");
        assert!(s.contains("1/3"), "{s}");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(AbdError::ValueTypeMismatch {
            register: RegisterId(3),
        });
    }
}
