//! The real transport: the ABD quorum engine over TCP or Unix-domain
//! sockets, against `snapshotd` replica processes.
//!
//! [`RemoteTransport`] is the wire twin of the simulated
//! [`Network`](crate::Network): it implements the same [`Transport`]
//! seam, reports under the same `abd.*` metric keys (plus `abd.wire.*`
//! connection counters and the `abd.transport.<kind>` gauge) and feeds
//! the same trace events, so the full client stack — registers, snapshot
//! cores, the service front-end with its breakers and deadlines — runs
//! unchanged over real sockets.
//!
//! # Connection management
//!
//! One manager thread per replica owns that replica's connection for the
//! transport's lifetime:
//!
//! * **dial → handshake** — open the socket, send
//!   [`Frame::Hello`], await [`Frame::HelloAck`] under a short read
//!   timeout, check the protocol version;
//! * **connected** — a reader thread demultiplexes reply frames to the
//!   waiting phases by request id while the manager drains the outbound
//!   queue onto the socket;
//! * **disconnected** — the connection is torn down, frames queued while
//!   down are *dropped* (counted as `abd.messages_dropped` — exactly the
//!   lossy-link accounting of the simulated network; the engine's
//!   retransmissions mask the loss), and the manager redials under capped
//!   exponential backoff.
//!
//! Because `snapshotd` dedupes stores per connection by request id and
//! re-answers every query delivery, the engine's retransmissions are as
//! idempotent here as on the simulated network. Liveness needs a majority
//! of replicas reachable; a phase issued while more are down fails with
//! [`AbdError::QuorumUnavailable`](crate::AbdError::QuorumUnavailable)
//! after the operation timeout, and succeeds again once the fleet heals —
//! the paper's Section 6 resilience boundary, now with real faults.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use snapshot_obs::{Counter, Event, Registry, Trace};
use snapshot_wire::{
    read_frame, write_frame, Endpoint, Frame, FrameIoError, FrameRead, WireStream, WireTag,
    DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};

use crate::message::{RegisterId, RequestId, Tag};
use crate::network::RetryPolicy;
use crate::stats::{Counters, LatencySnapshot, NetworkStats};
use crate::transport::{Payload, Phase, PhaseRequest, Reply, ReplyBody, Transport};

/// How long the handshake may wait for the replica's `HelloAck`.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(2);

/// How often the outbound writer wakes to notice a dead reader.
const WRITER_POLL: Duration = Duration::from_millis(20);

/// Configuration of a [`RemoteTransport`].
#[derive(Clone, Debug)]
pub struct RemoteConfig {
    /// The replica endpoints, in cluster order (quorum math is
    /// positional: endpoint `i` is replica `i`).
    pub endpoints: Vec<Endpoint>,
    /// How long a quorum phase may wait (across all its retries) before
    /// concluding the majority is unreachable.
    pub op_timeout: Duration,
    /// Retransmission backoff policy for quorum phases.
    pub retry: RetryPolicy,
    /// First redial backoff after a connection drops.
    pub redial_initial: Duration,
    /// Redial backoff cap.
    pub redial_max: Duration,
    /// Largest frame accepted from a replica (and sent to one).
    pub max_frame: u32,
    /// Metrics registry for the `abd.*` and `abd.wire.*` metrics. `None`
    /// gives the transport a private registry.
    pub registry: Option<Arc<Registry>>,
    /// Trace receiving quorum-phase and connection lifecycle events.
    pub trace: Trace,
    /// Client identity sent in the handshake (diagnostics only).
    pub client: u32,
}

impl RemoteConfig {
    /// A configuration for `endpoints` with a 10-second operation
    /// timeout, default retransmission policy, and 50ms→2s redial
    /// backoff.
    pub fn new(endpoints: Vec<Endpoint>) -> Self {
        RemoteConfig {
            endpoints,
            op_timeout: Duration::from_secs(10),
            retry: RetryPolicy::default(),
            redial_initial: Duration::from_millis(50),
            redial_max: Duration::from_secs(2),
            max_frame: DEFAULT_MAX_FRAME,
            registry: None,
            trace: Trace::disabled(),
            client: std::process::id(),
        }
    }

    /// Parses `tcp:HOST:PORT` / `uds:PATH` address strings into a
    /// configuration (the format of [`Endpoint::parse`]).
    pub fn parse<S: AsRef<str>>(addrs: &[S]) -> Result<Self, String> {
        let endpoints = addrs
            .iter()
            .map(|a| Endpoint::parse(a.as_ref()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::new(endpoints))
    }

    /// Sets the per-operation quorum timeout.
    pub fn with_op_timeout(mut self, timeout: Duration) -> Self {
        self.op_timeout = timeout;
        self
    }

    /// Sets the retransmission backoff policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the redial backoff range.
    pub fn with_redial(mut self, initial: Duration, max: Duration) -> Self {
        self.redial_initial = initial;
        self.redial_max = max;
        self
    }

    /// Sets the maximum accepted frame size.
    pub fn with_max_frame(mut self, max: u32) -> Self {
        self.max_frame = max;
        self
    }

    /// Registers the transport's counters on a shared metrics registry.
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Attaches a trace for quorum-phase and connection events.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the client identity sent in the handshake.
    pub fn with_client(mut self, client: u32) -> Self {
        self.client = client;
        self
    }
}

/// Wire-specific connection counters, registered under `abd.wire.*`.
#[derive(Clone)]
struct WireCounters {
    dials: Counter,
    connects: Counter,
    disconnects: Counter,
    frames_in: Counter,
    protocol_errors: Counter,
    oversize_dropped: Counter,
    handshake_failures: Counter,
}

impl WireCounters {
    fn new(registry: &Registry) -> Self {
        WireCounters {
            dials: registry.counter("abd.wire.dials"),
            connects: registry.counter("abd.wire.connects"),
            disconnects: registry.counter("abd.wire.disconnects"),
            frames_in: registry.counter("abd.wire.frames_in"),
            protocol_errors: registry.counter("abd.wire.protocol_errors"),
            oversize_dropped: registry.counter("abd.wire.oversize_dropped"),
            handshake_failures: registry.counter("abd.wire.handshake_failures"),
        }
    }
}

/// State shared between the transport, one replica's manager thread, and
/// that connection's reader thread.
struct ConnShared {
    replica: usize,
    endpoint: Endpoint,
    connected: AtomicBool,
    pending: Arc<Mutex<HashMap<u64, Sender<Reply>>>>,
    counters: Arc<Counters>,
    wire: WireCounters,
    trace: Trace,
    max_frame: u32,
    client: u32,
    redial_initial: Duration,
    redial_max: Duration,
}

impl ConnShared {
    /// Routes a decoded reply frame to the phase waiting on its request
    /// id (a phase that already finished simply no longer has a route —
    /// late and duplicate replies are discarded here).
    fn route(&self, frame: Frame) {
        self.wire.frames_in.inc();
        let (id, body) = match frame {
            Frame::QueryReply { id, tag, value } => (
                id,
                ReplyBody::Value {
                    tag: Tag {
                        seq: tag.seq,
                        writer: tag.writer as usize,
                    },
                    payload: value.map(|v| Payload::Bytes(Arc::from(v.into_boxed_slice()))),
                },
            ),
            Frame::StoreAck { id } => (id, ReplyBody::Ack),
            Frame::Error { id, code, detail } if id != 0 => (
                id,
                ReplyBody::Error {
                    detail: format!("{code}: {detail}"),
                },
            ),
            // An Error with id 0 (the request's id was unreadable), or a
            // request-direction frame arriving at a client: a protocol
            // anomaly, counted but not fatal to other in-flight phases.
            _ => {
                self.wire.protocol_errors.inc();
                return;
            }
        };
        let route = self.pending.lock().expect("pending route map").get(&id).cloned();
        if let Some(tx) = route {
            let _ = tx.send(Reply {
                from: self.replica,
                body,
            });
        }
    }
}

/// A message to one replica's connection manager.
enum OutMsg {
    /// An encoded frame to put on the wire (shared by every replica the
    /// phase broadcasts to — encoded once, cloned by reference).
    Frame(Arc<[u8]>),
    /// Tear the connection down and exit the manager thread.
    Shutdown,
}

/// One replica's connection handle, owned by the transport.
struct ReplicaConn {
    out: Sender<OutMsg>,
    shared: Arc<ConnShared>,
    manager: Option<JoinHandle<()>>,
}

/// Why one dial-and-handshake attempt failed. The distinction matters
/// for redial accounting: a refused/absent socket is plain
/// unavailability (the replica is down — expected under crash faults),
/// while a connection that opened but failed the handshake points at
/// protocol trouble or a hostile middlebox and is counted separately
/// under `abd.wire.handshake_failures`.
#[derive(Debug)]
enum ConnectError {
    /// The socket never opened.
    Dial(String),
    /// The socket opened but the `Hello`/`HelloAck` exchange failed
    /// (timeout, damaged bytes, version mismatch, typed refusal).
    Handshake(String),
}

/// Dials and handshakes one connection; returns the stream ready for
/// full-duplex traffic.
fn connect(shared: &ConnShared) -> Result<WireStream, ConnectError> {
    let mut stream = shared
        .endpoint
        .dial()
        .map_err(|e| ConnectError::Dial(format!("dial {}: {e}", shared.endpoint)))?;
    let hs = |detail: String| ConnectError::Handshake(detail);
    stream
        .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
        .map_err(|e| hs(format!("handshake timeout setup: {e}")))?;
    let hello = Frame::Hello {
        version: PROTOCOL_VERSION,
        client: shared.client,
    }
    .encode();
    write_frame(&mut stream, &hello, shared.max_frame).map_err(|e| hs(format!("hello: {e}")))?;
    let ack = match read_frame(&mut stream, shared.max_frame) {
        Ok(FrameRead::Frame(body)) => {
            Frame::decode(&body).map_err(|e| hs(format!("handshake decode: {e}")))?
        }
        Ok(FrameRead::Eof) => return Err(hs("replica closed during handshake".into())),
        Err(e) => return Err(hs(format!("handshake read: {e}"))),
    };
    match ack {
        Frame::HelloAck { version, .. } if version == PROTOCOL_VERSION => {}
        Frame::HelloAck { version, .. } => {
            return Err(hs(format!(
                "replica speaks protocol v{version}, client v{PROTOCOL_VERSION}"
            )))
        }
        Frame::Error { code, detail, .. } => {
            return Err(hs(format!("replica refused: {code}: {detail}")))
        }
        other => return Err(hs(format!("unexpected handshake reply: {}", other.kind_name()))),
    }
    stream
        .set_read_timeout(None)
        .map_err(|e| hs(format!("handshake timeout clear: {e}")))?;
    Ok(stream)
}

/// The reader half of one connection: demultiplexes reply frames to the
/// waiting phases until the stream dies, then flags the connection down
/// so the writer tears it down and redials.
fn reader_loop(mut stream: WireStream, shared: &ConnShared) {
    loop {
        match read_frame(&mut stream, shared.max_frame) {
            Ok(FrameRead::Frame(body)) => match Frame::decode(&body) {
                Ok(frame) => shared.route(frame),
                Err(_) => {
                    // An undecodable frame means the stream is desynced;
                    // nothing after it can be trusted. Reconnect.
                    shared.wire.protocol_errors.inc();
                    break;
                }
            },
            Ok(FrameRead::Eof) | Err(FrameIoError::Io(_)) => break,
            Err(FrameIoError::Corrupt { .. } | FrameIoError::TooLarge { .. }) => {
                // The framing itself lied — damaged or hostile bytes.
                // Same desync rule as an undecodable body: reconnect.
                shared.wire.protocol_errors.inc();
                break;
            }
        }
    }
    shared.connected.store(false, Ordering::Release);
    stream.shutdown();
}

/// The manager thread for one replica: dial → handshake → pump the
/// outbound queue, and on any failure redial under capped backoff,
/// dropping (and counting) frames queued while down.
fn manager_loop(out: Receiver<OutMsg>, shared: Arc<ConnShared>) {
    let mut attempt: u32 = 0;
    let mut backoff = shared.redial_initial;
    loop {
        attempt += 1;
        shared.wire.dials.inc();
        shared.trace.emit(
            shared.replica,
            Event::TransportDial {
                replica: shared.replica,
                attempt,
            },
        );
        let stream = match connect(&shared) {
            Ok(stream) => stream,
            Err(error) => {
                if matches!(error, ConnectError::Handshake(_)) {
                    shared.wire.handshake_failures.inc();
                }
                // Failed dial: drop (and count) anything queued while we
                // sit out the backoff — the engine retransmits.
                let until = Instant::now() + backoff;
                loop {
                    let now = Instant::now();
                    if now >= until {
                        break;
                    }
                    match out.recv_timeout(until - now) {
                        Ok(OutMsg::Frame(_)) => shared.counters.messages_dropped.inc(),
                        Ok(OutMsg::Shutdown) | Err(RecvTimeoutError::Disconnected) => return,
                        Err(RecvTimeoutError::Timeout) => break,
                    }
                }
                backoff = (backoff * 2).min(shared.redial_max);
                continue;
            }
        };
        let reader_stream = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => {
                stream.shutdown();
                backoff = (backoff * 2).min(shared.redial_max);
                continue;
            }
        };
        shared.connected.store(true, Ordering::Release);
        shared.wire.connects.inc();
        shared.trace.emit(
            shared.replica,
            Event::TransportConnected {
                replica: shared.replica,
                attempt,
            },
        );
        attempt = 0;
        backoff = shared.redial_initial;
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("abd-wire-reader-{}", shared.replica))
                .spawn(move || reader_loop(reader_stream, &shared))
                .expect("spawning wire reader thread")
        };
        // The writer: drain the outbound queue onto the socket, waking
        // periodically to notice a reader that died with nothing to send.
        let mut stream = stream;
        let shutting_down = loop {
            match out.recv_timeout(WRITER_POLL) {
                Ok(OutMsg::Frame(bytes)) => match write_frame(&mut stream, &bytes, shared.max_frame)
                {
                    Ok(()) => {}
                    Err(FrameIoError::TooLarge { .. }) => {
                        // Refused locally, before touching the stream:
                        // the connection is healthy. Drop (and count)
                        // the frame instead of tearing everything down.
                        shared.counters.messages_dropped.inc();
                        shared.wire.oversize_dropped.inc();
                    }
                    // Corrupt is read-side only, but if it ever surfaced
                    // here the stream would be equally unusable.
                    Err(FrameIoError::Io(_) | FrameIoError::Corrupt { .. }) => {
                        shared.counters.messages_dropped.inc();
                        break false;
                    }
                },
                Ok(OutMsg::Shutdown) | Err(RecvTimeoutError::Disconnected) => break true,
                Err(RecvTimeoutError::Timeout) => {
                    if !shared.connected.load(Ordering::Acquire) {
                        break false;
                    }
                }
            }
        };
        shared.connected.store(false, Ordering::Release);
        stream.shutdown();
        let _ = reader.join();
        if shutting_down {
            return;
        }
        shared.wire.disconnects.inc();
        shared.trace.emit(
            shared.replica,
            Event::TransportDropped {
                replica: shared.replica,
            },
        );
    }
}

/// The ABD transport over real sockets: one persistent, self-healing
/// connection per `snapshotd` replica. See the [module docs](self).
pub struct RemoteTransport {
    conns: Vec<ReplicaConn>,
    kind: &'static str,
    max_frame: u32,
    op_timeout: Duration,
    retry: RetryPolicy,
    registry: Arc<Registry>,
    trace: Trace,
    counters: Arc<Counters>,
    pending: Arc<Mutex<HashMap<u64, Sender<Reply>>>>,
    next_register: AtomicU64,
    next_request: AtomicU64,
}

impl RemoteTransport {
    /// Spawns the connection managers and returns immediately; dialing
    /// proceeds in the background (use [`wait_connected`] to await a
    /// quorum before issuing traffic, or just issue it — the engine's
    /// retries absorb the connection ramp).
    ///
    /// [`wait_connected`]: RemoteTransport::wait_connected
    ///
    /// # Panics
    ///
    /// Panics if `config.endpoints` is empty.
    pub fn connect(config: RemoteConfig) -> Self {
        assert!(
            !config.endpoints.is_empty(),
            "a remote transport needs at least one replica endpoint"
        );
        let kind = {
            let mut kinds = config.endpoints.iter().map(|e| e.kind());
            let first = kinds.next().expect("non-empty endpoints");
            if kinds.all(|k| k == first) {
                first
            } else {
                "mixed"
            }
        };
        let registry = config.registry.unwrap_or_default();
        // Same name-keyed marker convention as the simulated network:
        // one `abd.transport.<kind>` gauge per transport kind in play.
        registry.gauge(&format!("abd.transport.{kind}")).set(1);
        let counters = Arc::new(Counters::new(&registry));
        let wire = WireCounters::new(&registry);
        let pending: Arc<Mutex<HashMap<u64, Sender<Reply>>>> = Arc::default();
        let conns = config
            .endpoints
            .iter()
            .enumerate()
            .map(|(i, endpoint)| {
                let shared = Arc::new(ConnShared {
                    replica: i,
                    endpoint: endpoint.clone(),
                    connected: AtomicBool::new(false),
                    pending: Arc::clone(&pending),
                    counters: Arc::clone(&counters),
                    wire: wire.clone(),
                    trace: config.trace.clone(),
                    max_frame: config.max_frame,
                    client: config.client,
                    redial_initial: config.redial_initial,
                    redial_max: config.redial_max,
                });
                let (tx, rx) = unbounded();
                let manager = {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("abd-wire-manager-{i}"))
                        .spawn(move || manager_loop(rx, shared))
                        .expect("spawning wire manager thread")
                };
                ReplicaConn {
                    out: tx,
                    shared,
                    manager: Some(manager),
                }
            })
            .collect();
        RemoteTransport {
            conns,
            kind,
            max_frame: config.max_frame,
            op_timeout: config.op_timeout,
            retry: config.retry,
            registry,
            trace: config.trace,
            counters,
            pending,
            next_register: AtomicU64::new(0),
            next_request: AtomicU64::new(1),
        }
    }

    /// How many replicas currently hold a handshaken connection.
    pub fn connected_replicas(&self) -> usize {
        self.conns
            .iter()
            .filter(|c| c.shared.connected.load(Ordering::Acquire))
            .count()
    }

    /// Waits until at least `need` replicas are connected, up to
    /// `timeout`; returns whether the bar was reached.
    pub fn wait_connected(&self, need: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.connected_replicas() >= need {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// The metrics registry carrying this transport's `abd.*` and
    /// `abd.wire.*` metrics.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The replica endpoints, in cluster order.
    pub fn endpoints(&self) -> Vec<Endpoint> {
        self.conns
            .iter()
            .map(|c| c.shared.endpoint.clone())
            .collect()
    }

    /// A snapshot of the `abd.*` traffic counters (sent, dropped,
    /// retries, …) — same view the simulated network offers.
    pub fn stats(&self) -> NetworkStats {
        self.counters.snapshot()
    }

    /// A snapshot of the per-operation quorum-phase latency histogram.
    pub fn quorum_latency(&self) -> LatencySnapshot {
        self.counters.latency_snapshot()
    }
}

impl Drop for RemoteTransport {
    fn drop(&mut self) {
        for conn in &self.conns {
            let _ = conn.out.send(OutMsg::Shutdown);
        }
        for conn in &mut self.conns {
            if let Some(manager) = conn.manager.take() {
                let _ = manager.join();
            }
        }
    }
}

impl fmt::Debug for RemoteTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteTransport")
            .field("kind", &self.kind)
            .field("replicas", &self.conns.len())
            .field("connected", &self.connected_replicas())
            .field("stats", &self.stats())
            .finish()
    }
}

/// One in-flight quorum phase on the wire: the request frame encoded
/// once, a private reply channel routed by request id.
struct RemotePhase<'a> {
    transport: &'a RemoteTransport,
    id: RequestId,
    frame: Arc<[u8]>,
    /// Loopback sender for synthetic replies (used to refuse a frame
    /// that exceeds the wire cap without touching any connection).
    tx: Sender<Reply>,
    rx: Receiver<Reply>,
}

impl Drop for RemotePhase<'_> {
    fn drop(&mut self) {
        self.transport
            .pending
            .lock()
            .expect("pending route map")
            .remove(&self.id.0);
    }
}

impl Phase for RemotePhase<'_> {
    fn send_where(&mut self, include: &mut dyn FnMut(usize) -> bool) -> usize {
        // A frame over the wire cap can never be sent: `write_frame`
        // refuses it locally with `TooLarge` before touching the stream.
        // Don't churn the healthy connections — answer each addressed
        // replica with a typed refusal (which never counts toward a
        // quorum) and count the drops.
        if self.frame.len() > self.transport.max_frame as usize {
            let mut refused = 0usize;
            for (i, conn) in self.transport.conns.iter().enumerate() {
                if include(i) {
                    self.transport.counters.messages_dropped.inc();
                    conn.shared.wire.oversize_dropped.inc();
                    let _ = self.tx.send(Reply {
                        from: i,
                        body: ReplyBody::Error {
                            detail: format!(
                                "request frame of {} bytes exceeds the {}-byte wire cap",
                                self.frame.len(),
                                self.transport.max_frame
                            ),
                        },
                    });
                    refused += 1;
                }
            }
            return refused;
        }
        let mut sent = 0usize;
        for (i, conn) in self.transport.conns.iter().enumerate() {
            if include(i) {
                let _ = conn.out.send(OutMsg::Frame(Arc::clone(&self.frame)));
                sent += 1;
            }
        }
        self.transport.counters.messages_sent.add(sent as u64);
        sent
    }

    fn recv_deadline(&mut self, deadline: Instant) -> Option<Reply> {
        self.rx.recv_deadline(deadline).ok()
    }
}

impl Transport for RemoteTransport {
    fn replicas(&self) -> usize {
        self.conns.len()
    }

    fn kind(&self) -> &'static str {
        self.kind
    }

    fn requires_bytes(&self) -> bool {
        true
    }

    fn op_timeout(&self) -> Duration {
        self.op_timeout
    }

    fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    fn trace(&self) -> &Trace {
        &self.trace
    }

    fn allocate_register(&self) -> RegisterId {
        // Client-local fallback only: sequential ids in the top lane.
        // Distinct client processes would collide here — remote register
        // sets are meant to be addressed explicitly via
        // `RegisterId::from_lane_segment` (as `AbdSnapshotCore::remote`
        // does), so every client names the same replica-side registers.
        let n = self.next_register.fetch_add(1, Ordering::Relaxed);
        RegisterId::from_lane_segment(u32::MAX, n as u32)
    }

    fn fresh_request_id(&self) -> RequestId {
        // Request ids only need client-local uniqueness: `snapshotd`
        // dedupes per connection, and each client holds its own.
        RequestId(self.next_request.fetch_add(1, Ordering::Relaxed))
    }

    fn begin_phase(&self, id: RequestId, request: PhaseRequest) -> Box<dyn Phase + '_> {
        let frame = match &request {
            PhaseRequest::Query { register } => {
                let (lane, segment) = register.lane_segment();
                Frame::Query {
                    id: id.0,
                    lane,
                    segment,
                }
            }
            PhaseRequest::Store {
                register,
                tag,
                payload,
            } => {
                let (lane, segment) = register.lane_segment();
                let value = payload
                    .as_bytes()
                    .expect("wire transports carry only Payload::Bytes (requires_bytes)")
                    .to_vec();
                Frame::Store {
                    id: id.0,
                    lane,
                    segment,
                    tag: WireTag {
                        seq: tag.seq,
                        // Writer ids above u32 would alias on the wire
                        // and corrupt tag tie-break ordering; refuse
                        // loudly rather than truncate silently.
                        writer: u32::try_from(tag.writer)
                            .expect("writer id exceeds the wire format's u32 range"),
                    },
                    value,
                }
            }
        };
        let frame: Arc<[u8]> = Arc::from(frame.encode().into_boxed_slice());
        let (tx, rx) = unbounded();
        self.pending
            .lock()
            .expect("pending route map")
            .insert(id.0, tx.clone());
        Box::new(RemotePhase {
            transport: self,
            id,
            frame,
            tx,
            rx,
        })
    }

    fn note_retries(&self, n: u64) {
        self.counters.retries.add(n);
    }

    fn record_quorum_latency(&self, elapsed: Duration) {
        self.counters.record_quorum_latency(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapshot_registers::ProcessId;
    use snapshot_wire::{ReplicaServer, ServerConfig};

    const P0: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);

    fn uds_endpoint(name: &str) -> Endpoint {
        let mut path = std::env::temp_dir();
        path.push(format!("abd-remote-test-{}-{name}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Endpoint::Uds(path)
    }

    fn spawn_cluster(tag: &str, n: usize) -> (Vec<ReplicaServer>, Vec<Endpoint>) {
        let mut servers = Vec::new();
        let mut endpoints = Vec::new();
        for i in 0..n {
            let server =
                ReplicaServer::spawn(ServerConfig::new(uds_endpoint(&format!("{tag}{i}")), i as u32))
                    .expect("spawning replica server");
            endpoints.push(server.endpoint().clone());
            servers.push(server);
        }
        (servers, endpoints)
    }

    #[test]
    fn connects_and_serves_register_traffic_over_uds() {
        let (servers, endpoints) = spawn_cluster("basic", 3);
        let transport = Arc::new(RemoteTransport::connect(
            RemoteConfig::new(endpoints).with_op_timeout(Duration::from_secs(5)),
        ));
        assert!(transport.wait_connected(3, Duration::from_secs(5)));
        assert_eq!(transport.kind(), "uds");

        let reg = crate::AbdRegister::with_wire_codec(
            Arc::clone(&transport) as Arc<dyn Transport>,
            RegisterId::from_lane_segment(0, 0),
            0u64,
        );
        for k in 1..=5u64 {
            reg.try_write(P0, k).expect("write over uds");
            assert_eq!(reg.try_read(P1).expect("read over uds"), k);
        }
        assert!(transport.stats().messages_sent > 0);
        drop(reg);
        drop(transport);
        drop(servers);
    }

    #[test]
    fn oversized_store_is_refused_without_churning_connections() {
        let (servers, endpoints) = spawn_cluster("oversize", 3);
        let transport = Arc::new(RemoteTransport::connect(
            RemoteConfig::new(endpoints)
                .with_op_timeout(Duration::from_millis(200))
                .with_max_frame(256),
        ));
        assert!(transport.wait_connected(3, Duration::from_secs(5)));

        let reg = crate::AbdRegister::with_wire_codec(
            Arc::clone(&transport) as Arc<dyn Transport>,
            RegisterId::from_lane_segment(2, 0),
            String::new(),
        );
        // A value far over the 256-byte wire cap: the phase must fail
        // typed (not hang), and the healthy connections must survive.
        let err = reg
            .try_write(P0, "x".repeat(4096))
            .expect_err("oversized value cannot fit a frame");
        assert!(
            matches!(err, crate::AbdError::QuorumUnavailable { .. }),
            "{err:?}"
        );
        assert_eq!(transport.connected_replicas(), 3, "connections must stay up");
        assert_eq!(
            transport.registry().counter("abd.wire.disconnects").get(),
            0,
            "an oversized frame must not tear a connection down"
        );
        assert!(
            transport
                .registry()
                .counter("abd.wire.oversize_dropped")
                .get()
                > 0
        );

        // Small values still flow over the same connections.
        reg.try_write(P0, String::from("ok"))
            .expect("small write after the refusal");
        assert_eq!(reg.try_read(P1).expect("read after the refusal"), "ok");
        drop(reg);
        drop(transport);
        drop(servers);
    }

    #[test]
    fn survives_a_replica_restart_and_fails_typed_without_a_majority() {
        let (mut servers, endpoints) = spawn_cluster("nemesis", 3);
        let transport = Arc::new(RemoteTransport::connect(
            RemoteConfig::new(endpoints)
                .with_op_timeout(Duration::from_millis(400))
                .with_redial(Duration::from_millis(10), Duration::from_millis(50)),
        ));
        assert!(transport.wait_connected(3, Duration::from_secs(5)));
        let reg = crate::AbdRegister::with_wire_codec(
            Arc::clone(&transport) as Arc<dyn Transport>,
            RegisterId::from_lane_segment(1, 1),
            0u64,
        );
        reg.try_write(P0, 7).expect("write with full fleet");

        // One replica down: still a majority, traffic keeps flowing.
        let killed = servers.remove(2);
        let store = killed.store();
        let killed_endpoint = killed.endpoint().clone();
        drop(killed);
        reg.try_write(P0, 8).expect("write with one replica down");
        assert_eq!(reg.try_read(P1).expect("read with one replica down"), 8);

        // Two replicas down: no majority — a typed failure, not a hang.
        let also_killed = servers.remove(1);
        let also_store = also_killed.store();
        let also_endpoint = also_killed.endpoint().clone();
        drop(also_killed);
        let err = reg.try_write(P0, 9).expect_err("no majority reachable");
        assert!(
            matches!(err, crate::AbdError::QuorumUnavailable { .. }),
            "{err:?}"
        );

        // Restart both (state intact, same sockets): the managers redial
        // and the same register serves again.
        servers.push(
            snapshot_wire::ReplicaServer::spawn_with_store(
                ServerConfig::new(also_endpoint, 1),
                also_store,
            )
            .expect("restarting replica 1"),
        );
        servers.push(
            snapshot_wire::ReplicaServer::spawn_with_store(
                ServerConfig::new(killed_endpoint, 2),
                store,
            )
            .expect("restarting replica 2"),
        );
        assert!(transport.wait_connected(3, Duration::from_secs(5)));
        reg.try_write(P0, 10).expect("write after fleet healed");
        assert_eq!(reg.try_read(P1).expect("read after fleet healed"), 10);
        assert!(transport.stats().messages_dropped > 0 || transport.stats().retries > 0);
    }
}
