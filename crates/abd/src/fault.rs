//! Seeded fault injection for the simulated message-passing network, and
//! a nemesis driver that walks a schedule of fault phases.
//!
//! The paper's resilience claim is *"as long as a majority of the system
//! remains connected"* — which means the interesting executions are the
//! ones where links lose, duplicate, delay and reorder messages and
//! partitions come and go. [`FaultPlan`] configures all of that per link
//! (one link = the path between the clients and one replica), driven by a
//! single [`StdRng`] seed so every run is reproducible; [`Nemesis`] walks
//! a schedule of fault phases (heal → partition a minority → flap a
//! replica → heal) over wall-clock or message-count triggers.
//!
//! [`StdRng`]: rand::rngs::StdRng

use std::time::{Duration, Instant};

use crate::Network;

/// Fault policy for one client↔replica link.
///
/// All probabilities are per message and clamped to `[0, 1]`. The default
/// ([`LinkFault::healthy`]) injects nothing, so a `FaultPlan` is built by
/// turning individual faults on:
///
/// ```
/// use std::time::Duration;
/// use snapshot_abd::LinkFault;
///
/// let lossy = LinkFault::healthy()
///     .with_drop(0.1)
///     .with_duplicate(0.05)
///     .with_reorder(0.1, 3)
///     .with_reply_drop(0.05)
///     .with_delay(Duration::from_micros(10), Duration::from_micros(200));
/// assert!(lossy.injects_faults());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LinkFault {
    /// Probability a client→replica request is silently discarded.
    pub drop: f64,
    /// Probability a request is delivered twice (exercising replica-side
    /// request-id deduplication).
    pub duplicate: f64,
    /// Probability a request is held back past later traffic.
    pub reorder: f64,
    /// Maximum number of later messages a held-back request can be
    /// overtaken by (bounded reordering; ignored while `reorder == 0`).
    pub reorder_window: usize,
    /// Uniform per-delivery processing delay `[min, max]`, if any.
    pub delay: Option<(Duration, Duration)>,
    /// Probability a replica→client reply is silently discarded.
    pub reply_drop: f64,
}

impl LinkFault {
    /// A link that delivers every message exactly once, in order,
    /// immediately.
    pub fn healthy() -> Self {
        LinkFault {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_window: 0,
            delay: None,
            reply_drop: 0.0,
        }
    }

    /// Sets the request drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the request duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the reorder probability and holdback window.
    pub fn with_reorder(mut self, p: f64, window: usize) -> Self {
        self.reorder = p.clamp(0.0, 1.0);
        self.reorder_window = window;
        self
    }

    /// Sets a uniform per-delivery delay range.
    pub fn with_delay(mut self, min: Duration, max: Duration) -> Self {
        self.delay = Some((min.min(max), max.max(min)));
        self
    }

    /// Sets the reply drop probability.
    pub fn with_reply_drop(mut self, p: f64) -> Self {
        self.reply_drop = p.clamp(0.0, 1.0);
        self
    }

    /// True if any fault has nonzero probability (used to skip the fault
    /// bookkeeping entirely on healthy links).
    pub fn injects_faults(&self) -> bool {
        self.drop > 0.0
            || self.duplicate > 0.0
            || self.reorder > 0.0
            || self.delay.is_some()
            || self.reply_drop > 0.0
    }
}

impl Default for LinkFault {
    fn default() -> Self {
        LinkFault::healthy()
    }
}

/// A seeded, reproducible fault-injection plan for a whole network:
/// one default [`LinkFault`] plus per-replica overrides.
///
/// Replica `i`'s fault decisions are drawn from
/// `StdRng::seed_from_u64(seed + i)`, so a fixed seed fixes the entire
/// drop/duplicate/reorder decision sequence of every link. Partitions and
/// crashes are *not* part of the static plan — they are runtime state,
/// driven by [`Network::partition`]/[`Network::crash`] or a [`Nemesis`]
/// schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for all per-link fault RNGs.
    pub seed: u64,
    /// Fault policy applied to every link without an override.
    pub default_fault: LinkFault,
    /// Per-replica overrides `(replica index, fault)`.
    pub overrides: Vec<(usize, LinkFault)>,
}

impl FaultPlan {
    /// A plan with healthy links and the given seed (turn faults on with
    /// [`FaultPlan::with_default`]/[`FaultPlan::with_link`]).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            default_fault: LinkFault::healthy(),
            overrides: Vec::new(),
        }
    }

    /// Sets the default fault policy for every link.
    pub fn with_default(mut self, fault: LinkFault) -> Self {
        self.default_fault = fault;
        self
    }

    /// Overrides the fault policy of replica `index`'s link.
    pub fn with_link(mut self, index: usize, fault: LinkFault) -> Self {
        self.overrides.push((index, fault));
        self
    }

    /// The fault policy for replica `index`'s link (last override wins).
    pub fn fault_for(&self, index: usize) -> LinkFault {
        self.overrides
            .iter()
            .rev()
            .find(|(i, _)| *i == index)
            .map(|(_, f)| f.clone())
            .unwrap_or_else(|| self.default_fault.clone())
    }
}

/// One step a [`Nemesis`] schedule applies to the network.
#[derive(Clone, Debug)]
pub enum NemesisEvent {
    /// Clear every partition cut (link faults and crashes stay).
    Heal,
    /// Partition the listed replicas away. `symmetric` cuts both request
    /// and reply direction; asymmetric cuts only requests (the replica can
    /// still speak — its acks arrive but new work never reaches it).
    Partition {
        /// Replica indexes to cut off.
        replicas: Vec<usize>,
        /// Cut both directions (`true`) or only client→replica (`false`).
        symmetric: bool,
    },
    /// Crash a replica (it falls silent until restarted; state intact).
    Crash(usize),
    /// Restart a crashed replica.
    Restart(usize),
    /// Replace every link's fault policy.
    GlobalFault(LinkFault),
    /// Replace one link's fault policy.
    LinkFaultOn {
        /// Replica whose link changes.
        replica: usize,
        /// The new policy.
        fault: LinkFault,
    },
}

/// How long a nemesis phase dwells after applying its events.
#[derive(Clone, Copy, Debug)]
pub enum Dwell {
    /// Wall-clock milliseconds.
    Millis(u64),
    /// Until the network has sent this many further messages (with a
    /// 5-second wall-clock cap so a starved network cannot hang the
    /// schedule).
    Messages(u64),
}

/// Hard cap on a [`Dwell::Messages`] wait, so a partitioned/idle network
/// cannot stall a nemesis schedule forever.
const DWELL_MESSAGES_CAP: Duration = Duration::from_secs(5);

/// One phase of a nemesis schedule: events applied atomically (from the
/// schedule's point of view), then a dwell.
#[derive(Clone, Debug)]
pub struct NemesisPhase {
    /// The fault events this phase applies.
    pub events: Vec<NemesisEvent>,
    /// How long to hold the resulting fault mix.
    pub dwell: Dwell,
}

/// A driver that walks a schedule of fault phases over a [`Network`]
/// while a workload runs on other threads.
///
/// `run` is blocking; tests typically spawn it on its own (scoped) thread
/// next to the client threads:
///
/// ```
/// use std::sync::Arc;
/// use snapshot_abd::{Dwell, Nemesis, NemesisEvent, Network};
///
/// let network = Arc::new(Network::new(5));
/// Nemesis::new()
///     .phase(vec![NemesisEvent::Partition { replicas: vec![0, 1], symmetric: true }],
///            Dwell::Millis(5))
///     .phase(vec![NemesisEvent::Heal, NemesisEvent::Crash(2)], Dwell::Millis(5))
///     .phase(vec![NemesisEvent::Restart(2), NemesisEvent::Heal], Dwell::Millis(1))
///     .run(&network);
/// ```
///
/// The schedule above never cuts more than a minority at once, so a
/// concurrent ABD workload stays live throughout (retries carry it across
/// the phase boundaries).
#[derive(Clone, Debug, Default)]
pub struct Nemesis {
    phases: Vec<NemesisPhase>,
}

impl Nemesis {
    /// An empty schedule.
    pub fn new() -> Self {
        Nemesis { phases: Vec::new() }
    }

    /// Appends a phase.
    pub fn phase(mut self, events: Vec<NemesisEvent>, dwell: Dwell) -> Self {
        self.phases.push(NemesisPhase { events, dwell });
        self
    }

    /// The scheduled phases.
    pub fn phases(&self) -> &[NemesisPhase] {
        &self.phases
    }

    /// Applies the schedule to `network`, phase by phase, blocking through
    /// each dwell. Leaves whatever fault state the last phase set (end
    /// schedules with [`NemesisEvent::Heal`] if the workload must finish
    /// cleanly).
    pub fn run(&self, network: &Network) {
        for phase in &self.phases {
            for event in &phase.events {
                Self::apply(network, event);
            }
            match phase.dwell {
                Dwell::Millis(ms) => std::thread::sleep(Duration::from_millis(ms)),
                Dwell::Messages(n) => {
                    let start_messages = network.stats().messages_sent;
                    let deadline = Instant::now() + DWELL_MESSAGES_CAP;
                    while network.stats().messages_sent < start_messages.saturating_add(n)
                        && Instant::now() < deadline
                    {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }
    }

    fn apply(network: &Network, event: &NemesisEvent) {
        match event {
            NemesisEvent::Heal => network.heal(),
            NemesisEvent::Partition {
                replicas,
                symmetric,
            } => {
                if *symmetric {
                    network.partition(replicas);
                } else {
                    network.partition_inbound(replicas);
                }
            }
            NemesisEvent::Crash(i) => network.crash(*i),
            NemesisEvent::Restart(i) => network.restart(*i),
            NemesisEvent::GlobalFault(fault) => network.set_fault_all(fault.clone()),
            NemesisEvent::LinkFaultOn { replica, fault } => {
                network.set_fault(*replica, fault.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn probabilities_are_clamped() {
        let f = LinkFault::healthy()
            .with_drop(7.0)
            .with_duplicate(-1.0)
            .with_reply_drop(0.25);
        assert_eq!(f.drop, 1.0);
        assert_eq!(f.duplicate, 0.0);
        assert_eq!(f.reply_drop, 0.25);
        assert!(f.injects_faults());
        assert!(!LinkFault::healthy().injects_faults());
    }

    #[test]
    fn plan_overrides_win_per_link() {
        let plan = FaultPlan::seeded(1)
            .with_default(LinkFault::healthy().with_drop(0.5))
            .with_link(2, LinkFault::healthy());
        assert_eq!(plan.fault_for(0).drop, 0.5);
        assert_eq!(plan.fault_for(2).drop, 0.0);
    }

    #[test]
    fn empty_and_millis_schedules_terminate() {
        let network = Arc::new(Network::new(3));
        Nemesis::new().run(&network);
        Nemesis::new()
            .phase(vec![NemesisEvent::Crash(0)], Dwell::Millis(1))
            .phase(vec![NemesisEvent::Restart(0), NemesisEvent::Heal], Dwell::Millis(1))
            .run(&network);
    }

    #[test]
    fn message_dwell_is_wall_clock_capped() {
        // No traffic flows, so only the cap can release the dwell; use a
        // tiny message budget — the point is that it returns at all.
        let network = Arc::new(Network::new(1));
        let nemesis = Nemesis::new().phase(vec![], Dwell::Messages(1));
        let started = Instant::now();
        // Drive a single message so the dwell releases fast.
        let handle = {
            let network = Arc::clone(&network);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                use snapshot_registers::Register;
                let reg = crate::AbdRegister::new(network, 0u32);
                let _ = reg.read(snapshot_registers::ProcessId::new(0));
            })
        };
        nemesis.run(&network);
        assert!(started.elapsed() < DWELL_MESSAGES_CAP + Duration::from_secs(1));
        handle.join().unwrap();
    }
}
