//! The transport seam: how an ABD client reaches its replica fleet.
//!
//! The quorum engine in [`AbdRegister`](crate::AbdRegister) — broadcast,
//! count distinct repliers, retransmit to the silent under capped
//! backoff, give up at the deadline — is pure protocol; nothing in it
//! cares whether a "replica" is a thread behind a channel or a process
//! behind a socket. [`Transport`] is that boundary made explicit:
//!
//! * the simulated [`Network`](crate::Network) implements it in-process,
//!   with the full fault-injection plane (drops, duplication, reorder,
//!   crash, partition) underneath;
//! * [`RemoteTransport`](crate::RemoteTransport) implements it over TCP
//!   or Unix-domain sockets against `snapshotd` replica processes, where
//!   the faults are real.
//!
//! Both report under the same `abd.*` metric keys (the transport is a
//! `abd.transport.<kind>` gauge, since the registry is name-keyed), and
//! both feed the same trace events, so every dashboard, soak assertion
//! and flight recording reads identically across deployments.
//!
//! One quorum phase is one [`Transport::begin_phase`] call: the returned
//! [`Phase`] owns the request id's reply route for its lifetime —
//! [`Phase::send_where`] (re)transmits to a chosen subset of replicas
//! and [`Phase::recv_deadline`] awaits the next reply. Values cross the
//! seam as [`Payload`]s: in-process transports pass type-erased `Arc`s
//! untouched, wire transports require encoded bytes
//! ([`Transport::requires_bytes`]) which the register layer produces via
//! its wire codec.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use snapshot_obs::{Registry, Trace};

use crate::message::{ErasedValue, RegisterId, RequestId, Tag};
use crate::network::RetryPolicy;

/// A register value crossing the transport seam.
#[derive(Clone)]
pub enum Payload {
    /// A type-erased in-process value (shared, never serialized). Only
    /// transports with `requires_bytes() == false` accept it.
    Erased(ErasedValue),
    /// A wire-encoded value, as produced by a register's wire codec and
    /// carried opaquely by replicas.
    Bytes(Arc<[u8]>),
}

impl Payload {
    /// The encoded bytes, when this payload carries them.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Payload::Erased(_) => None,
            Payload::Bytes(b) => Some(b),
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Erased(_) => f.write_str("Payload::Erased(..)"),
            Payload::Bytes(b) => write!(f, "Payload::Bytes({} bytes)", b.len()),
        }
    }
}

/// The client side of one quorum-phase request.
#[derive(Clone, Debug)]
pub enum PhaseRequest {
    /// Phase 1: "send me your `(tag, value)` for this register."
    Query {
        /// The register being read.
        register: RegisterId,
    },
    /// Phase 2: "store this `(tag, value)` if it exceeds yours, then ack."
    Store {
        /// The register being written.
        register: RegisterId,
        /// The tag under which the value is stored.
        tag: Tag,
        /// The value.
        payload: Payload,
    },
}

/// One replica's answer to a phase request.
#[derive(Clone, Debug)]
pub struct Reply {
    /// Index of the replying replica.
    pub from: usize,
    /// The payload.
    pub body: ReplyBody,
}

/// Payload of a [`Reply`].
#[derive(Clone, Debug)]
pub enum ReplyBody {
    /// A query answer: the replica's current `(tag, value)` (`None`
    /// value = it has never stored this register).
    Value {
        /// The stored tag.
        tag: Tag,
        /// The stored value, if any.
        payload: Option<Payload>,
    },
    /// A store acknowledged.
    Ack,
    /// The replica refused the request (a typed wire error frame, or a
    /// transport-level failure attributed to one replica). Never counts
    /// toward a quorum.
    Error {
        /// Human-readable refusal, for diagnostics.
        detail: String,
    },
}

/// One in-flight quorum phase on some transport.
///
/// Created by [`Transport::begin_phase`]; while it lives, replies to its
/// request id route to it. Dropping the phase releases the route (late
/// replies are discarded — the engine has either reached its quorum or
/// given up).
pub trait Phase {
    /// (Re)transmits the phase's request to every replica for which
    /// `include` holds; returns how many were sent. The engine calls
    /// this once for the initial broadcast (`include` = all) and again
    /// on each retransmission (`include` = the still-silent).
    fn send_where(&mut self, include: &mut dyn FnMut(usize) -> bool) -> usize;

    /// Awaits the next reply to this phase, until `deadline`. `None`
    /// means the deadline passed (the engine decides whether to
    /// retransmit or give up); duplicated replies may be delivered and
    /// are the engine's to discard.
    fn recv_deadline(&mut self, deadline: Instant) -> Option<Reply>;
}

/// A way to reach a replica fleet: the seam between the ABD quorum
/// engine and the medium carrying its messages.
///
/// Implementations must be usable from many threads at once (each lane
/// of a snapshot core runs phases concurrently), hence `Send + Sync`.
/// See the [module docs](self) for the two implementations.
pub trait Transport: Send + Sync + 'static {
    /// Number of replicas in the fleet.
    fn replicas(&self) -> usize;

    /// Size of a majority quorum.
    fn quorum(&self) -> usize {
        self.replicas() / 2 + 1
    }

    /// The transport kind label (`"sim"`, `"tcp"`, `"uds"`), reported as
    /// the `abd.transport.<kind>` gauge and in diagnostics.
    fn kind(&self) -> &'static str;

    /// Whether this transport can only carry [`Payload::Bytes`] (a wire
    /// transport). Registers check this at construction: a register
    /// without a wire codec refuses a byte-only transport up front
    /// rather than failing on first use.
    fn requires_bytes(&self) -> bool {
        false
    }

    /// Per-phase operation timeout: how long a phase may wait for its
    /// quorum before failing with `QuorumUnavailable`.
    fn op_timeout(&self) -> Duration;

    /// The retransmission backoff policy.
    fn retry_policy(&self) -> &RetryPolicy;

    /// The metrics registry carrying the transport's `abd.*` metrics.
    fn registry(&self) -> &Arc<Registry>;

    /// The trace receiving quorum-phase events.
    fn trace(&self) -> &Trace;

    /// Whether the fleet is terminally failed (a panicked replica
    /// thread, an explicitly poisoned network). Phases fail fast with
    /// `NetworkPoisoned` instead of retrying into the void.
    fn poisoned(&self) -> bool {
        false
    }

    /// Allocates a fresh register id (in-process transports hand out
    /// sequential ids; wire registers are addressed explicitly via
    /// [`RegisterId::from_lane_segment`]).
    fn allocate_register(&self) -> RegisterId;

    /// Allocates a fresh request id for one quorum phase.
    fn fresh_request_id(&self) -> RequestId;

    /// Opens one quorum phase: `request` will be (re)transmitted under
    /// `id`, and replies to `id` route to the returned [`Phase`] while
    /// it lives.
    ///
    /// # Panics
    ///
    /// A byte-only transport panics on [`Payload::Erased`]; the register
    /// layer guards this at construction via
    /// [`requires_bytes`](Self::requires_bytes).
    fn begin_phase(&self, id: RequestId, request: PhaseRequest) -> Box<dyn Phase + '_>;

    /// Counts `n` retransmitted messages (the `abd.retries` counter).
    fn note_retries(&self, n: u64);

    /// Records one completed quorum phase's latency (the
    /// `abd.quorum_latency_us` histogram).
    fn record_quorum_latency(&self, elapsed: Duration);
}
