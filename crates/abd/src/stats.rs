//! Fault and retry counters plus a per-operation quorum-latency
//! histogram, threaded through the replica threads and the client retry
//! loop so soak tests and benches can assert on what the fault layer
//! actually did (a nemesis test whose `messages_dropped` stays zero is
//! not testing what it claims to).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ microsecond buckets in the latency histogram
/// (bucket 31 holds everything ≥ ~35 minutes — effectively "timeout").
const BUCKETS: usize = 32;

/// Live atomic counters shared by the network, its replicas and clients.
#[derive(Default)]
pub(crate) struct Counters {
    pub messages_sent: AtomicU64,
    pub messages_dropped: AtomicU64,
    pub messages_duplicated: AtomicU64,
    pub messages_reordered: AtomicU64,
    pub retries: AtomicU64,
    pub duplicates_suppressed: AtomicU64,
    latency: LatencyHistogram,
}

impl Counters {
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_quorum_latency(&self, elapsed: Duration) {
        self.latency.record(elapsed);
    }

    pub fn snapshot(&self) -> NetworkStats {
        NetworkStats {
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            messages_dropped: self.messages_dropped.load(Ordering::Relaxed),
            messages_duplicated: self.messages_duplicated.load(Ordering::Relaxed),
            messages_reordered: self.messages_reordered.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            duplicates_suppressed: self.duplicates_suppressed.load(Ordering::Relaxed),
        }
    }

    pub fn latency_snapshot(&self) -> LatencySnapshot {
        self.latency.snapshot()
    }
}

/// A point-in-time snapshot of a [`Network`]'s fault and traffic counters.
///
/// All counts are cumulative since the network was spawned. Obtained from
/// [`Network::stats`]; cheap to copy and compare, so tests typically diff
/// two snapshots around the interval of interest.
///
/// [`Network`]: crate::Network
/// [`Network::stats`]: crate::Network::stats
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Client→replica request messages handed to the links (initial
    /// broadcasts *and* retransmissions).
    pub messages_sent: u64,
    /// Messages discarded by the fault layer: lossy-link drops, partition
    /// cuts (both request and reply direction).
    pub messages_dropped: u64,
    /// Requests the fault layer delivered twice.
    pub messages_duplicated: u64,
    /// Requests the fault layer held back past later traffic (bounded
    /// reordering).
    pub messages_reordered: u64,
    /// Retransmissions issued by client retry loops (counted per replica
    /// re-contacted, matching `messages_sent` granularity).
    pub retries: u64,
    /// Duplicate `Store` deliveries a replica recognized by request id and
    /// acked without re-applying.
    pub duplicates_suppressed: u64,
}

/// A lock-free log₂-bucketed histogram of quorum-phase latencies.
///
/// Bucket `i` counts phases whose wall-clock duration was in
/// `[2^i, 2^(i+1))` microseconds (bucket 0 additionally holds sub-µs
/// phases).
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    fn bucket_of(elapsed: Duration) -> usize {
        let micros = elapsed.as_micros().min(u64::MAX as u128) as u64;
        if micros == 0 {
            0
        } else {
            (micros.ilog2() as usize).min(BUCKETS - 1)
        }
    }

    pub fn record(&self, elapsed: Duration) {
        self.buckets[Self::bucket_of(elapsed)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time snapshot of the per-operation quorum-latency histogram.
///
/// Obtained from [`Network::quorum_latency`]. Bucket `i` counts quorum
/// phases that completed in `[2^i, 2^(i+1))` microseconds.
///
/// [`Network::quorum_latency`]: crate::Network::quorum_latency
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    buckets: [u64; BUCKETS],
}

impl LatencySnapshot {
    /// Total number of recorded quorum phases.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The raw bucket counts (log₂ microseconds).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// An upper bound on the `q`-quantile latency (`q` in `[0, 1]`):
    /// the exclusive upper edge of the bucket containing that quantile.
    /// Returns `None` if nothing was recorded.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<Duration> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper_micros = 1u64.checked_shl(i as u32 + 1).unwrap_or(u64::MAX);
                return Some(Duration::from_micros(upper_micros));
            }
        }
        Some(Duration::from_micros(u64::MAX))
    }
}

impl fmt::Debug for LatencySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencySnapshot")
            .field("count", &self.count())
            .field("p50_upper", &self.quantile_upper_bound(0.5))
            .field("p99_upper", &self.quantile_upper_bound(0.99))
            .finish()
    }
}

impl fmt::Debug for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snapshot().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_micros() {
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_nanos(10)), 0);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(1)), 0);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(2)), 1);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(3)), 1);
        assert_eq!(LatencyHistogram::bucket_of(Duration::from_micros(1024)), 10);
        assert_eq!(
            LatencyHistogram::bucket_of(Duration::from_secs(1 << 40)),
            BUCKETS - 1
        );
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let h = LatencyHistogram::default();
        assert_eq!(h.snapshot().quantile_upper_bound(0.5), None);
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket 3: [8, 16)
        }
        h.record(Duration::from_millis(100)); // bucket 16
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(
            snap.quantile_upper_bound(0.5),
            Some(Duration::from_micros(16))
        );
        assert_eq!(
            snap.quantile_upper_bound(1.0),
            Some(Duration::from_micros(1 << 17))
        );
    }

    #[test]
    fn counters_snapshot_roundtrip() {
        let c = Counters::default();
        Counters::add(&c.messages_sent, 5);
        Counters::add(&c.retries, 2);
        let s = c.snapshot();
        assert_eq!(s.messages_sent, 5);
        assert_eq!(s.retries, 2);
        assert_eq!(s.messages_dropped, 0);
    }
}
