//! Fault and retry counters plus a per-operation quorum-latency
//! histogram, threaded through the replica threads and the client retry
//! loop so soak tests and benches can assert on what the fault layer
//! actually did (a nemesis test whose `messages_dropped` stays zero is
//! not testing what it claims to).
//!
//! Since the observability layer landed, the counters are handles into a
//! shared [`Registry`] (`abd.messages_sent`, …, `abd.quorum_latency_us`),
//! so a network's traffic shows up next to every other subsystem's metrics
//! in one `Registry::render` dump. The legacy [`NetworkStats`] /
//! [`LatencySnapshot`] views are unchanged — they now read the registry
//! handles.

use std::fmt;
use std::time::Duration;

use snapshot_obs::{Counter, Histogram, HistogramSnapshot, Registry};

/// Live counter handles shared by the network, its replicas and clients.
///
/// Each field is a cheap clone of a metric registered on the network's
/// [`Registry`] under the `abd.` prefix; `Default` builds free-standing
/// handles not attached to any registry (used by unit tests).
#[derive(Default)]
pub(crate) struct Counters {
    pub messages_sent: Counter,
    pub messages_dropped: Counter,
    pub messages_duplicated: Counter,
    pub messages_reordered: Counter,
    pub retries: Counter,
    pub duplicates_suppressed: Counter,
    latency: Histogram,
}

impl Counters {
    /// Registers (or re-resolves) the `abd.*` metrics on `registry` and
    /// returns handles to them.
    pub fn new(registry: &Registry) -> Self {
        Counters {
            messages_sent: registry.counter("abd.messages_sent"),
            messages_dropped: registry.counter("abd.messages_dropped"),
            messages_duplicated: registry.counter("abd.messages_duplicated"),
            messages_reordered: registry.counter("abd.messages_reordered"),
            retries: registry.counter("abd.retries"),
            duplicates_suppressed: registry.counter("abd.duplicates_suppressed"),
            latency: registry.histogram("abd.quorum_latency_us"),
        }
    }

    pub fn record_quorum_latency(&self, elapsed: Duration) {
        self.latency.record(elapsed);
    }

    pub fn snapshot(&self) -> NetworkStats {
        NetworkStats {
            messages_sent: self.messages_sent.get(),
            messages_dropped: self.messages_dropped.get(),
            messages_duplicated: self.messages_duplicated.get(),
            messages_reordered: self.messages_reordered.get(),
            retries: self.retries.get(),
            duplicates_suppressed: self.duplicates_suppressed.get(),
        }
    }

    pub fn latency_snapshot(&self) -> LatencySnapshot {
        LatencySnapshot { inner: self.latency.snapshot() }
    }
}

/// A point-in-time snapshot of a [`Network`]'s fault and traffic counters.
///
/// All counts are cumulative since the network was spawned. Obtained from
/// [`Network::stats`]; cheap to copy and compare, so tests typically diff
/// two snapshots around the interval of interest.
///
/// [`Network`]: crate::Network
/// [`Network::stats`]: crate::Network::stats
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Client→replica request messages handed to the links (initial
    /// broadcasts *and* retransmissions).
    pub messages_sent: u64,
    /// Messages discarded by the fault layer: lossy-link drops, partition
    /// cuts (both request and reply direction).
    pub messages_dropped: u64,
    /// Requests the fault layer delivered twice.
    pub messages_duplicated: u64,
    /// Requests the fault layer held back past later traffic (bounded
    /// reordering).
    pub messages_reordered: u64,
    /// Retransmissions issued by client retry loops (counted per replica
    /// re-contacted, matching `messages_sent` granularity).
    pub retries: u64,
    /// Duplicate `Store` deliveries a replica recognized by request id and
    /// acked without re-applying.
    pub duplicates_suppressed: u64,
}

/// A point-in-time snapshot of the per-operation quorum-latency histogram.
///
/// Obtained from [`Network::quorum_latency`]. Bucket `i` counts quorum
/// phases that completed in `[2^i, 2^(i+1))` microseconds (bucket 0
/// additionally holds sub-µs phases).
///
/// [`Network::quorum_latency`]: crate::Network::quorum_latency
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    inner: HistogramSnapshot,
}

impl LatencySnapshot {
    /// Total number of recorded quorum phases.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// The raw bucket counts (log₂ microseconds).
    pub fn buckets(&self) -> &[u64] {
        &self.inner.buckets
    }

    /// An upper bound on the `q`-quantile latency (`q` in `[0, 1]`):
    /// the exclusive upper edge of the bucket containing that quantile.
    /// Returns `None` if nothing was recorded.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<Duration> {
        self.inner.quantile_upper_bound(q).map(Duration::from_micros)
    }
}

impl fmt::Debug for LatencySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencySnapshot")
            .field("count", &self.count())
            .field("p50_upper", &self.quantile_upper_bound(0.5))
            .field("p99_upper", &self.quantile_upper_bound(0.99))
            .finish()
    }
}

impl fmt::Debug for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snapshot().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_micros() {
        let c = Counters::default();
        c.record_quorum_latency(Duration::from_nanos(10));
        c.record_quorum_latency(Duration::from_micros(1));
        c.record_quorum_latency(Duration::from_micros(2));
        c.record_quorum_latency(Duration::from_micros(3));
        c.record_quorum_latency(Duration::from_micros(1024));
        c.record_quorum_latency(Duration::from_secs(1 << 40));
        let snap = c.latency_snapshot();
        assert_eq!(snap.buckets()[0], 2, "sub-µs and 1µs share bucket 0");
        assert_eq!(snap.buckets()[1], 2, "[2, 4)µs");
        assert_eq!(snap.buckets()[10], 1, "1024µs");
        assert_eq!(snap.buckets()[31], 1, "overflow lands in the last bucket");
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let c = Counters::default();
        assert_eq!(c.latency_snapshot().quantile_upper_bound(0.5), None);
        for _ in 0..99 {
            c.record_quorum_latency(Duration::from_micros(10)); // bucket 3: [8, 16)
        }
        c.record_quorum_latency(Duration::from_millis(100)); // bucket 16
        let snap = c.latency_snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(
            snap.quantile_upper_bound(0.5),
            Some(Duration::from_micros(16))
        );
        assert_eq!(
            snap.quantile_upper_bound(1.0),
            Some(Duration::from_micros(1 << 17))
        );
    }

    #[test]
    fn counters_snapshot_roundtrip() {
        let c = Counters::default();
        c.messages_sent.add(5);
        c.retries.add(2);
        let s = c.snapshot();
        assert_eq!(s.messages_sent, 5);
        assert_eq!(s.retries, 2);
        assert_eq!(s.messages_dropped, 0);
    }

    #[test]
    fn registry_backed_counters_surface_under_abd_names() {
        let registry = Registry::new();
        let c = Counters::new(&registry);
        c.messages_sent.add(3);
        c.record_quorum_latency(Duration::from_micros(10));
        assert_eq!(registry.counter("abd.messages_sent").get(), 3);
        assert_eq!(
            registry.histogram("abd.quorum_latency_us").snapshot().count(),
            1
        );
        let rendered = registry.render();
        assert!(rendered.contains("abd.messages_sent"), "{rendered}");
        assert!(rendered.contains("abd.quorum_latency_us"), "{rendered}");
    }
}
