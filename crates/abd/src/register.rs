use std::fmt;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Duration;

use snapshot_registers::{ProcessId, Register};

use crate::message::{ErasedValue, Request, Response};
use crate::{Network, RegisterId, Tag};

/// How long a quorum phase may wait before concluding the majority is
/// gone. Far beyond any simulated latency; reaching it means the caller
/// violated the minority-crash assumption.
const QUORUM_TIMEOUT: Duration = Duration::from_secs(30);

/// An atomic multi-writer register emulated over the replicas of a
/// [`Network`] with the ABD protocol.
///
/// * **write(v)** — phase 1: query all replicas, wait for a majority of
///   `(tag)` replies, pick `seq` one above the maximum; phase 2: store
///   `(seq, pid, v)` everywhere, wait for a majority of acks.
/// * **read()** — phase 1: query, majority, take the maximum `(tag, v)`;
///   phase 2: *write back* that maximum to a majority before returning
///   (so any read starting after this one completes sees a tag at least
///   as large: no new/old inversion).
///
/// Any two majorities intersect, which is the whole proof sketch: a read's
/// query majority intersects every completed write's store majority, so
/// the read sees the write's tag (or a larger one).
///
/// # Liveness
///
/// Operations block while no majority responds and panic after an
/// internal timeout — the paper's resilience claim is *exactly* "as long
/// as a majority of the system remains connected".
///
/// See the [crate docs](crate) for an example.
pub struct AbdRegister<V> {
    network: Arc<Network>,
    id: RegisterId,
    init: V,
    _marker: PhantomData<fn() -> V>,
}

impl<V: Clone + Send + Sync + 'static> AbdRegister<V> {
    /// Creates a register with initial value `init` on `network`.
    pub fn new(network: Arc<Network>, init: V) -> Self {
        let id = network.allocate_register();
        AbdRegister {
            network,
            id,
            init,
            _marker: PhantomData,
        }
    }

    /// The register's id within its network (diagnostics).
    pub fn id(&self) -> RegisterId {
        self.id
    }

    /// Phase 1 of both operations: query all, await a majority, return the
    /// maximum `(tag, value)` seen (value `None` = still the initial
    /// value).
    fn query_majority(&self) -> (Tag, Option<ErasedValue>) {
        let rx = self.network.broadcast(|reply| Request::Query {
            register: self.id,
            reply,
        });
        let quorum = self.network.quorum();
        let mut best: (Tag, Option<ErasedValue>) = (Tag::default(), None);
        for _ in 0..quorum {
            match rx.recv_timeout(QUORUM_TIMEOUT) {
                Ok(Response::QueryReply { tag, value }) => {
                    if value.is_some() && (best.1.is_none() || tag > best.0) {
                        best = (tag, value);
                    } else if best.1.is_none() {
                        best.0 = best.0.max(tag);
                    }
                }
                Ok(Response::StoreAck) => unreachable!("query phase got a store ack"),
                Err(_) => panic!(
                    "ABD register {:?}: no majority of replicas responded \
                     (more than a minority crashed?)",
                    self.id
                ),
            }
        }
        best
    }

    /// Phase 2: store `(tag, value)` everywhere, await a majority of acks.
    fn store_majority(&self, tag: Tag, value: ErasedValue) {
        let rx = self.network.broadcast(|reply| Request::Store {
            register: self.id,
            tag,
            value: Arc::clone(&value),
            reply,
        });
        for _ in 0..self.network.quorum() {
            match rx.recv_timeout(QUORUM_TIMEOUT) {
                Ok(Response::StoreAck) => {}
                Ok(Response::QueryReply { .. }) => {
                    unreachable!("store phase got a query reply")
                }
                Err(_) => panic!(
                    "ABD register {:?}: no majority of replicas acked a store \
                     (more than a minority crashed?)",
                    self.id
                ),
            }
        }
    }
}

impl<V: Clone + Send + Sync + 'static> Register<V> for AbdRegister<V> {
    fn read(&self, _reader: ProcessId) -> V {
        let (tag, value) = self.query_majority();
        match value {
            Some(erased) => {
                // Write-back before returning: later reads must not see an
                // older maximum.
                self.store_majority(tag, Arc::clone(&erased));
                erased
                    .downcast_ref::<V>()
                    .expect("replica returned a value of the wrong type")
                    .clone()
            }
            None => self.init.clone(),
        }
    }

    fn write(&self, writer: ProcessId, value: V) {
        let (max_tag, _) = self.query_majority();
        let tag = Tag {
            seq: max_tag.seq + 1,
            writer: writer.get(),
        };
        self.store_majority(tag, Arc::new(value) as ErasedValue);
    }
}

impl<V> fmt::Debug for AbdRegister<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AbdRegister").field("id", &self.id).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);

    #[test]
    fn initial_value_before_any_write() {
        let net = Arc::new(Network::new(3));
        let reg = AbdRegister::new(net, 42u32);
        assert_eq!(reg.read(P0), 42);
    }

    #[test]
    fn write_then_read_round_trips() {
        let net = Arc::new(Network::new(3));
        let reg = AbdRegister::new(net, 0u32);
        reg.write(P0, 5);
        assert_eq!(reg.read(P1), 5);
        reg.write(P1, 6);
        assert_eq!(reg.read(P0), 6);
    }

    #[test]
    fn survives_minority_crash() {
        let net = Arc::new(Network::new(5));
        let reg = AbdRegister::new(Arc::clone(&net), 0u32);
        reg.write(P0, 1);
        net.crash(0);
        net.crash(3);
        reg.write(P1, 2);
        assert_eq!(reg.read(P0), 2);
    }

    #[test]
    fn state_written_during_crash_visible_after_restart() {
        let net = Arc::new(Network::new(3));
        let reg = AbdRegister::new(Arc::clone(&net), 0u32);
        net.crash(1);
        reg.write(P0, 9);
        net.restart(1);
        net.crash(0); // now a different minority is down
        assert_eq!(reg.read(P1), 9, "intersecting majorities carry the value");
    }

    #[test]
    fn registers_are_independent() {
        let net = Arc::new(Network::new(3));
        let a = AbdRegister::new(Arc::clone(&net), 0u32);
        let b = AbdRegister::new(Arc::clone(&net), 0u32);
        a.write(P0, 1);
        b.write(P0, 2);
        assert_eq!(a.read(P1), 1);
        assert_eq!(b.read(P1), 2);
    }

    #[test]
    fn concurrent_readers_and_writers_no_tearing() {
        let net = Arc::new(Network::with_config(crate::NetworkConfig {
            replicas: 3,
            jitter_seed: Some(7),
        }));
        let reg = Arc::new(AbdRegister::new(net, (0u64, 0u64)));
        std::thread::scope(|s| {
            for w in 0..2usize {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    for k in 1..=50u64 {
                        reg.write(ProcessId::new(w), (k, k * 3));
                    }
                });
            }
            for r in 2..4usize {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    for _ in 0..50 {
                        let (a, b) = reg.read(ProcessId::new(r));
                        assert_eq!(b, a * 3);
                    }
                });
            }
        });
    }
}
