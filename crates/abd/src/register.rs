use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use snapshot_core::Deadline;
use snapshot_obs::{AbdPhaseKind, Event};
use snapshot_registers::{ProcessId, Register, TryRegister};
use snapshot_wire::{WireError, WireValue};

use crate::error::{AbdError, AbdPhase};
use crate::message::ErasedValue;
use crate::transport::{Payload, PhaseRequest, ReplyBody, Transport};
use crate::{Network, RegisterId, Tag};

/// Explicit max-by-tag fold over query-phase replies.
///
/// The chosen reply is the lexicographic maximum of `(tag, has_value)`:
/// a strictly higher tag always wins, and at equal tags a reply that
/// carries a value beats one that does not. In well-formed executions a
/// valueless reply only ever carries `Tag::default()` (replicas store tag
/// and value together), but the fold enforces the invariant rather than
/// relying on it: no `None` reply can ever displace a seen value, and the
/// returned tag is always the maximum tag observed.
fn fold_max_tag(best: &mut (Tag, Option<Payload>), tag: Tag, value: Option<Payload>) {
    if (tag, value.is_some()) > (best.0, best.1.is_some()) {
        *best = (tag, value);
    }
}

/// How a register's values cross its transport.
///
/// In-process transports carry values as type-erased `Arc`s (zero
/// serialization); wire transports carry encoded bytes. The codec is
/// fixed at register construction so a byte-only transport is refused up
/// front, not on first use.
enum Codec<V> {
    /// Values travel as `Arc<dyn Any>` (simulated network).
    Erased,
    /// Values travel as their [`WireValue`] encoding. Plain function
    /// pointers (not boxed closures) so the codec stays `Copy`-cheap and
    /// capture-free.
    Wire {
        enc: fn(&V) -> Vec<u8>,
        dec: fn(&[u8]) -> Result<V, WireError>,
    },
}

impl<V: Clone + Send + Sync + 'static> Codec<V> {
    fn encode(&self, value: V) -> Payload {
        match self {
            Codec::Erased => Payload::Erased(Arc::new(value) as ErasedValue),
            Codec::Wire { enc, .. } => Payload::Bytes(Arc::from(enc(&value).into_boxed_slice())),
        }
    }

    fn decode(&self, register: RegisterId, payload: &Payload) -> Result<V, AbdError> {
        match (self, payload) {
            (Codec::Erased, Payload::Erased(v)) => v
                .downcast_ref::<V>()
                .cloned()
                .ok_or(AbdError::ValueTypeMismatch { register }),
            (Codec::Wire { dec, .. }, Payload::Bytes(b)) => dec(b).map_err(|e| {
                AbdError::DecodeFailed {
                    register,
                    detail: e.to_string(),
                }
            }),
            // A payload of the other shape means two handles address one
            // register through different codecs — the same embedding bug
            // ValueTypeMismatch names.
            _ => Err(AbdError::ValueTypeMismatch { register }),
        }
    }
}

impl<V> fmt::Debug for Codec<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Codec::Erased => "Codec::Erased",
            Codec::Wire { .. } => "Codec::Wire",
        })
    }
}

/// An atomic multi-writer register emulated with the ABD protocol over
/// the replicas of a [`Transport`] — the simulated in-process
/// [`Network`], or a real cluster of `snapshotd` processes via
/// [`RemoteTransport`](crate::RemoteTransport).
///
/// * **write(v)** — phase 1: query all replicas, wait for a majority of
///   `(tag)` replies, pick `seq` one above the maximum; phase 2: store
///   `(seq, pid, v)` everywhere, wait for a majority of acks.
/// * **read()** — phase 1: query, majority, take the maximum `(tag, v)`;
///   phase 2: *write back* that maximum to a majority before returning
///   (so any read starting after this one completes sees a tag at least
///   as large: no new/old inversion).
///
/// Any two majorities intersect, which is the whole proof sketch: a read's
/// query majority intersects every completed write's store majority, so
/// the read sees the write's tag (or a larger one).
///
/// # Fault tolerance
///
/// Each quorum phase is a retry loop keyed by a fresh request id: the
/// client broadcasts, then retransmits to every replica that has not yet
/// answered under capped exponential backoff with jitter
/// ([`RetryPolicy`](crate::RetryPolicy)), so dropped, duplicated,
/// reordered and delayed messages are masked. Replicas dedupe by request
/// id (a retried `Store` is applied at most once, then re-acked), and the
/// client counts *distinct* replicas toward the quorum, so duplicated
/// replies are harmless — the protocol is duplication-safe by
/// construction. None of this is transport-specific: over real sockets
/// the same loop masks lost connections (the transport drops frames while
/// redialing, and the retransmission path re-sends them).
///
/// # Liveness
///
/// [`AbdRegister::try_read`]/[`AbdRegister::try_write`] block while no
/// majority responds and return [`AbdError::QuorumUnavailable`] once the
/// configured [`op_timeout`](crate::NetworkConfig::op_timeout) elapses —
/// the paper's resilience claim is *exactly* "as long as a majority of
/// the system remains connected". The infallible [`Register`] interface
/// panics on the same condition (it has no error channel), so snapshot
/// constructions built on it should be run within the liveness boundary.
///
/// See the [crate docs](crate) for an example.
pub struct AbdRegister<V> {
    transport: Arc<dyn Transport>,
    id: RegisterId,
    init: V,
    codec: Codec<V>,
}

impl<V: Clone + Send + Sync + 'static> AbdRegister<V> {
    /// Creates a register with initial value `init` on `network`.
    pub fn new(network: Arc<Network>, init: V) -> Self {
        Self::with_transport(network, init)
    }

    /// Creates a register with initial value `init` on any in-process
    /// transport, carrying values type-erased (no serialization).
    ///
    /// # Panics
    ///
    /// Panics if the transport only carries encoded bytes
    /// ([`Transport::requires_bytes`]) — construct with
    /// [`with_wire_codec`](Self::with_wire_codec) instead.
    pub fn with_transport(transport: Arc<dyn Transport>, init: V) -> Self {
        assert!(
            !transport.requires_bytes(),
            "transport `{}` carries only encoded bytes; construct the register \
             with `with_wire_codec`",
            transport.kind()
        );
        let id = transport.allocate_register();
        AbdRegister {
            transport,
            id,
            init,
            codec: Codec::Erased,
        }
    }

    /// The register's id within its transport (diagnostics, and the wire
    /// address replicas key their stores by).
    pub fn id(&self) -> RegisterId {
        self.id
    }

    /// The transport this register's quorum phases run over.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Reads the register, returning a typed error instead of panicking
    /// when no majority of replicas answers within the configured timeout.
    pub fn try_read(&self, reader: ProcessId) -> Result<V, AbdError> {
        self.try_read_by(reader, Deadline::none())
    }

    /// Like [`try_read`](Self::try_read), with each quorum phase's wait
    /// additionally capped at `deadline`: a read that cannot assemble its
    /// majority before the caller's budget runs out fails fast with
    /// [`AbdError::QuorumUnavailable`] instead of waiting out the full
    /// [`op_timeout`](crate::NetworkConfig::op_timeout).
    pub fn try_read_by(&self, reader: ProcessId, deadline: Deadline) -> Result<V, AbdError> {
        let (tag, value) = self.query_majority(reader, deadline)?;
        match value {
            Some(payload) => {
                // Write-back before returning: later reads must not see an
                // older maximum. The payload is forwarded as received — no
                // decode/re-encode round trip.
                self.store_majority(reader, tag, payload.clone(), deadline)?;
                self.codec.decode(self.id, &payload)
            }
            None => Ok(self.init.clone()),
        }
    }

    /// Writes the register, returning a typed error instead of panicking
    /// when no majority of replicas answers within the configured timeout.
    ///
    /// On `Err(QuorumUnavailable)` the write is *indeterminate*: the value
    /// may have reached some replicas and may yet become visible (exactly
    /// like a crashed writer in the paper's model).
    pub fn try_write(&self, writer: ProcessId, value: V) -> Result<(), AbdError> {
        self.try_write_by(writer, value, Deadline::none())
    }

    /// Like [`try_write`](Self::try_write), with each quorum phase's wait
    /// additionally capped at `deadline`. A write cut off by the deadline
    /// is *indeterminate* exactly like one that lost its quorum.
    pub fn try_write_by(
        &self,
        writer: ProcessId,
        value: V,
        deadline: Deadline,
    ) -> Result<(), AbdError> {
        let (max_tag, _) = self.query_majority(writer, deadline)?;
        let tag = Tag {
            seq: max_tag.seq + 1,
            writer: writer.get(),
        };
        self.store_majority(writer, tag, self.codec.encode(value), deadline)
    }

    /// Phase 1 of both operations: query all, await a majority, return the
    /// maximum `(tag, value)` seen (value `None` = still the initial
    /// value).
    fn query_majority(
        &self,
        pid: ProcessId,
        caller_deadline: Deadline,
    ) -> Result<(Tag, Option<Payload>), AbdError> {
        let mut best: (Tag, Option<Payload>) = (Tag::default(), None);
        self.run_quorum_phase(
            pid,
            AbdPhase::Query,
            caller_deadline,
            PhaseRequest::Query { register: self.id },
            |body| match body {
                ReplyBody::Value { tag, payload } => {
                    fold_max_tag(&mut best, tag, payload);
                    true
                }
                ReplyBody::Ack | ReplyBody::Error { .. } => false,
            },
        )?;
        Ok(best)
    }

    /// Phase 2: store `(tag, value)` everywhere, await a majority of acks.
    fn store_majority(
        &self,
        pid: ProcessId,
        tag: Tag,
        payload: Payload,
        caller_deadline: Deadline,
    ) -> Result<(), AbdError> {
        self.run_quorum_phase(
            pid,
            AbdPhase::Store,
            caller_deadline,
            PhaseRequest::Store {
                register: self.id,
                tag,
                payload,
            },
            |body| matches!(body, ReplyBody::Ack),
        )
    }

    /// One quorum phase: broadcast the request, collect replies from
    /// distinct replicas (duplicates discarded) until a majority accepted,
    /// retransmitting to silent replicas under capped exponential backoff,
    /// and giving up with [`AbdError::QuorumUnavailable`] at the
    /// configured operation timeout.
    ///
    /// `on_reply` returns whether the reply was of the expected kind; only
    /// accepted replies count toward the quorum (a typed
    /// [`ReplyBody::Error`] never does). `pid` is the client process
    /// running the phase, used to attribute trace events.
    /// `caller_deadline` caps the phase's wait below the configured
    /// `op_timeout`: whichever bound arrives first ends the phase with
    /// [`AbdError::QuorumUnavailable`].
    fn run_quorum_phase(
        &self,
        pid: ProcessId,
        phase: AbdPhase,
        caller_deadline: Deadline,
        request: PhaseRequest,
        mut on_reply: impl FnMut(ReplyBody) -> bool,
    ) -> Result<(), AbdError> {
        let transport = &*self.transport;
        // Fail fast on a poisoned fleet: no broadcast, no backoff, no
        // timeout wait — retries against a panicked replica thread (or an
        // explicitly poisoned network) can never succeed.
        if transport.poisoned() {
            return Err(AbdError::NetworkPoisoned);
        }
        let id = transport.fresh_request_id();
        let started = Instant::now();
        let deadline = caller_deadline.cap(started + transport.op_timeout());
        let needed = transport.quorum();
        let retry = transport.retry_policy().clone();
        let mut acked = vec![false; transport.replicas()];
        let mut acks = 0usize;
        let kind = match phase {
            AbdPhase::Query => AbdPhaseKind::Query,
            AbdPhase::Store => AbdPhaseKind::Store,
        };
        transport.trace().emit(pid.get(), Event::AbdPhaseStart { phase: kind });

        let mut quorum = transport.begin_phase(id, request);
        quorum.send_where(&mut |_| true);
        let mut backoff = retry.initial_backoff;
        let mut attempt = 0u32;
        loop {
            let wake = deadline.min(Instant::now() + backoff);
            while let Some(reply) = quorum.recv_deadline(wake) {
                if reply.from >= acked.len() || acked[reply.from] {
                    continue;
                }
                let from = reply.from;
                if !on_reply(reply.body) {
                    continue;
                }
                acked[from] = true;
                acks += 1;
                if acks >= needed {
                    let elapsed = started.elapsed();
                    transport.record_quorum_latency(elapsed);
                    transport.trace().emit(
                        pid.get(),
                        Event::AbdQuorumReached {
                            phase: kind,
                            acks,
                            elapsed_us: elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
                        },
                    );
                    return Ok(());
                }
            }
            if Instant::now() >= deadline {
                transport
                    .trace()
                    .emit(pid.get(), Event::AbdQuorumFailed { phase: kind, acks, needed });
                return Err(AbdError::QuorumUnavailable {
                    phase,
                    acks,
                    needed,
                    elapsed: started.elapsed(),
                });
            }
            // A fleet poisoned mid-phase cannot answer any more: stop
            // retransmitting instead of spinning until the timeout.
            if transport.poisoned() {
                return Err(AbdError::NetworkPoisoned);
            }
            // Messages may have been dropped: retransmit (same request id,
            // so replicas dedupe) to every replica still silent.
            attempt += 1;
            let resent = quorum.send_where(&mut |i| !acked[i]);
            transport.note_retries(resent as u64);
            transport
                .trace()
                .emit(pid.get(), Event::AbdRetransmit { phase: kind, attempt, resent });
            backoff = retry.next_backoff(backoff, id, attempt);
        }
    }
}

impl<V: WireValue + Clone + Send + Sync + 'static> AbdRegister<V> {
    /// Creates a register at the explicit wire address `id`, carrying
    /// values as their [`WireValue`] encoding — required for byte-only
    /// transports ([`RemoteTransport`](crate::RemoteTransport)), and
    /// usable over the simulated network too (the bytes round-trip
    /// through the fault-injection plane untouched, which is how the
    /// codec path is differentially tested).
    ///
    /// The address is explicit, not allocated, because every client
    /// process of one cluster must agree on it: `snapshotd` replicas key
    /// their stores by `(lane, segment)` ([`RegisterId::from_lane_segment`]).
    pub fn with_wire_codec(transport: Arc<dyn Transport>, id: RegisterId, init: V) -> Self {
        AbdRegister {
            transport,
            id,
            init,
            codec: Codec::Wire {
                enc: |v| v.encode_to_bytes(),
                dec: V::decode_bytes,
            },
        }
    }
}

impl<V: Clone + Send + Sync + 'static> Register<V> for AbdRegister<V> {
    fn read(&self, reader: ProcessId) -> V {
        self.try_read(reader)
            .unwrap_or_else(|e| panic!("ABD register {:?}: read failed: {e}", self.id))
    }

    fn write(&self, writer: ProcessId, value: V) {
        self.try_write(writer, value)
            .unwrap_or_else(|e| panic!("ABD register {:?}: write failed: {e}", self.id))
    }
}

impl<V: Clone + Send + Sync + 'static> TryRegister<V> for AbdRegister<V> {
    type Error = AbdError;

    fn try_read(&self, reader: ProcessId) -> Result<V, AbdError> {
        AbdRegister::try_read(self, reader)
    }

    fn try_write(&self, writer: ProcessId, value: V) -> Result<(), AbdError> {
        AbdRegister::try_write(self, writer, value)
    }
}

impl<V> fmt::Debug for AbdRegister<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AbdRegister")
            .field("id", &self.id)
            .field("transport", &self.transport.kind())
            .field("codec", &self.codec)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use crate::{LinkFault, NetworkConfig, RetryPolicy};

    const P0: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);

    fn erase(v: u32) -> Payload {
        Payload::Erased(Arc::new(v) as ErasedValue)
    }

    fn unerase(v: &Payload) -> u32 {
        match v {
            Payload::Erased(v) => *v.downcast_ref::<u32>().unwrap(),
            Payload::Bytes(_) => panic!("expected an erased payload"),
        }
    }

    #[test]
    fn fold_keeps_max_tag_and_prefers_values_at_ties() {
        let t = |seq, writer| Tag { seq, writer };

        // Mixed Some/None replies, in both arrival orders: the None reply
        // (a replica still at the initial value) must never displace a
        // seen value, and the max tag must win.
        let mut best = (Tag::default(), None);
        fold_max_tag(&mut best, Tag::default(), None);
        fold_max_tag(&mut best, t(3, 1), Some(erase(30)));
        fold_max_tag(&mut best, Tag::default(), None);
        fold_max_tag(&mut best, t(5, 0), Some(erase(50)));
        fold_max_tag(&mut best, Tag::default(), None);
        assert_eq!(best.0, t(5, 0));
        assert_eq!(unerase(best.1.as_ref().unwrap()), 50);

        // All-None replies: the (maximum) tag is still tracked.
        let mut best = (Tag::default(), None);
        fold_max_tag(&mut best, Tag::default(), None);
        fold_max_tag(&mut best, Tag::default(), None);
        assert_eq!(best.0, Tag::default());
        assert!(best.1.is_none());

        // Equal tags: a value-carrying reply beats a valueless one,
        // regardless of order.
        let mut best = (Tag::default(), None);
        fold_max_tag(&mut best, t(2, 0), Some(erase(7)));
        fold_max_tag(&mut best, t(2, 0), None);
        assert_eq!(unerase(best.1.as_ref().unwrap()), 7);
        let mut best = (Tag::default(), None);
        fold_max_tag(&mut best, t(2, 0), None);
        fold_max_tag(&mut best, t(2, 0), Some(erase(7)));
        assert_eq!(unerase(best.1.as_ref().unwrap()), 7);

        // A defective higher-tagged None reply cannot clobber the value
        // (the fold keeps the max tag but the invariant "value is the max
        // tagged value seen" is preserved by tag order).
        let mut best = (Tag::default(), None);
        fold_max_tag(&mut best, t(4, 0), Some(erase(9)));
        fold_max_tag(&mut best, t(4, 0), None);
        assert_eq!(best.0, t(4, 0));
        assert_eq!(unerase(best.1.as_ref().unwrap()), 9);
    }

    #[test]
    fn initial_value_before_any_write() {
        let net = Arc::new(Network::new(3));
        let reg = AbdRegister::new(net, 42u32);
        assert_eq!(reg.read(P0), 42);
    }

    #[test]
    fn write_then_read_round_trips() {
        let net = Arc::new(Network::new(3));
        let reg = AbdRegister::new(net, 0u32);
        reg.write(P0, 5);
        assert_eq!(reg.read(P1), 5);
        reg.write(P1, 6);
        assert_eq!(reg.read(P0), 6);
    }

    #[test]
    fn wire_codec_round_trips_over_the_simulated_network() {
        // The differential check behind the remote mode: the same codec
        // a RemoteTransport register uses runs over the simulated network
        // (its bytes cross the fault-injection plane opaquely), so every
        // sim soak also exercises the wire encoding.
        let net: Arc<Network> = Arc::new(Network::new(3));
        let reg: AbdRegister<(u64, String)> = AbdRegister::with_wire_codec(
            Arc::clone(&net) as Arc<dyn Transport>,
            RegisterId::from_lane_segment(2, 7),
            (0u64, String::new()),
        );
        assert_eq!(reg.id().lane_segment(), (2, 7));
        assert_eq!(reg.read(P0), (0, String::new()));
        reg.write(P0, (4, String::from("wire")));
        assert_eq!(reg.read(P1), (4, String::from("wire")));
    }

    #[test]
    fn survives_minority_crash() {
        let net = Arc::new(Network::new(5));
        let reg = AbdRegister::new(Arc::clone(&net), 0u32);
        reg.write(P0, 1);
        net.crash(0);
        net.crash(3);
        reg.write(P1, 2);
        assert_eq!(reg.read(P0), 2);
    }

    #[test]
    fn state_written_during_crash_visible_after_restart() {
        let net = Arc::new(Network::new(3));
        let reg = AbdRegister::new(Arc::clone(&net), 0u32);
        net.crash(1);
        reg.write(P0, 9);
        net.restart(1);
        net.crash(0); // now a different minority is down
        assert_eq!(reg.read(P1), 9, "intersecting majorities carry the value");
    }

    #[test]
    fn registers_are_independent() {
        let net = Arc::new(Network::new(3));
        let a = AbdRegister::new(Arc::clone(&net), 0u32);
        let b = AbdRegister::new(Arc::clone(&net), 0u32);
        a.write(P0, 1);
        b.write(P0, 2);
        assert_eq!(a.read(P1), 1);
        assert_eq!(b.read(P1), 2);
    }

    #[test]
    fn majority_partition_returns_typed_error_then_recovers() {
        let net = Arc::new(Network::with_config(
            NetworkConfig::new(3)
                .with_op_timeout(Duration::from_millis(120))
                .with_retry(RetryPolicy {
                    initial_backoff: Duration::from_millis(1),
                    max_backoff: Duration::from_millis(10),
                    multiplier: 2,
                    jitter: 0.5,
                }),
        ));
        let reg = AbdRegister::new(Arc::clone(&net), 0u32);
        reg.write(P0, 3);

        net.partition(&[0, 1]); // majority gone
        match reg.try_read(P1) {
            Err(AbdError::QuorumUnavailable {
                phase: AbdPhase::Query,
                acks,
                needed,
                elapsed,
            }) => {
                assert!(acks < needed, "{acks} acks should not reach quorum {needed}");
                assert!(elapsed >= Duration::from_millis(120));
            }
            other => panic!("expected QuorumUnavailable, got {other:?}"),
        }
        assert!(
            reg.try_write(P0, 4).is_err(),
            "writes starve without a majority too"
        );

        net.heal();
        // The indeterminate write may or may not have landed; either way
        // the register must answer again and stay well-formed.
        let v = reg.try_read(P1).expect("healed majority answers");
        assert!(v == 3 || v == 4, "read {v}");
        assert!(net.stats().retries > 0, "starved phases must have retried");
    }

    #[test]
    fn caller_deadline_caps_the_quorum_wait() {
        let net = Arc::new(Network::with_config(
            NetworkConfig::new(3).with_op_timeout(Duration::from_secs(5)),
        ));
        let reg = AbdRegister::new(Arc::clone(&net), 0u32);
        net.partition(&[0, 1]); // majority gone
        let started = Instant::now();
        let err = reg
            .try_read_by(P1, Deadline::after(Duration::from_millis(20)))
            .unwrap_err();
        assert!(matches!(err, AbdError::QuorumUnavailable { .. }), "{err:?}");
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "a 20ms deadline must cut the 5s op_timeout short"
        );
        net.heal();
        assert_eq!(reg.try_read_by(P1, Deadline::none()).unwrap(), 0);
    }

    #[test]
    fn retries_mask_a_very_lossy_link() {
        let plan = crate::FaultPlan::seeded(17).with_default(
            LinkFault::healthy()
                .with_drop(0.4)
                .with_duplicate(0.3)
                .with_reorder(0.3, 3)
                .with_reply_drop(0.2),
        );
        let net = Arc::new(Network::with_config(
            NetworkConfig::new(3)
                .with_faults(plan)
                .with_retry(RetryPolicy {
                    initial_backoff: Duration::from_micros(200),
                    max_backoff: Duration::from_millis(5),
                    multiplier: 2,
                    jitter: 0.5,
                }),
        ));
        let reg = AbdRegister::new(Arc::clone(&net), 0u32);
        for k in 1..=20u32 {
            reg.try_write(P0, k).expect("majority is connected");
            assert_eq!(reg.try_read(P1).unwrap(), k);
        }
        let stats = net.stats();
        assert!(stats.messages_dropped > 0, "{stats:?}");
        assert!(stats.messages_duplicated > 0, "{stats:?}");
        assert!(stats.retries > 0, "{stats:?}");
        assert!(net.quorum_latency().count() > 0);
    }

    #[test]
    fn traced_operations_emit_phase_events_onto_the_shared_registry() {
        use snapshot_obs::{CountingSink, Registry, Sink, Trace};

        let sink = Arc::new(CountingSink::new());
        let registry = Arc::new(Registry::new());
        let net = Arc::new(Network::with_config(
            NetworkConfig::new(3)
                .with_trace(Trace::new(Arc::clone(&sink) as Arc<dyn Sink>))
                .with_registry(Arc::clone(&registry)),
        ));
        let reg = AbdRegister::new(Arc::clone(&net), 0u32);
        reg.write(P0, 7);
        assert_eq!(reg.read(P1), 7);

        // write = query + store; read = query + write-back store.
        assert_eq!(sink.count("abd_phase_start"), 4);
        assert_eq!(sink.count("abd_quorum_reached"), 4);
        assert_eq!(sink.count("abd_quorum_failed"), 0);

        // The same traffic is visible through both the legacy stats view
        // and the shared registry; the transport kind is a marker gauge
        // (sim and real transports share every other key).
        let sent = registry.counter("abd.messages_sent").get();
        assert_eq!(sent, net.stats().messages_sent);
        assert!(sent >= 12, "four quorum phases x three replicas, got {sent}");
        assert_eq!(
            registry.histogram("abd.quorum_latency_us").snapshot().count(),
            net.quorum_latency().count(),
        );
        assert_eq!(registry.gauge("abd.transport.sim").get(), 1);
    }

    #[test]
    fn concurrent_readers_and_writers_no_tearing() {
        let net = Arc::new(Network::with_config(NetworkConfig::new(3).with_jitter(7)));
        let reg = Arc::new(AbdRegister::new(net, (0u64, 0u64)));
        std::thread::scope(|s| {
            for w in 0..2usize {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    for k in 1..=50u64 {
                        reg.write(ProcessId::new(w), (k, k * 3));
                    }
                });
            }
            for r in 2..4usize {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    for _ in 0..50 {
                        let (a, b) = reg.read(ProcessId::new(r));
                        assert_eq!(b, a * 3);
                    }
                });
            }
        });
    }
}
