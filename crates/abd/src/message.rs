use std::any::Any;
use std::fmt;
use std::sync::Arc;

use crossbeam::channel::Sender;

/// Identifier of one emulated register within a [`Network`].
///
/// [`Network`]: crate::Network
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegisterId(pub(crate) u64);

impl RegisterId {
    /// The id addressing `(lane, segment)` on a wire transport:
    /// `snapshotd` replicas key their stores by this pair, and
    /// `AbdSnapshotCore::remote` names its registers with it so every
    /// client process addressing the same cluster addresses the same
    /// registers (a simulated network instead hands out sequential ids
    /// private to itself).
    pub fn from_lane_segment(lane: u32, segment: u32) -> RegisterId {
        RegisterId(u64::from(lane) << 32 | u64::from(segment))
    }

    /// The `(lane, segment)` pair this id addresses on the wire (an id
    /// allocated by a simulated network decomposes too — sequential ids
    /// land in lane 0).
    pub fn lane_segment(self) -> (u32, u32) {
        ((self.0 >> 32) as u32, self.0 as u32)
    }
}

/// Identifier of one client quorum round (a query or store phase).
///
/// Every phase draws a fresh id from its network and stamps it on the
/// initial broadcast *and* every retransmission, so replicas can
/// deduplicate retries (`Store` is applied at most once per id) and
/// clients can discard duplicate replies. This is what makes the client's
/// retry loop idempotent under message duplication: a link may deliver a
/// request twice, or a retransmission may race its original, and the
/// observable outcome is the same.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(
    /// The raw id (a wire transport carries it verbatim in its frames).
    pub u64,
);

/// The ABD logical timestamp: `(seq, writer)`, totally ordered.
///
/// Replicas keep the highest-tagged value they have seen per register;
/// writers pick a `seq` one above the majority maximum; readers return the
/// majority maximum (after writing it back).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag {
    /// Logical sequence number.
    pub seq: u64,
    /// Writer process id (tie-breaker).
    pub writer: usize,
}

/// Type-erased register value as stored by replicas (registers of any
/// `Clone + Send + Sync` value type share one replica fleet).
pub type ErasedValue = Arc<dyn Any + Send + Sync>;

/// A client-to-replica request.
///
/// `Clone` so the fault-injection layer can duplicate deliveries and the
/// client can retransmit: both paths reuse the same reply channel and
/// request id, and replicas answer every delivery (re-acking is how a
/// client whose *reply* was dropped ever completes).
#[derive(Clone)]
pub(crate) enum Request {
    /// "Send me your `(tag, value)` for this register."
    Query {
        id: RequestId,
        register: RegisterId,
        reply: Sender<Response>,
    },
    /// "Store this `(tag, value)` if it exceeds yours, then ack."
    Store {
        id: RequestId,
        register: RegisterId,
        tag: Tag,
        value: ErasedValue,
        reply: Sender<Response>,
    },
    /// Orderly shutdown of the replica thread.
    Shutdown,
}

impl fmt::Debug for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Query { id, register, .. } => f
                .debug_struct("Query")
                .field("id", id)
                .field("register", register)
                .finish(),
            Request::Store {
                id, register, tag, ..
            } => f
                .debug_struct("Store")
                .field("id", id)
                .field("register", register)
                .field("tag", tag)
                .finish(),
            Request::Shutdown => f.write_str("Shutdown"),
        }
    }
}

/// A replica-to-client response, stamped with the replying replica's index
/// and the request id it answers.
///
/// Clients count *distinct* replicas per id toward the quorum, so
/// duplicated or re-acked replies are harmless.
#[derive(Clone)]
pub(crate) struct Response {
    /// Index of the replying replica.
    pub from: usize,
    /// The request id this reply answers.
    pub id: RequestId,
    /// The payload.
    pub body: ResponseBody,
}

/// Payload of a [`Response`].
#[derive(Clone)]
pub(crate) enum ResponseBody {
    /// Current `(tag, value)` held by the replica (value absent if the
    /// replica has never stored this register).
    QueryReply {
        tag: Tag,
        value: Option<ErasedValue>,
    },
    /// Store acknowledged.
    StoreAck,
}

impl fmt::Debug for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("Response");
        s.field("from", &self.from).field("id", &self.id);
        match &self.body {
            ResponseBody::QueryReply { tag, value } => s
                .field("tag", tag)
                .field("has_value", &value.is_some())
                .finish(),
            ResponseBody::StoreAck => s.field("body", &"StoreAck").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_order_by_seq_then_writer() {
        let a = Tag { seq: 1, writer: 9 };
        let b = Tag { seq: 2, writer: 0 };
        let c = Tag { seq: 2, writer: 1 };
        assert!(a < b && b < c);
        assert_eq!(Tag::default(), Tag { seq: 0, writer: 0 });
    }

    #[test]
    fn requests_are_cloneable_for_duplication_and_retransmit() {
        let (tx, _rx) = crossbeam::channel::unbounded();
        let req = Request::Store {
            id: RequestId(7),
            register: RegisterId(0),
            tag: Tag { seq: 1, writer: 0 },
            value: Arc::new(5u32) as ErasedValue,
            reply: tx,
        };
        let dup = req.clone();
        match (req, dup) {
            (Request::Store { id: a, .. }, Request::Store { id: b, .. }) => assert_eq!(a, b),
            _ => unreachable!(),
        }
    }
}
