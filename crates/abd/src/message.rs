use std::any::Any;
use std::fmt;
use std::sync::Arc;

use crossbeam::channel::Sender;

/// Identifier of one emulated register within a [`Network`].
///
/// [`Network`]: crate::Network
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegisterId(pub(crate) u64);

/// The ABD logical timestamp: `(seq, writer)`, totally ordered.
///
/// Replicas keep the highest-tagged value they have seen per register;
/// writers pick a `seq` one above the majority maximum; readers return the
/// majority maximum (after writing it back).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag {
    /// Logical sequence number.
    pub seq: u64,
    /// Writer process id (tie-breaker).
    pub writer: usize,
}

/// Type-erased register value as stored by replicas (registers of any
/// `Clone + Send + Sync` value type share one replica fleet).
pub(crate) type ErasedValue = Arc<dyn Any + Send + Sync>;

/// A client-to-replica request.
pub(crate) enum Request {
    /// "Send me your `(tag, value)` for this register."
    Query {
        register: RegisterId,
        reply: Sender<Response>,
    },
    /// "Store this `(tag, value)` if it exceeds yours, then ack."
    Store {
        register: RegisterId,
        tag: Tag,
        value: ErasedValue,
        reply: Sender<Response>,
    },
    /// Orderly shutdown of the replica thread.
    Shutdown,
}

impl fmt::Debug for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Query { register, .. } => {
                f.debug_struct("Query").field("register", register).finish()
            }
            Request::Store { register, tag, .. } => f
                .debug_struct("Store")
                .field("register", register)
                .field("tag", tag)
                .finish(),
            Request::Shutdown => f.write_str("Shutdown"),
        }
    }
}

/// A replica-to-client response.
pub(crate) enum Response {
    /// Current `(tag, value)` held by the replica (value absent if the
    /// replica has never stored this register).
    QueryReply {
        tag: Tag,
        value: Option<ErasedValue>,
    },
    /// Store acknowledged.
    StoreAck,
}

impl fmt::Debug for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::QueryReply { tag, value } => f
                .debug_struct("QueryReply")
                .field("tag", tag)
                .field("has_value", &value.is_some())
                .finish(),
            Response::StoreAck => f.write_str("StoreAck"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_order_by_seq_then_writer() {
        let a = Tag { seq: 1, writer: 9 };
        let b = Tag { seq: 2, writer: 0 };
        let c = Tag { seq: 2, writer: 1 };
        assert!(a < b && b < c);
        assert_eq!(Tag::default(), Tag { seq: 0, writer: 0 });
    }
}
