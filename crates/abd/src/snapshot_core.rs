//! The unbounded single-writer snapshot construction over ABD registers,
//! with failure as a first-class value.
//!
//! Section 6 of the paper: applying the \[ABD\] register emulators to the
//! snapshot constructions yields atomic snapshot memory in message-passing
//! systems, "resilient to process and link failures, as long as a majority
//! of the system remains connected". [`AbdSnapshotCore`] is that stack
//! built *fallibly*: it runs Figure 2's double-collect + borrowed-view
//! algorithm over one [`AbdRegister`] lane per process, and where the
//! in-process constructions could only panic or hang past the liveness
//! boundary, every operation here returns a typed
//! [`CoreError`] the service layer can retry, shed, or surface.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use snapshot_core::{CoreError, Deadline, RequestCtx, ScanStats, SnapshotView, TrySnapshotCore};
use snapshot_obs::{SpanId, SpanKind, SpanStatus};
use snapshot_registers::{CachePadded, ProcessId};
use snapshot_wire::{Reader, WireError, WireValue};

use crate::transport::Transport;
use crate::{AbdError, AbdRegister, Network, RegisterId};

/// Contents of register `r_i` in Figure 2, stored as one ABD register
/// value: `(value, seq, view)` written in one (emulated) atomic write.
#[derive(Clone)]
struct AbdRecord<V> {
    value: V,
    seq: u64,
    view: SnapshotView<V>,
}

/// The record's wire form (for [`AbdSnapshotCore::remote`]): value, seq,
/// then the embedded view as a length-prefixed sequence. Private to this
/// module — replicas carry it opaquely; only clients decode it.
impl<V: WireValue + Clone + Send + Sync + 'static> WireValue for AbdRecord<V> {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.value.encode_into(out);
        self.seq.encode_into(out);
        out.extend_from_slice(&(self.view.len() as u32).to_le_bytes());
        for v in self.view.as_slice() {
            v.encode_into(out);
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let value = V::decode_from(r)?;
        let seq = u64::decode_from(r)?;
        let len = u32::decode_from(r)?;
        if len as usize > r.remaining() {
            return Err(WireError::BadLength {
                field: "view",
                len: u64::from(len),
            });
        }
        let mut view = Vec::with_capacity(len as usize);
        for _ in 0..len {
            view.push(V::decode_from(r)?);
        }
        Ok(AbdRecord {
            value,
            seq,
            view: SnapshotView::from(view),
        })
    }
}

fn core_error(e: AbdError) -> CoreError {
    match e {
        // The liveness boundary: a healed partition or restarted replica
        // can make the next attempt succeed.
        AbdError::QuorumUnavailable { .. } => CoreError::Unavailable { reason: e.to_string() },
        // Terminal faults: retries cannot succeed.
        AbdError::NetworkPoisoned
        | AbdError::ValueTypeMismatch { .. }
        | AbdError::DecodeFailed { .. } => CoreError::Failed { reason: e.to_string() },
    }
}

/// The unbounded single-writer snapshot (Figure 2) emulated over the
/// replicas of a [`Network`], exposed through the fallible
/// [`TrySnapshotCore`] interface.
///
/// Each of the `n` lanes owns one [`AbdRegister`] holding `(value, seq,
/// view)`. A scan runs double collects until two consecutive collects
/// agree on every sequence number (Observation 1: the second collect is a
/// snapshot) or some lane is observed to move twice (Observation 2: its
/// embedded view is borrowed). An update runs the embedded scan, then one
/// register write of `(value, seq + 1, view)` — wait-free in register
/// operations by the paper's pigeonhole bound of `n + 1` double collects.
///
/// Every register operation is two quorum phases that can starve: a drop,
/// partition, or crashed majority surfaces as
/// [`CoreError::Unavailable`] (retryable — heal the network and try
/// again), and a poisoned fleet as [`CoreError::Failed`] (terminal). An
/// errored update is *indeterminate*: the write may have reached some
/// replicas and may yet become visible, exactly like a crashed writer in
/// the paper's model — its sequence number is consumed either way, so a
/// retry never reuses one.
///
/// The single-writer discipline is per **lane**: the caller (normally
/// `snapshot-service`) must run at most one operation per lane at a time;
/// a busy lane panics, mirroring the in-process constructions' handle
/// registry.
pub struct AbdSnapshotCore<V> {
    transport: Arc<dyn Transport>,
    regs: Box<[AbdRegister<AbdRecord<V>>]>,
    /// Next sequence number per lane. Authoritative because registers are
    /// allocated fresh by this core and written only by their own lane;
    /// bumped *before* each write so an indeterminate (errored) write
    /// still consumes its number.
    seqs: Box<[CachePadded<AtomicU64>]>,
    busy: Box<[AtomicBool]>,
    n: usize,
}

impl<V: Clone + Send + Sync + 'static> AbdSnapshotCore<V> {
    /// Creates the object for `n` lanes over `network`'s replicas, every
    /// segment holding `init`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(network: &Arc<Network>, n: usize, init: V) -> Self {
        Self::over(Arc::clone(network) as Arc<dyn Transport>, n, init)
    }

    /// Creates the object for `n` lanes over any in-process transport's
    /// replicas, every segment holding `init`. Values stay type-erased
    /// (no serialization); for a byte-only transport use
    /// [`remote`](Self::remote).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, or if the transport only carries encoded
    /// bytes ([`Transport::requires_bytes`]).
    pub fn over(transport: Arc<dyn Transport>, n: usize, init: V) -> Self {
        assert!(n > 0, "a snapshot object needs at least one process");
        let initial_view = SnapshotView::from(vec![init.clone(); n]);
        AbdSnapshotCore {
            regs: (0..n)
                .map(|_| {
                    AbdRegister::with_transport(
                        Arc::clone(&transport),
                        AbdRecord { value: init.clone(), seq: 0, view: initial_view.clone() },
                    )
                })
                .collect(),
            seqs: (0..n).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            busy: (0..n).map(|_| AtomicBool::new(false)).collect(),
            transport,
            n,
        }
    }

    /// The transport this core's registers run over.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    fn claim(&self, lane: ProcessId) -> LaneGuard<'_> {
        let i = lane.get();
        assert!(i < self.n, "lane {i} out of range ({} lanes)", self.n);
        let was = self.busy[i].swap(true, Ordering::AcqRel);
        assert!(!was, "lane {i} already has an operation in flight");
        LaneGuard { flag: &self.busy[i] }
    }

    /// One collect: read all `n` registers. Any starved quorum phase
    /// aborts the collect with a typed error; `deadline` caps each
    /// register read's quorum waits. When `parent` names a span (a traced
    /// request's collect), the pass runs inside a
    /// [`SpanKind::QuorumQuery`] span on the network's trace, so a
    /// flight recording attributes a starved scan to its quorum wait.
    fn collect(
        &self,
        lane: ProcessId,
        deadline: Deadline,
        parent: SpanId,
    ) -> Result<Vec<AbdRecord<V>>, CoreError> {
        let span = self.transport.trace().span(lane.get(), SpanKind::QuorumQuery, parent);
        span.note("registers", self.n as u64);
        let out: Result<Vec<AbdRecord<V>>, CoreError> = (0..self.n)
            .map(|j| self.regs[j].try_read_by(lane, deadline).map_err(core_error))
            .collect();
        span.end(if out.is_ok() { SpanStatus::Ok } else { SpanStatus::Error });
        out
    }

    /// One **subset** collect: read only the requested registers, inside
    /// a [`SpanKind::QuorumQuery`] span noting how many it touched — the
    /// flight recorder shows `k`, not `n`, which is the whole point.
    fn collect_subset(
        &self,
        lane: ProcessId,
        segments: &[usize],
        deadline: Deadline,
        parent: SpanId,
    ) -> Result<Vec<AbdRecord<V>>, CoreError> {
        let span = self.transport.trace().span(lane.get(), SpanKind::QuorumQuery, parent);
        span.note("registers", segments.len() as u64);
        let out: Result<Vec<AbdRecord<V>>, CoreError> = segments
            .iter()
            .map(|&j| self.regs[j].try_read_by(lane, deadline).map_err(core_error))
            .collect();
        span.end(if out.is_ok() { SpanStatus::Ok } else { SpanStatus::Error });
        out
    }

    /// `procedure scan_i` of Figure 2, fallibly. The caller holds the
    /// lane claim. `parent` is the request's collect span
    /// ([`SpanId::NONE`] for untraced callers).
    fn scan_inner(
        &self,
        lane: ProcessId,
        deadline: Deadline,
        parent: SpanId,
    ) -> Result<(SnapshotView<V>, ScanStats), CoreError> {
        let n = self.n;
        let mut moved = vec![0u8; n];
        let mut stats = ScanStats::default();
        loop {
            let a = self.collect(lane, deadline, parent)?; // line 1
            let b = self.collect(lane, deadline, parent)?; // line 2
            stats.double_collects += 1;
            stats.reads += 2 * n as u64;
            debug_assert!(
                stats.double_collects as usize <= n + 1,
                "wait-freedom bound violated: {} double collects for n = {n}",
                stats.double_collects
            );
            if (0..n).all(|j| a[j].seq == b[j].seq) {
                // Observation 1: nobody moved between the collects.
                let values = b.into_iter().map(|r| r.value).collect::<Vec<_>>();
                return Ok((SnapshotView::from(values), stats));
            }
            for j in 0..n {
                if a[j].seq != b[j].seq {
                    if moved[j] == 1 {
                        // Observation 2: lane j completed a whole update
                        // (embedded scan included) inside our interval.
                        stats.borrowed = true;
                        return Ok((b[j].view.clone(), stats));
                    }
                    moved[j] += 1;
                }
            }
        }
    }
}

impl<V: WireValue + Clone + Send + Sync + 'static> AbdSnapshotCore<V> {
    /// Creates the object for `n` lanes over a **wire** transport — the
    /// remote-mode constructor: the same Figure-2 construction, the same
    /// service stack above it, but every register quorum phase crosses
    /// real sockets to `snapshotd` replicas. Records travel as their
    /// [`WireValue`] encoding; register `i` is addressed
    /// `(lane = i, segment = i)` ([`RegisterId::from_lane_segment`]), so
    /// every client of one cluster addresses the same registers.
    ///
    /// Lane sequence numbers start at zero: run one client per lane
    /// against a fresh cluster (the single-writer discipline, now
    /// cluster-wide). A client restarted against surviving replica state
    /// must not reuse a lane without re-reading its register first —
    /// the service layer owns lanes for exactly this reason.
    ///
    /// Works over the simulated network too (the codec round-trips
    /// through the fault plane opaquely), which is how remote mode is
    /// differentially tested against in-process mode.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn remote(transport: Arc<dyn Transport>, n: usize, init: V) -> Self {
        assert!(n > 0, "a snapshot object needs at least one process");
        let initial_view = SnapshotView::from(vec![init.clone(); n]);
        AbdSnapshotCore {
            regs: (0..n)
                .map(|i| {
                    AbdRegister::with_wire_codec(
                        Arc::clone(&transport),
                        RegisterId::from_lane_segment(i as u32, i as u32),
                        AbdRecord { value: init.clone(), seq: 0, view: initial_view.clone() },
                    )
                })
                .collect(),
            seqs: (0..n).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            busy: (0..n).map(|_| AtomicBool::new(false)).collect(),
            transport,
            n,
        }
    }
}

/// Releases the lane's busy flag even when an operation errors or panics
/// mid-flight, so a failed operation never wedges its lane.
struct LaneGuard<'a> {
    flag: &'a AtomicBool,
}

impl Drop for LaneGuard<'_> {
    fn drop(&mut self) {
        self.flag.store(false, Ordering::Release);
    }
}

impl<V: Clone + Send + Sync + 'static> TrySnapshotCore<V> for AbdSnapshotCore<V> {
    fn segments(&self) -> usize {
        self.n
    }

    fn lanes(&self) -> usize {
        self.n
    }

    fn single_writer(&self) -> bool {
        true
    }

    fn try_scan(&self, lane: ProcessId) -> Result<(SnapshotView<V>, ScanStats), CoreError> {
        self.try_scan_by(lane, Deadline::none())
    }

    fn try_update(
        &self,
        lane: ProcessId,
        segment: usize,
        value: V,
    ) -> Result<ScanStats, CoreError> {
        self.try_update_by(lane, segment, value, Deadline::none())
    }

    fn try_certified_read(
        &self,
        reader: ProcessId,
        segment: usize,
    ) -> Result<Option<(V, u64)>, CoreError> {
        self.try_certified_read_by(reader, segment, Deadline::none())
    }

    /// A deadline-aware scan: every quorum wait underneath is capped at
    /// `deadline`, so a scan that cannot finish in the caller's budget
    /// surfaces [`CoreError::Unavailable`] fast instead of waiting out
    /// the full per-phase `op_timeout` repeatedly.
    fn try_scan_by(
        &self,
        lane: ProcessId,
        deadline: Deadline,
    ) -> Result<(SnapshotView<V>, ScanStats), CoreError> {
        self.try_scan_ctx(lane, deadline, RequestCtx::none())
    }

    /// The context-carrying scan: quorum passes run inside
    /// [`SpanKind::QuorumQuery`] spans parented under the request's
    /// collect span (no-ops when the network's trace is disabled or the
    /// context is empty).
    fn try_scan_ctx(
        &self,
        lane: ProcessId,
        deadline: Deadline,
        ctx: RequestCtx,
    ) -> Result<(SnapshotView<V>, ScanStats), CoreError> {
        let _guard = self.claim(lane);
        self.scan_inner(lane, deadline, ctx.span)
    }

    /// A deadline-aware update. A deadline-cut write is *indeterminate*
    /// exactly like a quorum-starved one; its sequence number is consumed
    /// either way, so a retry never reuses one.
    fn try_update_by(
        &self,
        lane: ProcessId,
        segment: usize,
        value: V,
        deadline: Deadline,
    ) -> Result<ScanStats, CoreError> {
        self.try_update_ctx(lane, segment, value, deadline, RequestCtx::none())
    }

    /// The context-carrying update: the embedded scan's quorum passes and
    /// the final register write run inside [`SpanKind::QuorumQuery`] /
    /// [`SpanKind::QuorumStore`] spans parented under the request's span.
    fn try_update_ctx(
        &self,
        lane: ProcessId,
        segment: usize,
        value: V,
        deadline: Deadline,
        ctx: RequestCtx,
    ) -> Result<ScanStats, CoreError> {
        assert_eq!(
            segment,
            lane.get(),
            "single-writer construction: lane {lane} cannot update segment {segment}"
        );
        let _guard = self.claim(lane);
        let (view, mut stats) = self.scan_inner(lane, deadline, ctx.span)?; // Fig. 2 update line 1
        let seq = self.seqs[lane.get()].fetch_add(1, Ordering::Relaxed) + 1;
        let store = self.transport.trace().span(lane.get(), SpanKind::QuorumStore, ctx.span);
        store.note("seq", seq);
        let written = self.regs[lane.get()]
            .try_write_by(lane, AbdRecord { value, seq, view }, deadline) // line 2
            .map_err(core_error);
        store.end(if written.is_ok() { SpanStatus::Ok } else { SpanStatus::Error });
        written?;
        stats.writes += 1;
        Ok(stats)
    }

    /// Figure 2's `seq` is the ABA-free certificate: strictly monotone
    /// under the single-writer discipline, so no two writes of a segment
    /// ever share it. Deadline-aware like
    /// [`try_scan_by`](TrySnapshotCore::try_scan_by).
    fn try_certified_read_by(
        &self,
        reader: ProcessId,
        segment: usize,
        deadline: Deadline,
    ) -> Result<Option<(V, u64)>, CoreError> {
        self.try_certified_read_ctx(reader, segment, deadline, RequestCtx::none())
    }

    /// The context-carrying certified read: the single register read runs
    /// inside a [`SpanKind::QuorumQuery`] span under the request's span.
    fn try_certified_read_ctx(
        &self,
        reader: ProcessId,
        segment: usize,
        deadline: Deadline,
        ctx: RequestCtx,
    ) -> Result<Option<(V, u64)>, CoreError> {
        assert!(segment < self.n, "segment {segment} out of range ({} segments)", self.n);
        let span = self.transport.trace().span(reader.get(), SpanKind::QuorumQuery, ctx.span);
        let read = self.regs[segment].try_read_by(reader, deadline).map_err(core_error);
        span.end(if read.is_ok() { SpanStatus::Ok } else { SpanStatus::Error });
        Ok(Some(read.map(|r| (r.value, r.seq))?))
    }

    fn try_scan_subset(
        &self,
        lane: ProcessId,
        segments: &[usize],
    ) -> Result<Option<(Vec<V>, ScanStats)>, CoreError> {
        self.try_scan_subset_by(lane, segments, Deadline::none())
    }

    fn try_scan_subset_by(
        &self,
        lane: ProcessId,
        segments: &[usize],
        deadline: Deadline,
    ) -> Result<Option<(Vec<V>, ScanStats)>, CoreError> {
        self.try_scan_subset_ctx(lane, segments, deadline, RequestCtx::none())
    }

    /// Figure 2's scan over only the requested registers: each round is
    /// two subset collects — `2k` quorum reads instead of `2n`, the
    /// dominant cost in a message-passing emulation. Equal sequence
    /// numbers across the passes certify the second pass (each register
    /// provably took no write over a window containing the instant
    /// between them); a lane observed moving twice completed an update
    /// whose embedded full scan ran inside our interval, so its pass-b
    /// record's view is borrowed and projected onto the subset. At most
    /// `2k + 1` rounds, so this always returns `Ok(Some(..))` — or a
    /// typed error when a quorum phase starves, exactly like the full
    /// scan.
    fn try_scan_subset_ctx(
        &self,
        lane: ProcessId,
        segments: &[usize],
        deadline: Deadline,
        ctx: RequestCtx,
    ) -> Result<Option<(Vec<V>, ScanStats)>, CoreError> {
        debug_assert!(!segments.is_empty(), "canonical subsets are non-empty");
        debug_assert!(segments.windows(2).all(|w| w[0] < w[1]), "subset must be sorted");
        debug_assert!(segments.iter().all(|&s| s < self.n), "segment out of range");
        let _guard = self.claim(lane);
        let k = segments.len();
        let mut moved = vec![0u8; k];
        let mut stats = ScanStats::default();
        loop {
            let a = self.collect_subset(lane, segments, deadline, ctx.span)?;
            let b = self.collect_subset(lane, segments, deadline, ctx.span)?;
            stats.double_collects += 1;
            stats.reads += 2 * k as u64;
            debug_assert!(
                stats.double_collects as usize <= 2 * k + 1,
                "subset wait-freedom bound violated: {} double collects for k = {k}",
                stats.double_collects
            );
            if (0..k).all(|x| a[x].seq == b[x].seq) {
                return Ok(Some((b.into_iter().map(|r| r.value).collect(), stats)));
            }
            for x in 0..k {
                if a[x].seq != b[x].seq {
                    if moved[x] == 1 {
                        stats.borrowed = true;
                        let view = &b[x].view;
                        let values = segments.iter().map(|&j| view[j].clone()).collect();
                        return Ok(Some((values, stats)));
                    }
                    moved[x] += 1;
                }
            }
        }
    }
}

impl<V> fmt::Debug for AbdSnapshotCore<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AbdSnapshotCore")
            .field("lanes", &self.n)
            .field("replicas", &self.transport.replicas())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use crate::{NetworkConfig, RetryPolicy};

    fn fast_net(replicas: usize) -> Arc<Network> {
        Arc::new(Network::with_config(
            NetworkConfig::new(replicas)
                .with_op_timeout(Duration::from_millis(80))
                .with_retry(RetryPolicy {
                    initial_backoff: Duration::from_micros(200),
                    max_backoff: Duration::from_millis(5),
                    multiplier: 2,
                    jitter: 0.5,
                }),
        ))
    }

    #[test]
    fn healthy_round_trip() {
        let net = fast_net(3);
        let core = AbdSnapshotCore::new(&net, 3, 0u32);
        let p1 = ProcessId::new(1);
        core.try_update(p1, 1, 11).unwrap();
        let (view, stats) = core.try_scan(p1).unwrap();
        assert_eq!(view.to_vec(), vec![0, 11, 0]);
        assert!(stats.double_collects >= 1);
        assert_eq!(stats.reads % 6, 0, "collects touch all 3 registers");
    }

    #[test]
    fn certificates_move_with_every_write() {
        let net = fast_net(3);
        let core = AbdSnapshotCore::new(&net, 2, 0u32);
        let p0 = ProcessId::new(0);
        let (v, c1) = core.try_certified_read(p0, 0).unwrap().unwrap();
        assert_eq!(v, 0);
        core.try_update(p0, 0, 7).unwrap();
        let (v, c2) = core.try_certified_read(p0, 0).unwrap().unwrap();
        assert_eq!(v, 7);
        assert!(c2 > c1, "certificate must move with every write");
    }

    #[test]
    fn majority_partition_surfaces_retryable_error_then_recovers() {
        let net = fast_net(3);
        let core = AbdSnapshotCore::new(&net, 2, 0u32);
        let p0 = ProcessId::new(0);
        core.try_update(p0, 0, 1).unwrap();

        net.partition(&[0, 1]); // majority gone
        let err = core.try_scan(p0).unwrap_err();
        assert!(err.retryable(), "quorum loss must be retryable: {err}");
        let err = core.try_update(p0, 0, 2).unwrap_err();
        assert!(err.retryable());

        net.heal();
        let (view, _) = core.try_scan(p0).unwrap();
        // The partitioned update was indeterminate; either outcome is
        // linearizable, and the register must answer again.
        assert!(view[0] == 1 || view[0] == 2, "view {:?}", view.to_vec());
    }

    #[test]
    fn indeterminate_updates_never_reuse_a_sequence_number() {
        let net = fast_net(3);
        let core = AbdSnapshotCore::new(&net, 1, 0u32);
        let p0 = ProcessId::new(0);
        core.try_update(p0, 0, 1).unwrap();
        let (_, c1) = core.try_certified_read(p0, 0).unwrap().unwrap();

        net.partition(&[0, 1, 2]);
        assert!(core.try_update(p0, 0, 2).is_err());
        net.heal();

        core.try_update(p0, 0, 3).unwrap();
        let (v, c2) = core.try_certified_read(p0, 0).unwrap().unwrap();
        assert_eq!(v, 3);
        // Certificates stay strictly monotone across the error. (The
        // blackout starved the update's *embedded scan*, before the seq
        // allocation — nothing consumed. A write-phase failure would have
        // consumed its seq: the `fetch_add` makes reuse impossible either
        // way.)
        assert_eq!(c2, c1 + 1);
        assert!(c2 > c1, "certificate must move on the successful retry");
    }

    #[test]
    fn deadline_cuts_a_starving_scan_short() {
        // op_timeout is deliberately huge: only the caller's deadline can
        // end the scan quickly, and it must do so with a retryable error.
        let net = Arc::new(Network::with_config(
            NetworkConfig::new(3).with_op_timeout(Duration::from_secs(10)),
        ));
        let core = AbdSnapshotCore::new(&net, 2, 0u32);
        let p0 = ProcessId::new(0);
        net.partition(&[0, 1]);
        let started = std::time::Instant::now();
        let err = core
            .try_scan_by(p0, Deadline::after(Duration::from_millis(25)))
            .unwrap_err();
        assert!(err.retryable(), "deadline expiry is the retryable boundary: {err}");
        assert!(started.elapsed() < Duration::from_secs(2));
        net.heal();
        assert!(core.try_scan(p0).is_ok(), "lane released, core answers again");
    }

    #[test]
    fn poisoned_fleet_is_a_terminal_error() {
        let net = fast_net(3);
        let core = AbdSnapshotCore::new(&net, 2, 0u32);
        let p0 = ProcessId::new(0);
        core.try_update(p0, 0, 5).unwrap();
        net.poison();
        let err = core.try_scan(p0).unwrap_err();
        assert!(!err.retryable(), "poisoned fleet must be terminal: {err}");
    }

    #[test]
    fn subset_scans_touch_only_their_registers() {
        let net = fast_net(3);
        let core = AbdSnapshotCore::new(&net, 8, 0u32);
        let p3 = ProcessId::new(3);
        let _ = core.try_update(p3, 3, 33).unwrap();
        let (values, stats) = core
            .try_scan_subset(ProcessId::new(0), &[3, 6])
            .unwrap()
            .expect("the single-writer emulation always serves subsets");
        assert_eq!(values, vec![33, 0]);
        assert!(!stats.borrowed);
        assert_eq!(stats.reads, 4, "2k quorum reads for k = 2, quiescent");
    }

    #[test]
    fn subset_scan_errors_are_typed_and_release_the_lane() {
        let net = fast_net(3);
        let core = AbdSnapshotCore::new(&net, 4, 0u32);
        let p0 = ProcessId::new(0);
        net.partition(&[0, 1]);
        let err = core.try_scan_subset(p0, &[1, 2]).unwrap_err();
        assert!(err.retryable(), "quorum loss must be retryable: {err}");
        net.heal();
        assert!(core.try_scan_subset(p0, &[1, 2]).unwrap().is_some());
    }

    #[test]
    fn errored_operations_release_their_lane() {
        let net = fast_net(3);
        let core = AbdSnapshotCore::new(&net, 2, 0u32);
        let p0 = ProcessId::new(0);
        net.partition(&[0, 1, 2]);
        assert!(core.try_scan(p0).is_err());
        net.heal();
        // The lane is reusable after the error.
        assert!(core.try_scan(p0).is_ok());
    }
}
