use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::message::{ErasedValue, Request, Response};
use crate::{RegisterId, Tag};

/// Configuration of the simulated message-passing system.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Number of replica servers. Tolerates `⌈r/2⌉ - 1` crashes.
    pub replicas: usize,
    /// Seed for per-replica processing jitter (random yields between
    /// messages), widening the asynchrony the clients observe. `None`
    /// disables jitter.
    pub jitter_seed: Option<u64>,
}

impl NetworkConfig {
    /// A jitter-free network of `replicas` servers.
    pub fn new(replicas: usize) -> Self {
        NetworkConfig {
            replicas,
            jitter_seed: None,
        }
    }
}

struct Replica {
    inbox: Sender<Request>,
    crashed: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// A simulated asynchronous message-passing system: replica servers that
/// store tagged register values, connected to clients by unbounded FIFO
/// channels.
///
/// Crashes ([`Network::crash`]) silence a replica: it drains and ignores
/// its inbox, never replying — indistinguishable, to clients, from
/// arbitrary message delay, which is exactly the fault model of \[ABD\].
/// [`Network::restart`] brings it back (with its state intact — a crash
/// here models a partition/silence, not disk loss; ABD tolerates either
/// as long as a majority responds).
pub struct Network {
    replicas: Vec<Replica>,
    next_register: AtomicU64,
    messages: AtomicU64,
}

impl Network {
    /// Spawns a jitter-free network of `replicas` servers.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(replicas: usize) -> Self {
        Self::with_config(NetworkConfig::new(replicas))
    }

    /// Spawns a network per `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas` is zero.
    pub fn with_config(config: NetworkConfig) -> Self {
        assert!(config.replicas > 0, "a network needs at least one replica");
        let replicas = (0..config.replicas)
            .map(|i| {
                let (tx, rx) = unbounded::<Request>();
                let crashed = Arc::new(AtomicBool::new(false));
                let crashed_flag = Arc::clone(&crashed);
                let mut jitter = config
                    .jitter_seed
                    .map(|seed| StdRng::seed_from_u64(seed.wrapping_add(i as u64)));
                let thread = std::thread::Builder::new()
                    .name(format!("abd-replica-{i}"))
                    .spawn(move || {
                        let mut store: HashMap<RegisterId, (Tag, ErasedValue)> = HashMap::new();
                        for request in rx {
                            if let Some(rng) = &mut jitter {
                                for _ in 0..rng.random_range(0..3) {
                                    std::thread::yield_now();
                                }
                            }
                            if crashed_flag.load(Ordering::Acquire) {
                                // A crashed replica consumes silently; a
                                // restart lets it speak again.
                                if matches!(request, Request::Shutdown) {
                                    break;
                                }
                                continue;
                            }
                            match request {
                                Request::Query { register, reply } => {
                                    let (tag, value) = store
                                        .get(&register)
                                        .map(|(t, v)| (*t, Some(Arc::clone(v))))
                                        .unwrap_or((Tag::default(), None));
                                    let _ = reply.send(Response::QueryReply { tag, value });
                                }
                                Request::Store {
                                    register,
                                    tag,
                                    value,
                                    reply,
                                } => {
                                    let entry = store.entry(register);
                                    match entry {
                                        std::collections::hash_map::Entry::Occupied(
                                            mut occupied,
                                        ) => {
                                            if tag > occupied.get().0 {
                                                occupied.insert((tag, value));
                                            }
                                        }
                                        std::collections::hash_map::Entry::Vacant(vacant) => {
                                            vacant.insert((tag, value));
                                        }
                                    }
                                    let _ = reply.send(Response::StoreAck);
                                }
                                Request::Shutdown => break,
                            }
                        }
                    })
                    .expect("spawning replica thread");
                Replica {
                    inbox: tx,
                    crashed,
                    thread: Some(thread),
                }
            })
            .collect();
        Network {
            replicas,
            next_register: AtomicU64::new(0),
            messages: AtomicU64::new(0),
        }
    }

    /// Total client-to-replica messages sent so far (request messages;
    /// replies are one-for-one for live replicas).
    pub fn messages_sent(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Size of a majority quorum.
    pub fn quorum(&self) -> usize {
        self.replicas.len() / 2 + 1
    }

    /// Maximum number of simultaneous crashes the network tolerates while
    /// staying live.
    pub fn fault_tolerance(&self) -> usize {
        self.replicas.len() - self.quorum()
    }

    /// Crashes replica `index`: it stops responding until
    /// [`Network::restart`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn crash(&self, index: usize) {
        self.replicas[index].crashed.store(true, Ordering::Release);
    }

    /// Restarts a crashed replica (state intact).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn restart(&self, index: usize) {
        self.replicas[index].crashed.store(false, Ordering::Release);
    }

    /// Allocates a fresh register id.
    pub(crate) fn allocate_register(&self) -> RegisterId {
        RegisterId(self.next_register.fetch_add(1, Ordering::Relaxed))
    }

    /// Sends `make(reply_sender)` to every replica; returns the reply
    /// receiver.
    pub(crate) fn broadcast(
        &self,
        make: impl Fn(Sender<Response>) -> Request,
    ) -> crossbeam::channel::Receiver<Response> {
        let (tx, rx) = unbounded();
        for replica in &self.replicas {
            let _ = replica.inbox.send(make(tx.clone()));
        }
        self.messages
            .fetch_add(self.replicas.len() as u64, Ordering::Relaxed);
        rx
    }
}

impl Drop for Network {
    fn drop(&mut self) {
        for replica in &self.replicas {
            let _ = replica.inbox.send(Request::Shutdown);
        }
        for replica in &mut self.replicas {
            if let Some(thread) = replica.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("replicas", &self.replicas.len())
            .field("quorum", &self.quorum())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_arithmetic() {
        for (r, q, f) in [
            (1, 1, 0),
            (2, 2, 0),
            (3, 2, 1),
            (4, 3, 1),
            (5, 3, 2),
            (7, 4, 3),
        ] {
            let net = Network::new(r);
            assert_eq!(net.quorum(), q, "replicas {r}");
            assert_eq!(net.fault_tolerance(), f, "replicas {r}");
        }
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let net = Network::new(5);
        drop(net);
    }

    #[test]
    fn register_ids_are_unique() {
        let net = Network::new(1);
        let a = net.allocate_register();
        let b = net.allocate_register();
        assert_ne!(a, b);
    }
}
