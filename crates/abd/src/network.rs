use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use snapshot_obs::{Registry, Trace};

use crate::fault::{FaultPlan, LinkFault};
use crate::message::{ErasedValue, Request, RequestId, Response, ResponseBody};
use crate::stats::{Counters, LatencySnapshot, NetworkStats};
use crate::transport::{Payload, Phase, PhaseRequest, Reply, ReplyBody, Transport};
use crate::{RegisterId, Tag};

/// How many recently seen request ids each replica remembers for
/// retransmission/duplication dedup. Retries of an id older than this
/// window are re-applied — harmless, because `Store` is a max-by-tag
/// merge and `Query` is read-only (idempotent either way; the window only
/// keeps the `duplicates_suppressed` metric honest for live traffic).
const DEDUP_WINDOW: usize = 4096;

/// How long a replica with held-back (reordered) messages waits for new
/// traffic before releasing them anyway, so reordering can never stall a
/// quiescent system.
const HOLDBACK_IDLE_FLUSH: Duration = Duration::from_millis(1);

/// Client retry policy: capped exponential backoff with deterministic
/// jitter.
///
/// A quorum phase broadcasts once, then retransmits to every replica that
/// has not yet answered each time the backoff expires, until either a
/// majority answers or [`NetworkConfig::op_timeout`] elapses. Jitter is
/// derived from the request id (not a clock or global RNG), so a fixed
/// fault-plan seed yields a reproducible retry cadence.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Backoff before the first retransmission.
    pub initial_backoff: Duration,
    /// Upper bound on the (pre-jitter) backoff.
    pub max_backoff: Duration,
    /// Backoff growth factor per retry (values `< 1` behave as `1`).
    pub multiplier: u32,
    /// Jitter fraction in `[0, 1]`: each backoff is stretched by up to
    /// this fraction of itself.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            multiplier: 2,
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// The backoff following `current`, jittered deterministically by
    /// `(id, attempt)`.
    pub(crate) fn next_backoff(&self, current: Duration, id: RequestId, attempt: u32) -> Duration {
        let mut next = current.saturating_mul(self.multiplier.max(1));
        if next > self.max_backoff {
            next = self.max_backoff;
        }
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter > 0.0 {
            // splitmix-style hash of (id, attempt): reproducible, no clock.
            let mut h = id.0 ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h = h.wrapping_mul(0xD1B5_4A32_D192_ED03);
            h ^= h >> 29;
            let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
            next += next.mul_f64(jitter * frac);
        }
        next
    }
}

/// Configuration of the simulated message-passing system.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Number of replica servers. Tolerates `⌈r/2⌉ - 1` crashes.
    pub replicas: usize,
    /// Seed for per-replica processing jitter (random yields between
    /// messages), widening the asynchrony the clients observe. `None`
    /// disables jitter.
    pub jitter_seed: Option<u64>,
    /// Seeded link-fault plan (drops, duplication, reordering, delay).
    /// `None` leaves every link healthy.
    pub faults: Option<FaultPlan>,
    /// How long a quorum phase may wait (across all its retries) before
    /// concluding the majority is gone and returning
    /// [`AbdError::QuorumUnavailable`](crate::AbdError::QuorumUnavailable).
    pub op_timeout: Duration,
    /// Retransmission backoff policy for quorum phases.
    pub retry: RetryPolicy,
    /// Metrics registry the network's `abd.*` counters and the
    /// quorum-latency histogram are registered on. `None` gives the
    /// network a private registry (still readable via
    /// [`Network::registry`]).
    pub registry: Option<Arc<Registry>>,
    /// Trace receiving quorum-phase lifecycle events
    /// (`abd_phase_start`, `abd_retransmit`, `abd_quorum_reached`,
    /// `abd_quorum_failed`). Disabled by default.
    pub trace: Trace,
}

impl NetworkConfig {
    /// A jitter-free, fault-free network of `replicas` servers with the
    /// default 30-second operation timeout.
    pub fn new(replicas: usize) -> Self {
        NetworkConfig {
            replicas,
            jitter_seed: None,
            faults: None,
            op_timeout: Duration::from_secs(30),
            retry: RetryPolicy::default(),
            registry: None,
            trace: Trace::disabled(),
        }
    }

    /// Enables per-replica processing jitter with the given seed.
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// Installs a seeded link-fault plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the per-operation quorum timeout.
    pub fn with_op_timeout(mut self, timeout: Duration) -> Self {
        self.op_timeout = timeout;
        self
    }

    /// Sets the retransmission backoff policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Registers the network's counters on a shared metrics registry, so
    /// `abd.*` metrics appear next to every other subsystem's.
    pub fn with_registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Attaches a trace for quorum-phase lifecycle events.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }
}

/// Runtime fault state of one client↔replica link: the (mutable) fault
/// policy plus partition cuts in each direction.
struct LinkState {
    fault: RwLock<LinkFault>,
    /// Requests to the replica are discarded.
    cut_inbound: AtomicBool,
    /// Replies from the replica are discarded.
    cut_outbound: AtomicBool,
}

impl LinkState {
    fn new(fault: LinkFault) -> Self {
        LinkState {
            fault: RwLock::new(fault),
            cut_inbound: AtomicBool::new(false),
            cut_outbound: AtomicBool::new(false),
        }
    }
}

struct Replica {
    inbox: Sender<Request>,
    crashed: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// Sets the shared flag if its thread unwinds, making replica panics
/// visible to `Network::poisoned` and `Network::drop` instead of being
/// silently swallowed by `JoinHandle::join`.
struct PanicFlag(Arc<AtomicBool>);

impl Drop for PanicFlag {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

/// Per-replica server state and fault machinery, run on the replica's own
/// thread.
struct ReplicaCore {
    index: usize,
    store: HashMap<RegisterId, (Tag, ErasedValue)>,
    seen: HashSet<RequestId>,
    seen_order: VecDeque<RequestId>,
    crashed: Arc<AtomicBool>,
    link: Arc<LinkState>,
    counters: Arc<Counters>,
    /// Fault-decision RNG (seeded from the fault plan).
    rng: StdRng,
    /// Processing-jitter RNG (seeded from `jitter_seed`).
    jitter: Option<StdRng>,
}

impl ReplicaCore {
    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.random_bool(p.clamp(0.0, 1.0))
    }

    /// Applies link faults to a freshly arrived request; surviving copies
    /// are delivered now or pushed onto the holdback buffer.
    fn admit(&mut self, held: &mut Vec<(Request, u32)>, request: Request) {
        let fault = self.link.fault.read().clone();
        if self.link.cut_inbound.load(Ordering::Acquire) || self.chance(fault.drop) {
            self.counters.messages_dropped.inc();
            return;
        }
        if self.chance(fault.duplicate) {
            self.counters.messages_duplicated.inc();
            // The extra copy is delivered immediately; the original may
            // still be held back below, so the two can arrive far apart.
            self.deliver_delayed(&fault, request.clone());
        }
        if fault.reorder_window > 0 && self.chance(fault.reorder) {
            self.counters.messages_reordered.inc();
            let holdback = self.rng.random_range(1..=fault.reorder_window as u32);
            held.push((request, holdback));
        } else {
            self.deliver_delayed(&fault, request);
        }
    }

    fn deliver_delayed(&mut self, fault: &LinkFault, request: Request) {
        if let Some((min, max)) = fault.delay {
            let (lo, hi) = (min.as_micros() as u64, max.as_micros() as u64);
            let micros = if hi > lo {
                self.rng.random_range(lo..=hi)
            } else {
                lo
            };
            if micros > 0 {
                std::thread::sleep(Duration::from_micros(micros));
            }
        }
        self.deliver(request);
    }

    /// Processes one delivered request: dedup by request id, apply, reply.
    fn deliver(&mut self, request: Request) {
        if let Some(rng) = &mut self.jitter {
            for _ in 0..rng.random_range(0..3) {
                std::thread::yield_now();
            }
        }
        if self.crashed.load(Ordering::Acquire) {
            // A crashed replica consumes without acking — from the client's
            // point of view the message is lost, so it counts as a drop. A
            // restart lets the replica speak again (state intact).
            self.counters.messages_dropped.inc();
            return;
        }
        match request {
            Request::Query {
                id,
                register,
                reply,
            } => {
                // Queries are read-only: dedup only records the id; every
                // delivery is (re-)answered with the current state, which
                // is what lets a client whose reply was lost make progress.
                self.note_seen(id);
                let (tag, value) = match self.store.get(&register) {
                    Some((t, v)) => (*t, Some(Arc::clone(v))),
                    None => (Tag::default(), None),
                };
                self.reply(
                    &reply,
                    Response {
                        from: self.index,
                        id,
                        body: ResponseBody::QueryReply { tag, value },
                    },
                );
            }
            Request::Store {
                id,
                register,
                tag,
                value,
                reply,
            } => {
                if self.note_seen(id) {
                    let entry = self.store.entry(register);
                    match entry {
                        std::collections::hash_map::Entry::Occupied(mut occupied) => {
                            if tag > occupied.get().0 {
                                occupied.insert((tag, value));
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(vacant) => {
                            vacant.insert((tag, value));
                        }
                    }
                } else {
                    // Duplicate delivery (link duplication or client
                    // retransmission): skip the apply, but re-ack — the
                    // first ack may have been lost.
                    self.counters.duplicates_suppressed.inc();
                }
                self.reply(
                    &reply,
                    Response {
                        from: self.index,
                        id,
                        body: ResponseBody::StoreAck,
                    },
                );
            }
            Request::Shutdown => {}
        }
    }

    /// Records `id` as seen; returns `true` the first time.
    fn note_seen(&mut self, id: RequestId) -> bool {
        if !self.seen.insert(id) {
            return false;
        }
        self.seen_order.push_back(id);
        if self.seen_order.len() > DEDUP_WINDOW {
            if let Some(old) = self.seen_order.pop_front() {
                self.seen.remove(&old);
            }
        }
        true
    }

    fn reply(&mut self, to: &Sender<Response>, response: Response) {
        let reply_drop = self.link.fault.read().reply_drop;
        if self.link.cut_outbound.load(Ordering::Acquire) || self.chance(reply_drop) {
            self.counters.messages_dropped.inc();
            return;
        }
        let _ = to.send(response);
    }

    /// Ages the holdback buffer by one arrival and delivers everything
    /// whose countdown expired.
    fn age_holdback(&mut self, held: &mut Vec<(Request, u32)>) {
        let mut i = 0;
        let mut due = Vec::new();
        while i < held.len() {
            if held[i].1 <= 1 {
                due.push(held.swap_remove(i).0);
            } else {
                held[i].1 -= 1;
                i += 1;
            }
        }
        for request in due {
            self.deliver(request);
        }
    }

    fn flush_holdback(&mut self, held: &mut Vec<(Request, u32)>) {
        for (request, _) in held.drain(..) {
            self.deliver(request);
        }
    }
}

/// A simulated asynchronous message-passing system: replica servers that
/// store tagged register values, connected to clients by channels wrapped
/// in a seeded fault-injection layer ([`FaultPlan`]).
///
/// # Fault model
///
/// * **Crashes** ([`Network::crash`]) silence a replica: it drains and
///   ignores its inbox, never replying — indistinguishable, to clients,
///   from arbitrary message delay, which is exactly the fault model of
///   \[ABD\]. [`Network::restart`] brings it back (state intact — a crash
///   here models a partition/silence, not disk loss; ABD tolerates either
///   as long as a majority responds).
/// * **Lossy links** ([`LinkFault`]): every client↔replica link can drop,
///   duplicate, reorder (within a bounded window) and delay requests, and
///   drop replies, each with a seeded per-link probability.
/// * **Partitions** ([`Network::partition`]): cut a set of replicas off
///   symmetrically (both directions) or asymmetrically (requests only),
///   at runtime; [`Network::heal`] reconnects everything.
///
/// Safety (linearizability) holds under *any* mix of the above; liveness
/// needs a majority of replicas reachable in both directions — the
/// paper's exact resilience boundary. Clients mask transient faults with
/// retransmissions ([`RetryPolicy`]), and every fault decision is counted
/// ([`Network::stats`]) so tests can assert the faults actually fired.
pub struct Network {
    replicas: Vec<Replica>,
    links: Vec<Arc<LinkState>>,
    next_register: AtomicU64,
    next_request: AtomicU64,
    counters: Arc<Counters>,
    registry: Arc<Registry>,
    trace: Trace,
    op_timeout: Duration,
    retry: RetryPolicy,
    panicked: Arc<AtomicBool>,
    /// Explicitly marked failed via [`Network::poison`]; unlike `panicked`
    /// this is not escalated to a panic on drop.
    marked_failed: AtomicBool,
}

impl Network {
    /// Spawns a jitter-free, fault-free network of `replicas` servers.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(replicas: usize) -> Self {
        Self::with_config(NetworkConfig::new(replicas))
    }

    /// Spawns a network per `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.replicas` is zero.
    pub fn with_config(config: NetworkConfig) -> Self {
        assert!(config.replicas > 0, "a network needs at least one replica");
        let registry = config.registry.unwrap_or_default();
        // The transport-kind marker: sim and real transports report under
        // the same `abd.*` keys, distinguished only by this gauge (the
        // registry is name-keyed; labels are spelled into the name).
        registry.gauge("abd.transport.sim").set(1);
        let counters = Arc::new(Counters::new(&registry));
        let panicked = Arc::new(AtomicBool::new(false));
        let fault_seed = config.faults.as_ref().map(|p| p.seed).unwrap_or(0);
        let links: Vec<Arc<LinkState>> = (0..config.replicas)
            .map(|i| {
                let fault = config
                    .faults
                    .as_ref()
                    .map(|p| p.fault_for(i))
                    .unwrap_or_else(LinkFault::healthy);
                Arc::new(LinkState::new(fault))
            })
            .collect();
        let replicas = (0..config.replicas)
            .map(|i| {
                let (tx, rx) = unbounded::<Request>();
                let crashed = Arc::new(AtomicBool::new(false));
                let mut core = ReplicaCore {
                    index: i,
                    store: HashMap::new(),
                    seen: HashSet::new(),
                    seen_order: VecDeque::new(),
                    crashed: Arc::clone(&crashed),
                    link: Arc::clone(&links[i]),
                    counters: Arc::clone(&counters),
                    rng: StdRng::seed_from_u64(fault_seed.wrapping_add(i as u64)),
                    jitter: config
                        .jitter_seed
                        .map(|seed| StdRng::seed_from_u64(seed.wrapping_add(i as u64))),
                };
                let panic_flag = Arc::clone(&panicked);
                let thread = std::thread::Builder::new()
                    .name(format!("abd-replica-{i}"))
                    .spawn(move || {
                        let _guard = PanicFlag(panic_flag);
                        let mut held: Vec<(Request, u32)> = Vec::new();
                        loop {
                            // While messages are held back, poll with a
                            // short timeout so reordering can never stall
                            // a quiescent system.
                            let next = if held.is_empty() {
                                rx.recv().map_err(|_| RecvTimeoutError::Disconnected)
                            } else {
                                rx.recv_timeout(HOLDBACK_IDLE_FLUSH)
                            };
                            match next {
                                Ok(Request::Shutdown) => {
                                    core.flush_holdback(&mut held);
                                    break;
                                }
                                Ok(request) => {
                                    core.age_holdback(&mut held);
                                    core.admit(&mut held, request);
                                }
                                Err(RecvTimeoutError::Timeout) => {
                                    core.age_holdback(&mut held);
                                }
                                Err(RecvTimeoutError::Disconnected) => {
                                    core.flush_holdback(&mut held);
                                    break;
                                }
                            }
                        }
                    })
                    .expect("spawning replica thread");
                Replica {
                    inbox: tx,
                    crashed,
                    thread: Some(thread),
                }
            })
            .collect();
        Network {
            replicas,
            links,
            next_register: AtomicU64::new(0),
            next_request: AtomicU64::new(0),
            counters,
            registry,
            trace: config.trace,
            op_timeout: config.op_timeout,
            retry: config.retry,
            panicked,
            marked_failed: AtomicBool::new(false),
        }
    }

    /// Total client-to-replica messages sent so far (initial broadcasts
    /// and retransmissions).
    pub fn messages_sent(&self) -> u64 {
        self.counters.snapshot().messages_sent
    }

    /// A snapshot of all fault and traffic counters.
    pub fn stats(&self) -> NetworkStats {
        self.counters.snapshot()
    }

    /// A snapshot of the per-operation quorum-phase latency histogram.
    pub fn quorum_latency(&self) -> LatencySnapshot {
        self.counters.latency_snapshot()
    }

    /// The metrics registry carrying this network's `abd.*` metrics
    /// (shared if one was installed via [`NetworkConfig::with_registry`],
    /// private otherwise).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The trace receiving this network's quorum-phase events (disabled
    /// unless one was installed via [`NetworkConfig::with_trace`]).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Size of a majority quorum.
    pub fn quorum(&self) -> usize {
        self.replicas.len() / 2 + 1
    }

    /// Maximum number of simultaneous crashes the network tolerates while
    /// staying live.
    pub fn fault_tolerance(&self) -> usize {
        self.replicas.len() - self.quorum()
    }

    /// The configured per-operation quorum timeout.
    pub fn op_timeout(&self) -> Duration {
        self.op_timeout
    }

    /// The configured retransmission policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Crashes replica `index`: it stops responding until
    /// [`Network::restart`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn crash(&self, index: usize) {
        self.replicas[index].crashed.store(true, Ordering::Release);
    }

    /// Restarts a crashed replica (state intact).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn restart(&self, index: usize) {
        self.replicas[index].crashed.store(false, Ordering::Release);
    }

    /// Symmetrically partitions the listed replicas away: requests to them
    /// and replies from them are discarded until [`Network::heal`].
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn partition(&self, replicas: &[usize]) {
        for &i in replicas {
            self.links[i].cut_inbound.store(true, Ordering::Release);
            self.links[i].cut_outbound.store(true, Ordering::Release);
        }
    }

    /// Asymmetrically partitions the listed replicas: requests to them are
    /// discarded, but replies they still owe can get out.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn partition_inbound(&self, replicas: &[usize]) {
        for &i in replicas {
            self.links[i].cut_inbound.store(true, Ordering::Release);
        }
    }

    /// Clears every partition cut (crashes and link faults are untouched).
    pub fn heal(&self) {
        for link in &self.links {
            link.cut_inbound.store(false, Ordering::Release);
            link.cut_outbound.store(false, Ordering::Release);
        }
    }

    /// Replaces replica `index`'s link-fault policy.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_fault(&self, index: usize, fault: LinkFault) {
        *self.links[index].fault.write() = fault;
    }

    /// Replaces every link's fault policy.
    pub fn set_fault_all(&self, fault: LinkFault) {
        for link in &self.links {
            *link.fault.write() = fault.clone();
        }
    }

    /// True if the fleet is failed: a replica thread panicked, or
    /// [`poison`](Self::poison) was called. Every register operation on a
    /// poisoned network fails fast with
    /// [`AbdError::NetworkPoisoned`](crate::AbdError::NetworkPoisoned)
    /// instead of burning its retry/timeout budget. Thread panics are
    /// additionally escalated to a panic when the network is dropped, so a
    /// poisoned replica fleet cannot silently pass a test.
    pub fn poisoned(&self) -> bool {
        self.panicked.load(Ordering::Acquire) || self.marked_failed.load(Ordering::Acquire)
    }

    /// Marks the fleet as permanently failed: every subsequent register
    /// operation fails fast with
    /// [`AbdError::NetworkPoisoned`](crate::AbdError::NetworkPoisoned).
    ///
    /// There is no un-poison — this models an unrecoverable deployment
    /// fault (as opposed to [`partition`](Self::partition)/
    /// [`crash`](Self::crash), which [`heal`](Self::heal)/
    /// [`restart`](Self::restart) undo). Tests use it to pin down the
    /// fail-fast contract without having to panic a replica thread.
    pub fn poison(&self) {
        self.marked_failed.store(true, Ordering::Release);
    }

    /// Allocates a fresh register id.
    pub(crate) fn allocate_register(&self) -> RegisterId {
        RegisterId(self.next_register.fetch_add(1, Ordering::Relaxed))
    }

    /// Allocates a fresh request id for one quorum phase.
    pub(crate) fn fresh_request_id(&self) -> RequestId {
        RequestId(self.next_request.fetch_add(1, Ordering::Relaxed))
    }

    /// Sends `make()` to every replica for which `include` holds; returns
    /// how many were sent.
    pub(crate) fn send_where(
        &self,
        mut include: impl FnMut(usize) -> bool,
        make: impl Fn() -> Request,
    ) -> usize {
        let mut sent = 0usize;
        for (i, replica) in self.replicas.iter().enumerate() {
            if include(i) {
                let _ = replica.inbox.send(make());
                sent += 1;
            }
        }
        self.counters.messages_sent.add(sent as u64);
        sent
    }

    /// Counts client retransmissions (per replica re-contacted).
    pub(crate) fn note_retries(&self, n: u64) {
        self.counters.retries.add(n);
    }

    /// Records one completed quorum phase's latency.
    pub(crate) fn record_quorum_latency(&self, elapsed: Duration) {
        self.counters.record_quorum_latency(elapsed);
    }
}

impl Drop for Network {
    fn drop(&mut self) {
        for replica in &self.replicas {
            let _ = replica.inbox.send(Request::Shutdown);
        }
        for replica in &mut self.replicas {
            if let Some(thread) = replica.thread.take() {
                if thread.join().is_err() {
                    self.panicked.store(true, Ordering::Release);
                }
            }
        }
        if self.panicked.load(Ordering::Acquire) {
            if std::thread::panicking() {
                eprintln!("abd: a replica thread panicked (while already unwinding)");
            } else {
                panic!("abd: a replica thread panicked; see stderr for its message");
            }
        }
    }
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("replicas", &self.replicas.len())
            .field("quorum", &self.quorum())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Converts a seam payload into the erased form replicas store. A wire
/// payload is boxed as `Any` holding the `Arc<[u8]>` itself, so a
/// register with a wire codec can run over the simulated network for
/// differential testing — the bytes round-trip untouched.
fn payload_to_erased(payload: &Payload) -> ErasedValue {
    match payload {
        Payload::Erased(v) => Arc::clone(v),
        Payload::Bytes(b) => Arc::new(Arc::clone(b)) as ErasedValue,
    }
}

/// The inverse conversion for replies: a stored `Arc<[u8]>` surfaces as
/// a byte payload, anything else stays erased.
fn erased_to_payload(value: ErasedValue) -> Payload {
    match value.downcast::<Arc<[u8]>>() {
        Ok(bytes) => Payload::Bytes(Arc::clone(&bytes)),
        Err(value) => Payload::Erased(value),
    }
}

/// One in-flight quorum phase on the simulated network: a private reply
/// channel, with the request id stamped on every (re)transmission so
/// replicas dedupe and the engine can discard mismatched replies.
struct SimPhase<'a> {
    net: &'a Network,
    id: RequestId,
    request: PhaseRequest,
    tx: Sender<Response>,
    rx: crossbeam::channel::Receiver<Response>,
}

impl SimPhase<'_> {
    fn make_request(&self) -> Request {
        match &self.request {
            PhaseRequest::Query { register } => Request::Query {
                id: self.id,
                register: *register,
                reply: self.tx.clone(),
            },
            PhaseRequest::Store {
                register,
                tag,
                payload,
            } => Request::Store {
                id: self.id,
                register: *register,
                tag: *tag,
                value: payload_to_erased(payload),
                reply: self.tx.clone(),
            },
        }
    }
}

impl Phase for SimPhase<'_> {
    fn send_where(&mut self, include: &mut dyn FnMut(usize) -> bool) -> usize {
        let request = self.make_request();
        self.net.send_where(|i| include(i), || request.clone())
    }

    fn recv_deadline(&mut self, deadline: std::time::Instant) -> Option<Reply> {
        loop {
            match self.rx.recv_deadline(deadline) {
                Ok(response) => {
                    debug_assert_eq!(
                        response.id, self.id,
                        "reply channels are per-phase; ids cannot mix"
                    );
                    if response.id != self.id {
                        continue;
                    }
                    let body = match response.body {
                        ResponseBody::QueryReply { tag, value } => ReplyBody::Value {
                            tag,
                            payload: value.map(erased_to_payload),
                        },
                        ResponseBody::StoreAck => ReplyBody::Ack,
                    };
                    return Some(Reply {
                        from: response.from,
                        body,
                    });
                }
                Err(_) => return None,
            }
        }
    }
}

/// The simulated network **is** a transport: the same quorum engine that
/// runs over real sockets runs here, with the fault-injection plane
/// (drops, duplication, reorder, delay, crash, partition) underneath.
impl Transport for Network {
    fn replicas(&self) -> usize {
        Network::replicas(self)
    }

    fn kind(&self) -> &'static str {
        "sim"
    }

    fn op_timeout(&self) -> Duration {
        Network::op_timeout(self)
    }

    fn retry_policy(&self) -> &RetryPolicy {
        Network::retry_policy(self)
    }

    fn registry(&self) -> &Arc<Registry> {
        Network::registry(self)
    }

    fn trace(&self) -> &Trace {
        Network::trace(self)
    }

    fn poisoned(&self) -> bool {
        Network::poisoned(self)
    }

    fn allocate_register(&self) -> RegisterId {
        Network::allocate_register(self)
    }

    fn fresh_request_id(&self) -> RequestId {
        Network::fresh_request_id(self)
    }

    fn begin_phase(&self, id: RequestId, request: PhaseRequest) -> Box<dyn Phase + '_> {
        let (tx, rx) = unbounded();
        Box::new(SimPhase {
            net: self,
            id,
            request,
            tx,
            rx,
        })
    }

    fn note_retries(&self, n: u64) {
        Network::note_retries(self, n)
    }

    fn record_quorum_latency(&self, elapsed: Duration) {
        Network::record_quorum_latency(self, elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_arithmetic() {
        for (r, q, f) in [
            (1, 1, 0),
            (2, 2, 0),
            (3, 2, 1),
            (4, 3, 1),
            (5, 3, 2),
            (7, 4, 3),
        ] {
            let net = Network::new(r);
            assert_eq!(net.quorum(), q, "replicas {r}");
            assert_eq!(net.fault_tolerance(), f, "replicas {r}");
        }
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let net = Network::new(5);
        assert!(!net.poisoned());
        drop(net);
    }

    #[test]
    fn register_ids_are_unique() {
        let net = Network::new(1);
        let a = net.allocate_register();
        let b = net.allocate_register();
        assert_ne!(a, b);
        assert_ne!(net.fresh_request_id(), net.fresh_request_id());
    }

    #[test]
    fn backoff_grows_is_capped_and_jittered_deterministically() {
        let policy = RetryPolicy {
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
            multiplier: 2,
            jitter: 0.0,
        };
        let id = RequestId(42);
        let b1 = policy.next_backoff(Duration::from_millis(1), id, 1);
        assert_eq!(b1, Duration::from_millis(2));
        let capped = policy.next_backoff(Duration::from_millis(8), id, 5);
        assert_eq!(capped, Duration::from_millis(8));

        let jittery = RetryPolicy {
            jitter: 0.5,
            ..policy
        };
        let a = jittery.next_backoff(Duration::from_millis(4), id, 2);
        let b = jittery.next_backoff(Duration::from_millis(4), id, 2);
        assert_eq!(a, b, "same (id, attempt) must jitter identically");
        assert!(a >= Duration::from_millis(8) && a <= Duration::from_millis(12));
    }

    #[test]
    fn partitions_cut_and_heal() {
        let net = Network::new(3);
        net.partition(&[0, 2]);
        assert!(net.links[0].cut_inbound.load(Ordering::Acquire));
        assert!(net.links[0].cut_outbound.load(Ordering::Acquire));
        assert!(!net.links[1].cut_inbound.load(Ordering::Acquire));
        net.heal();
        assert!(!net.links[0].cut_inbound.load(Ordering::Acquire));
        net.partition_inbound(&[1]);
        assert!(net.links[1].cut_inbound.load(Ordering::Acquire));
        assert!(!net.links[1].cut_outbound.load(Ordering::Acquire));
        net.heal();
    }

    #[test]
    fn dedup_window_forgets_oldest() {
        let mut core = ReplicaCore {
            index: 0,
            store: HashMap::new(),
            seen: HashSet::new(),
            seen_order: VecDeque::new(),
            crashed: Arc::new(AtomicBool::new(false)),
            link: Arc::new(LinkState::new(LinkFault::healthy())),
            counters: Arc::new(Counters::default()),
            rng: StdRng::seed_from_u64(0),
            jitter: None,
        };
        assert!(core.note_seen(RequestId(0)));
        assert!(!core.note_seen(RequestId(0)), "immediate retry is a dup");
        for i in 1..=DEDUP_WINDOW as u64 {
            assert!(core.note_seen(RequestId(i)));
        }
        assert!(
            core.note_seen(RequestId(0)),
            "ids beyond the window are forgotten (and re-applying is safe)"
        );
    }
}
