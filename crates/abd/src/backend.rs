use std::fmt;
use std::sync::Arc;

use snapshot_registers::{Backend, RegisterValue};

use crate::{AbdRegister, Network};

/// A register [`Backend`] whose every cell is an [`AbdRegister`] on a
/// shared replica [`Network`] — plug it into any snapshot construction and
/// the algorithm runs message-passing, tolerating minority replica
/// crashes, partitions and lossy links, exactly as Section 6 of the paper
/// describes (see the crate-level *Fault model & degradation* notes).
///
/// The [`Backend`] interface is infallible, so cells produced here panic
/// if the liveness boundary (a reachable majority) is violated for longer
/// than the configured timeout; fault-injection tests that intend to cross
/// that boundary should use [`AbdRegister::try_read`] /
/// [`AbdRegister::try_write`] directly.
///
/// See the [crate docs](crate) for an example.
#[derive(Clone)]
pub struct AbdBackend {
    network: Arc<Network>,
}

impl AbdBackend {
    /// Creates a backend on `network`.
    pub fn new(network: &Arc<Network>) -> Self {
        AbdBackend {
            network: Arc::clone(network),
        }
    }

    /// The underlying network (for fault injection in tests).
    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    /// Snapshot of the network's fault and traffic counters
    /// (convenience passthrough to [`Network::stats`]).
    pub fn stats(&self) -> crate::NetworkStats {
        self.network.stats()
    }
}

impl Backend for AbdBackend {
    type Cell<T: RegisterValue> = AbdRegister<T>;
    type Bit = AbdRegister<bool>;

    fn cell<T: RegisterValue>(&self, init: T) -> AbdRegister<T> {
        AbdRegister::new(Arc::clone(&self.network), init)
    }

    fn bit(&self, init: bool) -> AbdRegister<bool> {
        AbdRegister::new(Arc::clone(&self.network), init)
    }
}

impl fmt::Debug for AbdBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AbdBackend")
            .field("network", &self.network)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapshot_registers::{ProcessId, Register};

    #[test]
    fn backend_creates_working_cells_and_bits() {
        let network = Arc::new(Network::new(3));
        let backend = AbdBackend::new(&network);
        let cell = backend.cell(vec![1u8, 2]);
        let bit = backend.bit(true);
        let p = ProcessId::new(0);
        assert_eq!(cell.read(p), vec![1, 2]);
        assert!(bit.read(p));
        cell.write(p, vec![9]);
        bit.write(p, false);
        assert_eq!(cell.read(p), vec![9]);
        assert!(!bit.read(p));
    }
}
