use std::fmt;

use snapshot_registers::ProcessId;

use crate::Automaton;

/// An action of the [`Sws`] automaton (Figure 1 of the paper).
///
/// `UpdateRequest`/`ScanRequest` are inputs, `UpdateReturn`/`ScanReturn`
/// outputs, and `Update`/`Scan` the *internal* serialization actions: the
/// atomic instants at which an operation logically takes effect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SwsAction<V> {
    /// Process `pid` requests to write `value` to its segment.
    UpdateRequest {
        /// Requesting process.
        pid: ProcessId,
        /// Value to write.
        value: V,
    },
    /// Internal: the update takes effect, storing `value` in `Mem[pid]`.
    Update {
        /// Updating process.
        pid: ProcessId,
        /// Value written.
        value: V,
    },
    /// The update operation completes.
    UpdateReturn {
        /// Completing process.
        pid: ProcessId,
    },
    /// Process `pid` requests a scan.
    ScanRequest {
        /// Requesting process.
        pid: ProcessId,
    },
    /// Internal: the scan takes effect; `view` must equal `Mem` exactly.
    Scan {
        /// Scanning process.
        pid: ProcessId,
        /// The instantaneous memory contents.
        view: Vec<V>,
    },
    /// The scan operation completes, returning `view`.
    ScanReturn {
        /// Completing process.
        pid: ProcessId,
        /// The returned vector.
        view: Vec<V>,
    },
}

impl<V> SwsAction<V> {
    /// The process performing this action.
    pub fn pid(&self) -> ProcessId {
        match self {
            SwsAction::UpdateRequest { pid, .. }
            | SwsAction::Update { pid, .. }
            | SwsAction::UpdateReturn { pid }
            | SwsAction::ScanRequest { pid }
            | SwsAction::Scan { pid, .. }
            | SwsAction::ScanReturn { pid, .. } => *pid,
        }
    }

    /// True for the internal `Update`/`Scan` serialization actions.
    pub fn is_internal(&self) -> bool {
        matches!(self, SwsAction::Update { .. } | SwsAction::Scan { .. })
    }
}

/// Per-process interface variable `H_i` of the SWS automaton.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Interface<V> {
    /// The paper's `⊥`: no operation in flight.
    Idle,
    PendingUpdate(V),
    ReadyUpdateReturn,
    PendingScan,
    ReadyScanReturn(Vec<V>),
}

/// A state of the [`Sws`] automaton: the memory array and the interface
/// variables.
#[derive(Clone, PartialEq, Eq)]
pub struct SwsState<V> {
    mem: Vec<V>,
    interfaces: Vec<Interface<V>>,
}

impl<V> SwsState<V> {
    /// The current memory contents `Mem`.
    pub fn mem(&self) -> &[V] {
        &self.mem
    }

    /// True when no operation is in flight anywhere — the quiescent states
    /// in which a behavior may legally end.
    pub fn is_quiescent(&self) -> bool {
        self.interfaces.iter().all(|h| matches!(h, Interface::Idle))
    }
}

impl<V: fmt::Debug> fmt::Debug for SwsState<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SwsState")
            .field("mem", &self.mem)
            .field("interfaces", &self.interfaces)
            .finish()
    }
}

/// The single-writer snapshot specification automaton of Figure 1.
///
/// `Mem` has one entry per process (`Mem[i]` written only by `P_i`), all
/// initialized to the same `v_init`; `H_i` mediates the
/// request → internal-action → return protocol. An implementation is
/// correct iff all its well-formed behaviors, with internal actions
/// inserted at the claimed serialization points, are accepted here.
#[derive(Clone, Debug)]
pub struct Sws<V> {
    n: usize,
    init: V,
}

impl<V: Clone + Eq + fmt::Debug> Sws<V> {
    /// Creates the specification for `n` processes with initial value
    /// `init` in every segment.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, init: V) -> Self {
        assert!(n > 0, "SWS needs at least one process");
        Sws { n, init }
    }

    /// Number of processes (= memory segments).
    pub fn processes(&self) -> usize {
        self.n
    }
}

impl<V: Clone + Eq + fmt::Debug> Automaton for Sws<V> {
    type Action = SwsAction<V>;
    type State = SwsState<V>;

    fn initial(&self) -> SwsState<V> {
        SwsState {
            mem: vec![self.init.clone(); self.n],
            interfaces: vec![Interface::Idle; self.n],
        }
    }

    fn try_step(&self, state: &SwsState<V>, action: &SwsAction<V>) -> Option<SwsState<V>> {
        let i = action.pid().get();
        if i >= self.n {
            return None;
        }
        let mut next = state.clone();
        match action {
            // Inputs are always enabled; issuing one while another request
            // is in flight is an ill-formed *environment*, which
            // `check_well_formed` flags separately. Figure 1 simply
            // overwrites H_i, and we match it.
            SwsAction::UpdateRequest { value, .. } => {
                next.interfaces[i] = Interface::PendingUpdate(value.clone());
            }
            SwsAction::Update { value, .. } => {
                if state.interfaces[i] != Interface::PendingUpdate(value.clone()) {
                    return None;
                }
                next.mem[i] = value.clone();
                next.interfaces[i] = Interface::ReadyUpdateReturn;
            }
            SwsAction::UpdateReturn { .. } => {
                if state.interfaces[i] != Interface::ReadyUpdateReturn {
                    return None;
                }
                next.interfaces[i] = Interface::Idle;
            }
            SwsAction::ScanRequest { .. } => {
                next.interfaces[i] = Interface::PendingScan;
            }
            SwsAction::Scan { view, .. } => {
                if state.interfaces[i] != Interface::PendingScan || *view != state.mem {
                    return None;
                }
                next.interfaces[i] = Interface::ReadyScanReturn(view.clone());
            }
            SwsAction::ScanReturn { view, .. } => {
                if state.interfaces[i] != Interface::ReadyScanReturn(view.clone()) {
                    return None;
                }
                next.interfaces[i] = Interface::Idle;
            }
        }
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{accepts, run_to_end};

    const P0: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);

    fn update<V: Clone>(pid: ProcessId, v: V) -> [SwsAction<V>; 3] {
        [
            SwsAction::UpdateRequest {
                pid,
                value: v.clone(),
            },
            SwsAction::Update { pid, value: v },
            SwsAction::UpdateReturn { pid },
        ]
    }

    fn scan<V: Clone>(pid: ProcessId, view: Vec<V>) -> [SwsAction<V>; 3] {
        [
            SwsAction::ScanRequest { pid },
            SwsAction::Scan {
                pid,
                view: view.clone(),
            },
            SwsAction::ScanReturn { pid, view },
        ]
    }

    #[test]
    fn sequential_update_then_scan_is_accepted() {
        let sws = Sws::new(2, 0u8);
        let mut run = Vec::new();
        run.extend(update(P0, 5));
        run.extend(scan(P1, vec![5, 0]));
        assert!(accepts(&sws, &run));
    }

    #[test]
    fn scan_must_match_memory_exactly() {
        let sws = Sws::new(2, 0u8);
        let mut run = Vec::new();
        run.extend(update(P0, 5));
        run.extend(scan(P1, vec![0, 0])); // stale view
        assert!(!accepts(&sws, &run));
    }

    #[test]
    fn internal_action_requires_pending_request() {
        let sws = Sws::new(1, 0u8);
        assert!(!accepts(&sws, &[SwsAction::Update { pid: P0, value: 1 }]));
        assert!(!accepts(
            &sws,
            &[SwsAction::Scan {
                pid: P0,
                view: vec![0]
            }]
        ));
    }

    #[test]
    fn return_requires_internal_action_first() {
        let sws = Sws::new(1, 0u8);
        assert!(!accepts(
            &sws,
            &[
                SwsAction::UpdateRequest { pid: P0, value: 1 },
                SwsAction::UpdateReturn { pid: P0 },
            ]
        ));
    }

    #[test]
    fn interleaved_operations_serialize_in_internal_order() {
        // P0's update serializes between P1's scan request and internal
        // scan: the scan must therefore see the new value.
        let sws = Sws::new(2, 0u8);
        let run = vec![
            SwsAction::ScanRequest { pid: P1 },
            SwsAction::UpdateRequest { pid: P0, value: 9 },
            SwsAction::Update { pid: P0, value: 9 },
            SwsAction::Scan {
                pid: P1,
                view: vec![9, 0],
            },
            SwsAction::UpdateReturn { pid: P0 },
            SwsAction::ScanReturn {
                pid: P1,
                view: vec![9, 0],
            },
        ];
        assert!(accepts(&sws, &run));
    }

    #[test]
    fn scan_return_must_echo_the_serialized_view() {
        let sws = Sws::new(1, 0u8);
        let run = vec![
            SwsAction::ScanRequest { pid: P0 },
            SwsAction::Scan {
                pid: P0,
                view: vec![0],
            },
            SwsAction::ScanReturn {
                pid: P0,
                view: vec![1],
            },
        ];
        assert!(!accepts(&sws, &run));
    }

    #[test]
    fn quiescence_is_tracked() {
        let sws = Sws::new(1, 0u8);
        let mid = run_to_end(&sws, &[SwsAction::UpdateRequest { pid: P0, value: 3 }]).unwrap();
        assert!(!mid.is_quiescent());
        let mut run = Vec::new();
        run.extend(update(P0, 3));
        let end = run_to_end(&sws, &run).unwrap();
        assert!(end.is_quiescent());
        assert_eq!(end.mem(), &[3]);
    }

    #[test]
    fn out_of_range_process_is_rejected() {
        let sws = Sws::new(1, 0u8);
        assert!(!accepts(
            &sws,
            &[SwsAction::ScanRequest {
                pid: ProcessId::new(5)
            }]
        ));
    }
}
