//! Executable I/O-automaton specifications of atomic snapshot memory.
//!
//! Section 2 of the paper defines correctness *operationally*: an
//! implementation is a single-writer atomic snapshot memory iff every
//! well-formed behavior of the implementation is a behavior of the **SWS
//! automaton** of Figure 1 (and analogously for the multi-writer
//! specification of Section 2.2). This crate makes that definition
//! executable:
//!
//! * [`Automaton`] — a minimal deterministic I/O-automaton interface;
//! * [`Sws`] — the SWS automaton, transcribed transition-for-transition
//!   from Figure 1;
//! * [`Mws`] — the multi-writer analogue sketched in Section 2.2;
//! * [`check_well_formed`] — the environment discipline ("never issue two
//!   `Request_i` inputs without an intervening matching `Return_i`");
//! * [`accepts`] — runs an action sequence through an automaton.
//!
//! The linearizability checkers in `snapshot-lin` use these automata as
//! the final authority: a proposed serialization is valid exactly when the
//! corresponding action sequence is accepted here.
//!
//! # Example
//!
//! ```
//! use snapshot_automata::{accepts, Sws, SwsAction};
//! use snapshot_registers::ProcessId;
//!
//! let sws = Sws::new(2, 0u32);
//! let p0 = ProcessId::new(0);
//! let p1 = ProcessId::new(1);
//! let run = vec![
//!     SwsAction::UpdateRequest { pid: p0, value: 7 },
//!     SwsAction::Update { pid: p0, value: 7 },
//!     SwsAction::UpdateReturn { pid: p0 },
//!     SwsAction::ScanRequest { pid: p1 },
//!     SwsAction::Scan { pid: p1, view: vec![7, 0] },
//!     SwsAction::ScanReturn { pid: p1, view: vec![7, 0] },
//! ];
//! assert!(accepts(&sws, &run));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod automaton;
mod mws;
mod sws;
mod wellformed;

pub use automaton::{accepts, run_to_end, Automaton};
pub use mws::{Mws, MwsAction, MwsState};
pub use sws::{Sws, SwsAction, SwsState};
pub use wellformed::{check_well_formed, ExternalEvent, WellFormedError};
