use std::collections::HashMap;
use std::fmt;

use snapshot_registers::ProcessId;

/// An interface event stripped to its shape, for well-formedness checking.
///
/// Values are irrelevant to well-formedness, so this type carries none.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExternalEvent {
    /// `UpdateRequest_i` input.
    UpdateRequest(ProcessId),
    /// `UpdateReturn_i` output.
    UpdateReturn(ProcessId),
    /// `ScanRequest_i` input.
    ScanRequest(ProcessId),
    /// `ScanReturn_i` output.
    ScanReturn(ProcessId),
}

impl ExternalEvent {
    /// The process this event belongs to.
    pub fn pid(&self) -> ProcessId {
        match self {
            ExternalEvent::UpdateRequest(p)
            | ExternalEvent::UpdateReturn(p)
            | ExternalEvent::ScanRequest(p)
            | ExternalEvent::ScanReturn(p) => *p,
        }
    }
}

/// Violations of the environment discipline of Section 2.1: "the
/// environment never issues two `Request_i` inputs without waiting for an
/// intervening, matching `Return_i` output".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WellFormedError {
    /// A request was issued while another operation of the same process
    /// was still in flight.
    OverlappingRequest {
        /// Offending process.
        pid: ProcessId,
        /// Index of the offending event in the input slice.
        index: usize,
    },
    /// A return was emitted with no pending request of the matching kind.
    UnmatchedReturn {
        /// Offending process.
        pid: ProcessId,
        /// Index of the offending event in the input slice.
        index: usize,
    },
}

impl fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormedError::OverlappingRequest { pid, index } => write!(
                f,
                "process {pid} issued a request at event {index} while an operation was in flight"
            ),
            WellFormedError::UnmatchedReturn { pid, index } => write!(
                f,
                "process {pid} returned at event {index} with no matching pending request"
            ),
        }
    }
}

impl std::error::Error for WellFormedError {}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Pending {
    Update,
    Scan,
}

/// Checks the per-process request/return alternation discipline.
///
/// # Errors
///
/// Returns the first violation encountered, with its event index.
///
/// # Example
///
/// ```
/// use snapshot_automata::{check_well_formed, ExternalEvent};
/// use snapshot_registers::ProcessId;
///
/// let p = ProcessId::new(0);
/// assert!(check_well_formed(&[
///     ExternalEvent::UpdateRequest(p),
///     ExternalEvent::UpdateReturn(p),
///     ExternalEvent::ScanRequest(p),
///     ExternalEvent::ScanReturn(p),
/// ])
/// .is_ok());
///
/// assert!(check_well_formed(&[
///     ExternalEvent::ScanRequest(p),
///     ExternalEvent::ScanRequest(p),
/// ])
/// .is_err());
/// ```
pub fn check_well_formed(events: &[ExternalEvent]) -> Result<(), WellFormedError> {
    let mut pending: HashMap<usize, Pending> = HashMap::new();
    for (index, event) in events.iter().enumerate() {
        let pid = event.pid();
        let key = pid.get();
        match event {
            ExternalEvent::UpdateRequest(_) => {
                if pending.insert(key, Pending::Update).is_some() {
                    return Err(WellFormedError::OverlappingRequest { pid, index });
                }
            }
            ExternalEvent::ScanRequest(_) => {
                if pending.insert(key, Pending::Scan).is_some() {
                    return Err(WellFormedError::OverlappingRequest { pid, index });
                }
            }
            ExternalEvent::UpdateReturn(_) => {
                if pending.remove(&key) != Some(Pending::Update) {
                    return Err(WellFormedError::UnmatchedReturn { pid, index });
                }
            }
            ExternalEvent::ScanReturn(_) => {
                if pending.remove(&key) != Some(Pending::Scan) {
                    return Err(WellFormedError::UnmatchedReturn { pid, index });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);

    #[test]
    fn interleaving_across_processes_is_fine() {
        assert!(check_well_formed(&[
            ExternalEvent::UpdateRequest(P0),
            ExternalEvent::ScanRequest(P1),
            ExternalEvent::ScanReturn(P1),
            ExternalEvent::UpdateReturn(P0),
        ])
        .is_ok());
    }

    #[test]
    fn double_request_is_flagged_with_index() {
        let err = check_well_formed(&[
            ExternalEvent::UpdateRequest(P0),
            ExternalEvent::UpdateRequest(P0),
        ])
        .unwrap_err();
        assert_eq!(
            err,
            WellFormedError::OverlappingRequest { pid: P0, index: 1 }
        );
    }

    #[test]
    fn mismatched_return_kind_is_flagged() {
        let err = check_well_formed(&[
            ExternalEvent::UpdateRequest(P0),
            ExternalEvent::ScanReturn(P0),
        ])
        .unwrap_err();
        assert_eq!(err, WellFormedError::UnmatchedReturn { pid: P0, index: 1 });
    }

    #[test]
    fn bare_return_is_flagged() {
        let err = check_well_formed(&[ExternalEvent::UpdateReturn(P1)]).unwrap_err();
        assert_eq!(err, WellFormedError::UnmatchedReturn { pid: P1, index: 0 });
    }

    #[test]
    fn incomplete_final_operations_are_allowed() {
        // A pending operation at the end of a (finite prefix of a) behavior
        // is well-formed.
        assert!(check_well_formed(&[ExternalEvent::ScanRequest(P0)]).is_ok());
    }
}
