use std::fmt;

use snapshot_registers::ProcessId;

use crate::Automaton;

/// An action of the [`Mws`] automaton (the multi-writer specification of
/// Section 2.2): like [`SwsAction`] but updates name a memory word `k` not
/// owned by any process, and scans return all `m` words.
///
/// [`SwsAction`]: crate::SwsAction
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MwsAction<V> {
    /// Process `pid` requests to write `value` to word `word`.
    UpdateRequest {
        /// Requesting process.
        pid: ProcessId,
        /// Target memory word, `0..m`.
        word: usize,
        /// Value to write.
        value: V,
    },
    /// Internal: the update takes effect, storing `value` in `Mem[word]`.
    Update {
        /// Updating process.
        pid: ProcessId,
        /// Target memory word.
        word: usize,
        /// Value written.
        value: V,
    },
    /// The update operation completes.
    UpdateReturn {
        /// Completing process.
        pid: ProcessId,
    },
    /// Process `pid` requests a scan.
    ScanRequest {
        /// Requesting process.
        pid: ProcessId,
    },
    /// Internal: the scan takes effect; `view` must equal `Mem`.
    Scan {
        /// Scanning process.
        pid: ProcessId,
        /// The instantaneous memory contents (`m` entries).
        view: Vec<V>,
    },
    /// The scan completes, returning `view`.
    ScanReturn {
        /// Completing process.
        pid: ProcessId,
        /// The returned vector.
        view: Vec<V>,
    },
}

impl<V> MwsAction<V> {
    /// The process performing this action.
    pub fn pid(&self) -> ProcessId {
        match self {
            MwsAction::UpdateRequest { pid, .. }
            | MwsAction::Update { pid, .. }
            | MwsAction::UpdateReturn { pid }
            | MwsAction::ScanRequest { pid }
            | MwsAction::Scan { pid, .. }
            | MwsAction::ScanReturn { pid, .. } => *pid,
        }
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Interface<V> {
    Idle,
    PendingUpdate(usize, V),
    ReadyUpdateReturn,
    PendingScan,
    ReadyScanReturn(Vec<V>),
}

/// A state of the [`Mws`] automaton.
#[derive(Clone, PartialEq, Eq)]
pub struct MwsState<V> {
    mem: Vec<V>,
    interfaces: Vec<Interface<V>>,
}

impl<V> MwsState<V> {
    /// The current memory contents (`m` words).
    pub fn mem(&self) -> &[V] {
        &self.mem
    }

    /// True when no operation is in flight.
    pub fn is_quiescent(&self) -> bool {
        self.interfaces.iter().all(|h| matches!(h, Interface::Idle))
    }
}

impl<V: fmt::Debug> fmt::Debug for MwsState<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MwsState")
            .field("mem", &self.mem)
            .field("interfaces", &self.interfaces)
            .finish()
    }
}

/// The multi-writer snapshot specification automaton: `n` processes, `m`
/// memory words, any process may update any word.
#[derive(Clone, Debug)]
pub struct Mws<V> {
    n: usize,
    m: usize,
    init: V,
}

impl<V: Clone + Eq + fmt::Debug> Mws<V> {
    /// Creates the specification for `n` processes over `m` words, all
    /// initialized to `init`.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `m` is zero.
    pub fn new(n: usize, m: usize, init: V) -> Self {
        assert!(
            n > 0 && m > 0,
            "MWS needs at least one process and one word"
        );
        Mws { n, m, init }
    }

    /// Number of processes.
    pub fn processes(&self) -> usize {
        self.n
    }

    /// Number of memory words.
    pub fn words(&self) -> usize {
        self.m
    }
}

impl<V: Clone + Eq + fmt::Debug> Automaton for Mws<V> {
    type Action = MwsAction<V>;
    type State = MwsState<V>;

    fn initial(&self) -> MwsState<V> {
        MwsState {
            mem: vec![self.init.clone(); self.m],
            interfaces: vec![Interface::Idle; self.n],
        }
    }

    fn try_step(&self, state: &MwsState<V>, action: &MwsAction<V>) -> Option<MwsState<V>> {
        let i = action.pid().get();
        if i >= self.n {
            return None;
        }
        let mut next = state.clone();
        match action {
            MwsAction::UpdateRequest { word, value, .. } => {
                if *word >= self.m {
                    return None;
                }
                next.interfaces[i] = Interface::PendingUpdate(*word, value.clone());
            }
            MwsAction::Update { word, value, .. } => {
                if state.interfaces[i] != Interface::PendingUpdate(*word, value.clone()) {
                    return None;
                }
                next.mem[*word] = value.clone();
                next.interfaces[i] = Interface::ReadyUpdateReturn;
            }
            MwsAction::UpdateReturn { .. } => {
                if state.interfaces[i] != Interface::ReadyUpdateReturn {
                    return None;
                }
                next.interfaces[i] = Interface::Idle;
            }
            MwsAction::ScanRequest { .. } => {
                next.interfaces[i] = Interface::PendingScan;
            }
            MwsAction::Scan { view, .. } => {
                if state.interfaces[i] != Interface::PendingScan || *view != state.mem {
                    return None;
                }
                next.interfaces[i] = Interface::ReadyScanReturn(view.clone());
            }
            MwsAction::ScanReturn { view, .. } => {
                if state.interfaces[i] != Interface::ReadyScanReturn(view.clone()) {
                    return None;
                }
                next.interfaces[i] = Interface::Idle;
            }
        }
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accepts;

    const P0: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);

    #[test]
    fn any_process_may_write_any_word() {
        let mws = Mws::new(2, 3, 0u8);
        let run = vec![
            MwsAction::UpdateRequest {
                pid: P1,
                word: 0,
                value: 4,
            },
            MwsAction::Update {
                pid: P1,
                word: 0,
                value: 4,
            },
            MwsAction::UpdateReturn { pid: P1 },
            MwsAction::ScanRequest { pid: P0 },
            MwsAction::Scan {
                pid: P0,
                view: vec![4, 0, 0],
            },
            MwsAction::ScanReturn {
                pid: P0,
                view: vec![4, 0, 0],
            },
        ];
        assert!(accepts(&mws, &run));
    }

    #[test]
    fn last_writer_to_a_word_wins() {
        let mws = Mws::new(2, 1, 0u8);
        let run = vec![
            MwsAction::UpdateRequest {
                pid: P0,
                word: 0,
                value: 1,
            },
            MwsAction::Update {
                pid: P0,
                word: 0,
                value: 1,
            },
            MwsAction::UpdateReturn { pid: P0 },
            MwsAction::UpdateRequest {
                pid: P1,
                word: 0,
                value: 2,
            },
            MwsAction::Update {
                pid: P1,
                word: 0,
                value: 2,
            },
            MwsAction::UpdateReturn { pid: P1 },
            MwsAction::ScanRequest { pid: P0 },
            MwsAction::Scan {
                pid: P0,
                view: vec![2],
            },
            MwsAction::ScanReturn {
                pid: P0,
                view: vec![2],
            },
        ];
        assert!(accepts(&mws, &run));
    }

    #[test]
    fn out_of_range_word_is_rejected() {
        let mws = Mws::new(1, 1, 0u8);
        assert!(!accepts(
            &mws,
            &[MwsAction::UpdateRequest {
                pid: P0,
                word: 1,
                value: 1
            }]
        ));
    }

    #[test]
    fn scan_view_length_must_match_word_count() {
        let mws = Mws::new(1, 2, 0u8);
        let run = vec![
            MwsAction::ScanRequest { pid: P0 },
            MwsAction::Scan {
                pid: P0,
                view: vec![0], // too short
            },
        ];
        assert!(!accepts(&mws, &run));
    }
}
