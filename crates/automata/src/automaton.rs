use std::fmt;

/// A deterministic I/O automaton: states, actions, and a partial
/// transition function.
///
/// The paper's specification automata are deterministic once the action is
/// fixed (the action itself carries any nondeterministic choice, e.g. the
/// value returned by a `Scan`), so a partial function `state × action →
/// state` suffices.
pub trait Automaton {
    /// The automaton's actions (inputs, outputs and internal actions
    /// alike).
    type Action: Clone + fmt::Debug;
    /// The automaton's states.
    type State: Clone + fmt::Debug;

    /// The unique start state.
    fn initial(&self) -> Self::State;

    /// Applies `action` to `state`, returning the successor state, or
    /// `None` if the action's precondition does not hold in `state`.
    fn try_step(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State>;
}

/// Runs `actions` from the initial state; returns the final state if every
/// action was enabled when it occurred.
pub fn run_to_end<A: Automaton>(automaton: &A, actions: &[A::Action]) -> Option<A::State> {
    let mut state = automaton.initial();
    for action in actions {
        state = automaton.try_step(&state, action)?;
    }
    Some(state)
}

/// True iff `actions` is an execution of `automaton` from its initial
/// state — the paper's "is a schedule of that automaton".
pub fn accepts<A: Automaton>(automaton: &A, actions: &[A::Action]) -> bool {
    run_to_end(automaton, actions).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy counter automaton: `Inc` always enabled, `Dec` only above 0.
    struct Counter;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Inc,
        Dec,
    }

    impl Automaton for Counter {
        type Action = Op;
        type State = u32;

        fn initial(&self) -> u32 {
            0
        }

        fn try_step(&self, state: &u32, action: &Op) -> Option<u32> {
            match action {
                Op::Inc => Some(state + 1),
                Op::Dec => state.checked_sub(1),
            }
        }
    }

    #[test]
    fn accepts_legal_runs() {
        assert!(accepts(&Counter, &[Op::Inc, Op::Inc, Op::Dec]));
        assert_eq!(run_to_end(&Counter, &[Op::Inc, Op::Inc, Op::Dec]), Some(1));
    }

    #[test]
    fn rejects_disabled_actions() {
        assert!(!accepts(&Counter, &[Op::Dec]));
        assert!(!accepts(&Counter, &[Op::Inc, Op::Dec, Op::Dec]));
    }

    #[test]
    fn empty_run_is_always_accepted() {
        assert!(accepts(&Counter, &[]));
    }
}
