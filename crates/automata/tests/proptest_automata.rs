//! Property tests for the specification automata: serial executions
//! generated against a reference memory model are accepted; mutations
//! that break the semantics are rejected.

use proptest::prelude::*;
use snapshot_automata::{
    accepts, check_well_formed, ExternalEvent, Mws, MwsAction, Sws, SwsAction,
};
use snapshot_registers::ProcessId;

#[derive(Clone, Debug)]
enum SerialOp {
    Update { pid: usize, value: u64 },
    Scan { pid: usize },
}

fn serial_ops(max_procs: usize, len: usize) -> impl Strategy<Value = Vec<SerialOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..max_procs, any::<u64>()).prop_map(|(pid, value)| SerialOp::Update { pid, value }),
            (0..max_procs).prop_map(|pid| SerialOp::Scan { pid }),
        ],
        0..len,
    )
}

/// Expands serial ops into full SWS action triples, tracking the memory
/// model to produce correct scan views.
fn sws_actions(n: usize, ops: &[SerialOp]) -> Vec<SwsAction<u64>> {
    let mut mem = vec![0u64; n];
    let mut actions = Vec::new();
    for op in ops {
        match op {
            SerialOp::Update { pid, value } => {
                let pid = ProcessId::new(pid % n);
                mem[pid.get()] = *value;
                actions.push(SwsAction::UpdateRequest { pid, value: *value });
                actions.push(SwsAction::Update { pid, value: *value });
                actions.push(SwsAction::UpdateReturn { pid });
            }
            SerialOp::Scan { pid } => {
                let pid = ProcessId::new(pid % n);
                actions.push(SwsAction::ScanRequest { pid });
                actions.push(SwsAction::Scan {
                    pid,
                    view: mem.clone(),
                });
                actions.push(SwsAction::ScanReturn {
                    pid,
                    view: mem.clone(),
                });
            }
        }
    }
    actions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serial_executions_are_accepted_by_sws(
        n in 1usize..5,
        ops in serial_ops(5, 20),
    ) {
        let sws = Sws::new(n, 0u64);
        prop_assert!(accepts(&sws, &sws_actions(n, &ops)));
    }

    #[test]
    fn corrupted_scan_views_are_rejected_by_sws(
        n in 1usize..5,
        ops in serial_ops(5, 20),
        which in any::<prop::sample::Index>(),
        delta in 1u64..100,
    ) {
        let mut actions = sws_actions(n, &ops);
        let scan_positions: Vec<usize> = actions
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a, SwsAction::Scan { .. }))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!scan_positions.is_empty());
        let target = scan_positions[which.index(scan_positions.len())];
        if let SwsAction::Scan { view, .. } = &mut actions[target] {
            view[0] = view[0].wrapping_add(delta);
        }
        // The matching ScanReturn still carries the old (correct) view, so
        // either the Scan is disabled (wrong memory) or the return
        // mismatches: rejected both ways.
        let sws = Sws::new(n, 0u64);
        prop_assert!(!accepts(&sws, &actions));
    }

    #[test]
    fn dropped_internal_actions_are_rejected(
        n in 1usize..4,
        ops in serial_ops(4, 10),
        which in any::<prop::sample::Index>(),
    ) {
        let actions = sws_actions(n, &ops);
        let internal_positions: Vec<usize> = actions
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_internal())
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!internal_positions.is_empty());
        let target = internal_positions[which.index(internal_positions.len())];
        let mut mutated = actions.clone();
        mutated.remove(target);
        let sws = Sws::new(n, 0u64);
        prop_assert!(!accepts(&sws, &mutated));
    }

    #[test]
    fn serial_multiwriter_executions_are_accepted_by_mws(
        n in 1usize..4,
        m in 1usize..4,
        raw in prop::collection::vec((0usize..4, 0usize..4, any::<u64>(), any::<bool>()), 0..16),
    ) {
        let mws = Mws::new(n, m, 0u64);
        let mut mem = vec![0u64; m];
        let mut actions = Vec::new();
        for (pid, word, value, is_update) in raw {
            let pid = ProcessId::new(pid % n);
            let word = word % m;
            if is_update {
                mem[word] = value;
                actions.push(MwsAction::UpdateRequest { pid, word, value });
                actions.push(MwsAction::Update { pid, word, value });
                actions.push(MwsAction::UpdateReturn { pid });
            } else {
                actions.push(MwsAction::ScanRequest { pid });
                actions.push(MwsAction::Scan { pid, view: mem.clone() });
                actions.push(MwsAction::ScanReturn { pid, view: mem.clone() });
            }
        }
        prop_assert!(accepts(&mws, &actions));
    }

    #[test]
    fn well_formedness_matches_a_reference_pending_model(
        events in prop::collection::vec((0usize..3, 0u8..4), 0..24)
    ) {
        let events: Vec<ExternalEvent> = events
            .into_iter()
            .map(|(pid, kind)| {
                let pid = ProcessId::new(pid);
                match kind {
                    0 => ExternalEvent::UpdateRequest(pid),
                    1 => ExternalEvent::UpdateReturn(pid),
                    2 => ExternalEvent::ScanRequest(pid),
                    _ => ExternalEvent::ScanReturn(pid),
                }
            })
            .collect();

        // Reference model: per-process pending-kind map.
        let mut pending: std::collections::HashMap<usize, u8> = std::collections::HashMap::new();
        let mut model_ok = true;
        for e in &events {
            let key = e.pid().get();
            match e {
                ExternalEvent::UpdateRequest(_) => {
                    if pending.insert(key, 0).is_some() { model_ok = false; break; }
                }
                ExternalEvent::ScanRequest(_) => {
                    if pending.insert(key, 1).is_some() { model_ok = false; break; }
                }
                ExternalEvent::UpdateReturn(_) => {
                    if pending.remove(&key) != Some(0) { model_ok = false; break; }
                }
                ExternalEvent::ScanReturn(_) => {
                    if pending.remove(&key) != Some(1) { model_ok = false; break; }
                }
            }
        }
        prop_assert_eq!(check_well_formed(&events).is_ok(), model_ok);
    }
}
