//! The typed event taxonomy.
//!
//! Every proof-relevant step in the reproduction — a double-collect round,
//! a handshake transition, a borrow decision, an ABD quorum phase — maps to
//! one [`Event`] variant. Events are small `Copy` values so emitting one
//! into a sink never allocates on the hot path.

use std::fmt;

/// Which snapshot algorithm emitted an event.
///
/// Mirrors the constructions of the paper: the unbounded single-writer
/// protocol (Fig. 2), the bounded single-writer protocol (Fig. 3), the
/// multi-writer protocol (Fig. 4), and the non-wait-free double-collect
/// baseline of Section 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Unbounded single-writer snapshot (Fig. 2).
    UnboundedSw,
    /// Bounded single-writer snapshot with handshake bits (Fig. 3).
    BoundedSw,
    /// Multi-writer snapshot (Fig. 4).
    MultiWriter,
    /// Plain double-collect scan (not wait-free; Section 2 baseline).
    DoubleCollect,
}

impl Algo {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Algo::UnboundedSw => "unbounded_sw",
            Algo::BoundedSw => "bounded_sw",
            Algo::MultiWriter => "multi_writer",
            Algo::DoubleCollect => "double_collect",
        }
    }
}

impl fmt::Display for Algo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one double-collect round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RoundOutcome {
    /// The two collects were equal (no observed movement): the round
    /// yields a direct scan.
    Clean,
    /// At least one register moved between the collects; the scanner
    /// retries or borrows.
    Moved,
}

impl RoundOutcome {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            RoundOutcome::Clean => "clean",
            RoundOutcome::Moved => "moved",
        }
    }
}

impl fmt::Display for RoundOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Kind of primitive register operation, as seen by the scheduler or the
/// instrumented register layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegOp {
    /// A primitive register read.
    Read,
    /// A primitive register write.
    Write,
}

impl RegOp {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            RegOp::Read => "read",
            RegOp::Write => "write",
        }
    }
}

/// Why a partial scan abandoned its certified/native subset path and
/// projected a full scan instead (payload of
/// [`Event::PartialFallback`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FallbackReason {
    /// The backing offers neither a native subset scan nor certified
    /// reads — the projected full scan is the only correct answer.
    Uncertified,
    /// A subset path exists but interference exhausted its round budget
    /// before two clean passes.
    Contended,
}

impl FallbackReason {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            FallbackReason::Uncertified => "uncertified",
            FallbackReason::Contended => "contended",
        }
    }
}

impl fmt::Display for RegOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which ABD quorum phase an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbdPhaseKind {
    /// The read/query phase (collect `(tag, value)` from a majority).
    Query,
    /// The write-back/store phase (push `(tag, value)` to a majority).
    Store,
}

impl AbdPhaseKind {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            AbdPhaseKind::Query => "query",
            AbdPhaseKind::Store => "store",
        }
    }
}

impl fmt::Display for AbdPhaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a causal span covers; the span taxonomy of the request-scoped
/// tracing plane (DESIGN.md §12).
///
/// Each kind names one phase a service request can spend wall-clock time
/// in, so a reconstructed span tree attributes a stall to a named phase:
/// quorum wait ([`SpanKind::QuorumQuery`] / [`SpanKind::QuorumStore`] /
/// [`SpanKind::Collect`]), coalesce park ([`SpanKind::CoalescePark`]), or
/// retry backoff ([`SpanKind::Backoff`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A full service scan, admission to reply.
    Scan,
    /// A partial (subset) service scan, admission to reply.
    PartialScan,
    /// A service update, admission to reply.
    Update,
    /// A health probe against one shard.
    Probe,
    /// One attempt inside a request's retry budget.
    Attempt,
    /// Time spent parked in a coalescing cohort waiting for a leader's
    /// view (or for the seat, when electing).
    CoalescePark,
    /// A collect pass over the backing registers (one of the two halves
    /// of a double collect, or a certified partial collect).
    Collect,
    /// Time the retry loop slept between attempts.
    Backoff,
    /// An ABD query-phase quorum wait.
    QuorumQuery,
    /// An ABD store-phase quorum wait.
    QuorumStore,
}

impl SpanKind {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Scan => "scan",
            SpanKind::PartialScan => "partial_scan",
            SpanKind::Update => "update",
            SpanKind::Probe => "probe",
            SpanKind::Attempt => "attempt",
            SpanKind::CoalescePark => "coalesce_park",
            SpanKind::Collect => "collect",
            SpanKind::Backoff => "backoff",
            SpanKind::QuorumQuery => "quorum_query",
            SpanKind::QuorumStore => "quorum_store",
        }
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a causal span ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanStatus {
    /// The spanned phase completed normally.
    Ok,
    /// The spanned phase surfaced a backend or cohort error.
    Error,
    /// The spanned phase ran out of its request's deadline budget.
    Expired,
    /// The spanned phase was shed by admission control or a health gate.
    Shed,
}

impl SpanStatus {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Error => "error",
            SpanStatus::Expired => "expired",
            SpanStatus::Shed => "shed",
        }
    }
}

impl fmt::Display for SpanStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single typed trace event.
///
/// The variants cover the three layers the reproduction instruments:
///
/// * **snapshot-core** — scan/update spans, double-collect rounds,
///   handshake and toggle transitions, and borrow decisions;
/// * **snapshot-registers / snapshot-sim** — primitive register operations
///   and deterministic scheduler steps;
/// * **snapshot-abd** — quorum phase lifecycle (start, retransmit,
///   quorum reached / failed);
/// * **snapshot-service** — coalescing lead/join decisions, admission
///   rejections, partial-collect outcomes, and the fault path (backend
///   errors, leader abdications, retry exhaustion, shard degradation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A scan operation began.
    ScanBegin {
        /// The algorithm performing the scan.
        algo: Algo,
    },
    /// A scan operation completed.
    ScanEnd {
        /// The algorithm performing the scan.
        algo: Algo,
        /// Double-collect rounds the scan used.
        double_collects: u32,
        /// Whether the scan returned a borrowed (embedded) view.
        borrowed: bool,
    },
    /// An update operation began.
    UpdateBegin {
        /// The algorithm performing the update.
        algo: Algo,
    },
    /// An update operation completed.
    UpdateEnd {
        /// The algorithm performing the update.
        algo: Algo,
        /// Double-collect rounds used by the embedded scan (0 when the
        /// algorithm embeds no scan, e.g. the double-collect baseline).
        double_collects: u32,
    },
    /// A double-collect round began.
    RoundStart {
        /// The algorithm performing the round.
        algo: Algo,
        /// 1-based round index within the current scan.
        round: u32,
    },
    /// A double-collect round ended.
    RoundEnd {
        /// The algorithm performing the round.
        algo: Algo,
        /// 1-based round index within the current scan.
        round: u32,
        /// Whether the two collects agreed.
        outcome: RoundOutcome,
    },
    /// A scanner copied a partner's handshake bit (`q[i][j] := p[j][i]`,
    /// Fig. 3 line 1a / Fig. 4 line 1).
    HandshakeCopy {
        /// The partner process whose bit was copied.
        partner: usize,
        /// The copied bit value.
        bit: bool,
    },
    /// An updater flipped its handshake bit against a partner
    /// (`p[i][j] := ¬q[j][i]`, Fig. 3 line 0 / Fig. 4 line 0).
    HandshakeFlip {
        /// The partner process the bit is aimed at.
        partner: usize,
        /// The new bit value.
        bit: bool,
    },
    /// An updater flipped a toggle as part of publishing a new value.
    ToggleFlip {
        /// The word (multi-writer) or register index (single-writer)
        /// whose toggle flipped.
        word: usize,
        /// The new toggle value.
        toggle: bool,
    },
    /// A scanner decided to borrow an embedded view instead of collecting
    /// one itself (Observation 2 / Lemma 4.2).
    BorrowDecision {
        /// The process whose embedded view is returned.
        lender: usize,
        /// How many moves of the lender the scanner had observed when it
        /// borrowed: 2 for the single-writer protocols, 3 for the
        /// multi-writer protocol.
        moved: u8,
    },
    /// A primitive register read observed by the instrumentation layer.
    RegisterRead,
    /// A primitive register write observed by the instrumentation layer.
    RegisterWrite,
    /// The deterministic simulator granted one step to a process.
    ScheduleStep {
        /// Global 0-based step index (the scheduler's own counter).
        step: u64,
        /// The primitive operation the granted step performs.
        op: RegOp,
    },
    /// An ABD quorum phase started.
    AbdPhaseStart {
        /// Which phase.
        phase: AbdPhaseKind,
    },
    /// An ABD quorum phase retransmitted to replicas that had not acked.
    AbdRetransmit {
        /// Which phase.
        phase: AbdPhaseKind,
        /// 1-based retransmission attempt number.
        attempt: u32,
        /// Number of replicas the retransmission was sent to.
        resent: usize,
    },
    /// An ABD quorum phase reached a majority of acks.
    AbdQuorumReached {
        /// Which phase.
        phase: AbdPhaseKind,
        /// Acks collected when the quorum was declared.
        acks: usize,
        /// Wall-clock phase latency in microseconds.
        elapsed_us: u64,
    },
    /// An ABD quorum phase timed out before reaching a majority.
    AbdQuorumFailed {
        /// Which phase.
        phase: AbdPhaseKind,
        /// Acks collected when the deadline expired.
        acks: usize,
        /// Acks that would have been needed for a quorum.
        needed: usize,
    },
    /// A service-layer scan became the leader of a coalescing cohort and
    /// will run the underlying collect itself.
    CoalesceLead {
        /// The coalescing generation this leader's collect carries.
        generation: u64,
    },
    /// A service-layer scan joined a coalescing cohort, accepting a view
    /// whose collect started after this request (the paper's borrowed-view
    /// rule lifted to the service layer).
    CoalesceJoin {
        /// The generation of the accepted view (strictly greater than the
        /// generation current when this request arrived).
        generation: u64,
    },
    /// The service rejected a request at admission: the in-flight budget
    /// was exhausted (typed backpressure instead of queueing).
    ServiceOverload {
        /// Requests in flight when the rejection was issued.
        inflight: usize,
    },
    /// A service-layer partial collect completed.
    PartialCollect {
        /// Number of segments the caller requested.
        segments: usize,
        /// Certified collect passes performed (0 when the construction
        /// offers no certified reads and the service fell back directly).
        rounds: u32,
        /// Whether the partial scan fell back to projecting a full scan.
        fallback: bool,
    },
    /// A partial scan fell back to projecting a full scan, with the
    /// reason. Emitted alongside the summarizing
    /// [`PartialCollect`](Event::PartialCollect) so dashboards can split
    /// "backing cannot certify" from "subset too contended".
    PartialFallback {
        /// Number of segments the caller requested.
        segments: usize,
        /// Why the certified/native subset path yielded nothing.
        reason: FallbackReason,
    },
    /// A fallible backing core returned an error to the service layer
    /// (e.g. an ABD quorum phase starved without a majority).
    BackendError {
        /// 1-based attempt number within the request's retry budget.
        attempt: u32,
        /// Whether the error is transient (retrying may succeed once the
        /// backing heals).
        retryable: bool,
    },
    /// A coalescing leader abdicated without publishing: its collect
    /// failed (or it panicked), the error was fanned out to the parked
    /// cohort, and the seat was freed so a waiter can re-elect.
    CoalesceAbdicate {
        /// The generation the abdicating leader held.
        generation: u64,
    },
    /// A service request exhausted its retry budget and surfaced the
    /// backend error to the caller.
    RetryExhausted {
        /// Attempts consumed (including the first).
        attempts: u32,
    },
    /// The service shed a request because a shard's health gate is open
    /// (circuit breaker tripped on the windowed backend error rate).
    ShardDegraded {
        /// The degraded shard.
        shard: usize,
        /// Microseconds until the gate half-opens for a probe.
        retry_after_us: u64,
    },
    /// The service shed a request at a shard's gate: the breaker is open,
    /// or its half-open ramp is not yet admitting this priority class.
    ShardShed {
        /// The shedding shard.
        shard: usize,
        /// Priority rank of the shed request (0 = bulk … 3 = probe).
        rank: u8,
        /// Jittered microsecond hint for when a retry is worth trying.
        retry_after_us: u64,
    },
    /// A service request's wall-clock budget ran out before the operation
    /// could finish: it returned a typed error instead of parking.
    DeadlineExceeded {
        /// Attempts started before the budget expired (0 if admission
        /// itself was already past the deadline).
        attempts: u32,
        /// The budget the request was given, in microseconds.
        budget_us: u64,
    },
    /// A causal span opened. The span's id is its begin event's `seq + 1`,
    /// so ids are globally unique on the shared clock axis and `0` can
    /// mean "no parent".
    SpanBegin {
        /// This span's id (begin `seq + 1`; never 0).
        id: u64,
        /// The parent span's id, or 0 for a root span.
        parent: u64,
        /// What the span covers.
        kind: SpanKind,
    },
    /// A causal span closed.
    SpanEnd {
        /// The id assigned at [`Event::SpanBegin`].
        id: u64,
        /// What the span covered (repeated so an end is self-describing
        /// even when the begin was evicted from a bounded ring).
        kind: SpanKind,
        /// How the spanned phase ended.
        status: SpanStatus,
        /// Wall-clock time the span was open, in microseconds.
        elapsed_us: u64,
    },
    /// A key/value annotation attached to an open span.
    SpanNote {
        /// The annotated span's id.
        id: u64,
        /// Static attribute name.
        key: &'static str,
        /// Attribute value.
        value: u64,
    },
    /// A cross-tree causal link: the annotated span consumed the result
    /// of another span (e.g. a coalesced joiner adopting the lead's
    /// collect). Rendered as a flow arrow in the chrome exporter.
    SpanFollows {
        /// The span that consumed the result.
        id: u64,
        /// The span whose result was consumed.
        from: u64,
    },
    /// A shard's windowed circuit breaker tripped open on this recorded
    /// outcome (rate past threshold at volume, or a terminal error).
    BreakerTrip {
        /// The tripped shard.
        shard: usize,
        /// Lifetime trip count for the shard, including this one.
        trips: u64,
    },
    /// A load report was taken: the service's instantaneous diagnosis of
    /// per-shard traffic skew.
    LoadReport {
        /// The busiest shard (meaningful only when `skewed` is true).
        hot_shard: usize,
        /// True if the report diagnosed meaningful skew (volume past the
        /// floor and the leader at ≥ 2× the per-shard mean).
        skewed: bool,
        /// The leader's hit share, in permille of the per-shard mean.
        skew_permille: u64,
        /// Shards whose breakers were open when the report was taken.
        open_shards: u32,
    },
    /// A real-transport client dialed (or redialed) a replica endpoint.
    TransportDial {
        /// The replica index being dialed.
        replica: usize,
        /// 1-based dial attempt since the last successful connection.
        attempt: u32,
    },
    /// A real-transport client completed the wire handshake with a
    /// replica and is draining its outbound queue again.
    TransportConnected {
        /// The connected replica index.
        replica: usize,
        /// Dial attempts it took to get here (1 = first try).
        attempt: u32,
    },
    /// A real-transport connection to a replica was severed; frames queued
    /// while disconnected are dropped (ABD retransmission masks the loss)
    /// and the connection manager redials with capped backoff.
    TransportDropped {
        /// The disconnected replica index.
        replica: usize,
    },
    /// A replica store dropped a torn tail during recovery: the final
    /// log record was incomplete (the process died mid-append), so the
    /// log was truncated back to the last whole record.
    StoreTruncated {
        /// The recovering replica index.
        replica: usize,
        /// Bytes dropped from the end of the log.
        bytes: u64,
    },
    /// A replica store detected mid-log corruption during recovery: a
    /// *complete* record whose CRC32 did not match its body (or whose
    /// header was unparseable). Unlike a torn tail this is silent data
    /// damage, never a crash artifact.
    StoreCorrupt {
        /// The recovering replica index.
        replica: usize,
        /// Byte offset of the corrupt record in the log file.
        offset: u64,
        /// True when the recovery policy truncated the log from the
        /// corrupt record onward; false when recovery was refused.
        truncated: bool,
    },
    /// A replica store wrote a durable checkpoint (atomic
    /// write-new-then-rename) and truncated its log, bounding the next
    /// restart's replay to O(live registers).
    StoreCheckpoint {
        /// The checkpointing replica index.
        replica: usize,
        /// Registers captured in the checkpoint.
        registers: u64,
        /// Size of the checkpoint file in bytes.
        bytes: u64,
    },
    /// A replica store's checkpoint attempt failed (tmp write, rename,
    /// or post-rename log truncate error). The log keeps growing and the
    /// next threshold crossing retries; also counted in
    /// `snapshotd.store.checkpoint_failures`.
    StoreCheckpointFailed {
        /// The checkpointing replica index.
        replica: usize,
    },
    /// A replica store finished replaying its durable state on startup.
    StoreReplayed {
        /// The recovering replica index.
        replica: usize,
        /// Registers restored from the checkpoint file.
        checkpoint_registers: u64,
        /// Log records replayed on top of the checkpoint.
        records: u64,
        /// Replay wall time in microseconds.
        elapsed_us: u64,
    },
}

impl Event {
    /// Stable snake_case name of the variant, used as the JSON `kind`
    /// field and the chrome://tracing event name.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ScanBegin { .. } => "scan_begin",
            Event::ScanEnd { .. } => "scan_end",
            Event::UpdateBegin { .. } => "update_begin",
            Event::UpdateEnd { .. } => "update_end",
            Event::RoundStart { .. } => "round_start",
            Event::RoundEnd { .. } => "round_end",
            Event::HandshakeCopy { .. } => "handshake_copy",
            Event::HandshakeFlip { .. } => "handshake_flip",
            Event::ToggleFlip { .. } => "toggle_flip",
            Event::BorrowDecision { .. } => "borrow_decision",
            Event::RegisterRead => "register_read",
            Event::RegisterWrite => "register_write",
            Event::ScheduleStep { .. } => "schedule_step",
            Event::AbdPhaseStart { .. } => "abd_phase_start",
            Event::AbdRetransmit { .. } => "abd_retransmit",
            Event::AbdQuorumReached { .. } => "abd_quorum_reached",
            Event::AbdQuorumFailed { .. } => "abd_quorum_failed",
            Event::CoalesceLead { .. } => "coalesce_lead",
            Event::CoalesceJoin { .. } => "coalesce_join",
            Event::ServiceOverload { .. } => "service_overload",
            Event::PartialCollect { .. } => "partial_collect",
            Event::PartialFallback { .. } => "partial_fallback",
            Event::BackendError { .. } => "backend_error",
            Event::CoalesceAbdicate { .. } => "coalesce_abdicate",
            Event::RetryExhausted { .. } => "retry_exhausted",
            Event::ShardDegraded { .. } => "shard_degraded",
            Event::ShardShed { .. } => "shard_shed",
            Event::DeadlineExceeded { .. } => "deadline_exceeded",
            Event::SpanBegin { .. } => "span_begin",
            Event::SpanEnd { .. } => "span_end",
            Event::SpanNote { .. } => "span_note",
            Event::SpanFollows { .. } => "span_follows",
            Event::BreakerTrip { .. } => "breaker_trip",
            Event::LoadReport { .. } => "load_report",
            Event::TransportDial { .. } => "transport_dial",
            Event::TransportConnected { .. } => "transport_connected",
            Event::TransportDropped { .. } => "transport_dropped",
            Event::StoreTruncated { .. } => "store_truncated",
            Event::StoreCorrupt { .. } => "store_corrupt",
            Event::StoreCheckpoint { .. } => "store_checkpoint",
            Event::StoreCheckpointFailed { .. } => "store_checkpoint_failed",
            Event::StoreReplayed { .. } => "store_replayed",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::ScanBegin { algo } => write!(f, "scan_begin({algo})"),
            Event::ScanEnd { algo, double_collects, borrowed } => {
                write!(f, "scan_end({algo}, dc={double_collects}, borrowed={borrowed})")
            }
            Event::UpdateBegin { algo } => write!(f, "update_begin({algo})"),
            Event::UpdateEnd { algo, double_collects } => {
                write!(f, "update_end({algo}, dc={double_collects})")
            }
            Event::RoundStart { algo, round } => write!(f, "round_start({algo}, r{round})"),
            Event::RoundEnd { algo, round, outcome } => {
                write!(f, "round_end({algo}, r{round}, {outcome})")
            }
            Event::HandshakeCopy { partner, bit } => {
                write!(f, "handshake_copy(partner=P{partner}, bit={bit})")
            }
            Event::HandshakeFlip { partner, bit } => {
                write!(f, "handshake_flip(partner=P{partner}, bit={bit})")
            }
            Event::ToggleFlip { word, toggle } => {
                write!(f, "toggle_flip(word={word}, toggle={toggle})")
            }
            Event::BorrowDecision { lender, moved } => {
                write!(f, "borrow_decision(lender=P{lender}, moved={moved})")
            }
            Event::RegisterRead => f.write_str("register_read"),
            Event::RegisterWrite => f.write_str("register_write"),
            Event::ScheduleStep { step, op } => write!(f, "schedule_step(#{step}, {op})"),
            Event::AbdPhaseStart { phase } => write!(f, "abd_phase_start({phase})"),
            Event::AbdRetransmit { phase, attempt, resent } => {
                write!(f, "abd_retransmit({phase}, attempt={attempt}, resent={resent})")
            }
            Event::AbdQuorumReached { phase, acks, elapsed_us } => {
                write!(f, "abd_quorum_reached({phase}, acks={acks}, {elapsed_us}us)")
            }
            Event::AbdQuorumFailed { phase, acks, needed } => {
                write!(f, "abd_quorum_failed({phase}, acks={acks}/{needed})")
            }
            Event::CoalesceLead { generation } => {
                write!(f, "coalesce_lead(gen={generation})")
            }
            Event::CoalesceJoin { generation } => {
                write!(f, "coalesce_join(gen={generation})")
            }
            Event::ServiceOverload { inflight } => {
                write!(f, "service_overload(inflight={inflight})")
            }
            Event::PartialCollect { segments, rounds, fallback } => {
                write!(f, "partial_collect(segments={segments}, rounds={rounds}, fallback={fallback})")
            }
            Event::PartialFallback { segments, reason } => {
                write!(f, "partial_fallback(segments={segments}, reason={})", reason.name())
            }
            Event::BackendError { attempt, retryable } => {
                write!(f, "backend_error(attempt={attempt}, retryable={retryable})")
            }
            Event::CoalesceAbdicate { generation } => {
                write!(f, "coalesce_abdicate(gen={generation})")
            }
            Event::RetryExhausted { attempts } => {
                write!(f, "retry_exhausted(attempts={attempts})")
            }
            Event::ShardDegraded { shard, retry_after_us } => {
                write!(f, "shard_degraded(shard={shard}, retry_after={retry_after_us}us)")
            }
            Event::ShardShed { shard, rank, retry_after_us } => {
                write!(f, "shard_shed(shard={shard}, rank={rank}, retry_after={retry_after_us}us)")
            }
            Event::DeadlineExceeded { attempts, budget_us } => {
                write!(f, "deadline_exceeded(attempts={attempts}, budget={budget_us}us)")
            }
            Event::SpanBegin { id, parent, kind } => {
                write!(f, "span_begin(S{id}, parent=S{parent}, {kind})")
            }
            Event::SpanEnd { id, kind, status, elapsed_us } => {
                write!(f, "span_end(S{id}, {kind}, {status}, {elapsed_us}us)")
            }
            Event::SpanNote { id, key, value } => {
                write!(f, "span_note(S{id}, {key}={value})")
            }
            Event::SpanFollows { id, from } => {
                write!(f, "span_follows(S{id} <- S{from})")
            }
            Event::BreakerTrip { shard, trips } => {
                write!(f, "breaker_trip(shard={shard}, trips={trips})")
            }
            Event::LoadReport { hot_shard, skewed, skew_permille, open_shards } => {
                write!(
                    f,
                    "load_report(hot={hot_shard}, skewed={skewed}, skew={skew_permille}‰, \
                     open={open_shards})"
                )
            }
            Event::TransportDial { replica, attempt } => {
                write!(f, "transport_dial(replica=R{replica}, attempt={attempt})")
            }
            Event::TransportConnected { replica, attempt } => {
                write!(f, "transport_connected(replica=R{replica}, attempt={attempt})")
            }
            Event::TransportDropped { replica } => {
                write!(f, "transport_dropped(replica=R{replica})")
            }
            Event::StoreTruncated { replica, bytes } => {
                write!(f, "store_truncated(replica=R{replica}, bytes={bytes})")
            }
            Event::StoreCorrupt { replica, offset, truncated } => {
                write!(
                    f,
                    "store_corrupt(replica=R{replica}, offset={offset}, truncated={truncated})"
                )
            }
            Event::StoreCheckpoint { replica, registers, bytes } => {
                write!(
                    f,
                    "store_checkpoint(replica=R{replica}, registers={registers}, bytes={bytes})"
                )
            }
            Event::StoreCheckpointFailed { replica } => {
                write!(f, "store_checkpoint_failed(replica=R{replica})")
            }
            Event::StoreReplayed { replica, checkpoint_registers, records, elapsed_us } => {
                write!(
                    f,
                    "store_replayed(replica=R{replica}, ckpt={checkpoint_registers}, \
                     records={records}, {elapsed_us}us)"
                )
            }
        }
    }
}

/// A trace event stamped with its global sequence number and the emitting
/// process.
///
/// `seq` comes from the [`Clock`](crate::Clock) shared by every traced
/// component (and, optionally, by the linearizability recorder), so sorting
/// by `seq` recovers one total order over operations *and* events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (total order across processes).
    pub seq: u64,
    /// Emitting process id.
    pub pid: usize,
    /// The typed payload.
    pub event: Event,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:<5} P{:<3} {}", self.seq, self.pid, self.event)
    }
}
