//! Request-scoped causal spans.
//!
//! The flat event stream of this crate records *that* things happened; a
//! [`Span`] records *on whose behalf*. A span is opened against a
//! [`Trace`] with a parent [`SpanId`], emits [`Event::SpanBegin`] /
//! [`Event::SpanEnd`] (plus optional [`Event::SpanNote`] annotations and
//! [`Event::SpanFollows`] cross-tree links) into the ordinary sink
//! pipeline, and is reconstructed offline by
//! [`SpanForest`](crate::SpanForest). Like [`Trace::emit`], opening a
//! span against a disabled trace costs one branch, ticks no clock, and
//! allocates nothing; every method on the resulting disabled span is a
//! no-op.
//!
//! Span ids are derived from the begin event's sequence number
//! (`seq + 1`), so they are globally unique on the shared [`Clock`]
//! axis without any extra shared counter, and `0` is free to mean
//! "no span" ([`SpanId::NONE`]).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use snapshot_obs::{RingSink, SpanKind, SpanStatus, Trace};
//!
//! let sink = Arc::new(RingSink::new(1, 64));
//! let trace = Trace::new(sink.clone());
//! let scan = trace.root_span(0, SpanKind::Scan);
//! let attempt = scan.child(SpanKind::Attempt);
//! attempt.note("attempt", 1);
//! attempt.end(SpanStatus::Ok);
//! scan.end(SpanStatus::Ok);
//!
//! let events = sink.drain();
//! assert_eq!(events.len(), 5); // 2 begins, 1 note, 2 ends
//! ```
//!
//! [`Clock`]: crate::Clock

use std::fmt;
use std::time::Instant;

use crate::event::{Event, SpanKind, SpanStatus, TraceEvent};
use crate::trace::Trace;

/// Identity of a causal span, valid across process boundaries.
///
/// `0` ([`SpanId::NONE`]) means "no span": the parent of a root span, or
/// the ambient span of an untraced request. Real ids are the span's
/// begin-event sequence number plus one, so they are unique per shared
/// clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The absent span (parent of roots; id of disabled spans).
    pub const NONE: SpanId = SpanId(0);

    /// Rebuilds an id from its wire representation (the `id`/`parent`
    /// fields of the span events).
    pub fn from_raw(raw: u64) -> Self {
        SpanId(raw)
    }

    /// The wire representation (0 for [`SpanId::NONE`]).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Whether this is [`SpanId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// An open causal span.
///
/// Created by [`Trace::span`] / [`Trace::root_span`] or [`Span::child`].
/// Dropping a span that was not explicitly [`Span::end`]ed closes it with
/// [`SpanStatus::Ok`], so early returns still produce balanced
/// begin/end pairs. The begin's logical position comes from the shared
/// clock; the end's `elapsed_us` is wall-clock, because stall attribution
/// needs real time while ordering needs the logical axis.
pub struct Span {
    trace: Trace,
    id: SpanId,
    pid: usize,
    kind: SpanKind,
    started: Option<Instant>,
    ended: bool,
}

impl Span {
    /// This span's id, for parenting children or handing across a
    /// rendezvous (e.g. a coalescing lead publishing its collect span to
    /// the joiners).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// What this span covers.
    pub fn kind(&self) -> SpanKind {
        self.kind
    }

    /// Whether this span is actually recording (false when it was opened
    /// against a disabled trace).
    pub fn is_recording(&self) -> bool {
        !self.id.is_none()
    }

    /// Opens a child span on the same trace and pid.
    pub fn child(&self, kind: SpanKind) -> Span {
        self.trace.span(self.pid, kind, self.id)
    }

    /// Attaches a `key = value` annotation to this span.
    ///
    /// `key` must be a plain identifier (the exporters emit it unescaped,
    /// like every other static name in the taxonomy).
    pub fn note(&self, key: &'static str, value: u64) {
        if self.is_recording() {
            self.trace.emit(self.pid, Event::SpanNote { id: self.id.raw(), key, value });
        }
    }

    /// Records that this span consumed the result of `from` (a cross-tree
    /// causal edge; the chrome exporter draws it as a flow arrow).
    ///
    /// No-op if either side is [`SpanId::NONE`].
    pub fn follows_from(&self, from: SpanId) {
        if self.is_recording() && !from.is_none() {
            self.trace.emit(self.pid, Event::SpanFollows { id: self.id.raw(), from: from.raw() });
        }
    }

    /// Closes the span with an explicit status.
    pub fn end(mut self, status: SpanStatus) {
        self.finish(status);
    }

    fn finish(&mut self, status: SpanStatus) {
        if self.ended {
            return;
        }
        self.ended = true;
        let elapsed_us = self
            .started
            .map(|t| u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        self.trace.emit(
            self.pid,
            Event::SpanEnd { id: self.id.raw(), kind: self.kind, status, elapsed_us },
        );
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish(SpanStatus::Ok);
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Span")
            .field("id", &self.id)
            .field("pid", &self.pid)
            .field("kind", &self.kind)
            .field("recording", &self.is_recording())
            .finish()
    }
}

impl Trace {
    /// Opens a span of `kind` on behalf of process `pid`, parented under
    /// `parent` (use [`SpanId::NONE`] or [`Trace::root_span`] for roots).
    ///
    /// On a disabled trace this returns an inert span without ticking the
    /// clock, mirroring [`Trace::emit`].
    pub fn span(&self, pid: usize, kind: SpanKind, parent: SpanId) -> Span {
        match self.sink() {
            Some(sink) => {
                let seq = self.clock().tick();
                let id = SpanId(seq + 1);
                sink.emit(TraceEvent {
                    seq,
                    pid,
                    event: Event::SpanBegin { id: id.raw(), parent: parent.raw(), kind },
                });
                Span {
                    trace: self.clone(),
                    id,
                    pid,
                    kind,
                    started: Some(Instant::now()),
                    ended: false,
                }
            }
            None => Span {
                trace: self.clone(),
                id: SpanId::NONE,
                pid,
                kind,
                started: None,
                ended: true,
            },
        }
    }

    /// Opens a root span (no parent) of `kind` on behalf of `pid`.
    pub fn root_span(&self, pid: usize, kind: SpanKind) -> Span {
        self.span(pid, kind, SpanId::NONE)
    }
}
