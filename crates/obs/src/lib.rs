//! Unified tracing and metrics for the atomic-snapshot reproduction
//! (Afek, Attiya, Dolev, Gafni, Merritt, Shavit — *Atomic Snapshots of
//! Shared Memory*, PODC 1990).
//!
//! The paper's complexity and correctness arguments are statements about
//! *executions*: how many double-collect rounds a scan used (Lemmas 3.4
//! and 4.4's `n+1` bound), which handshake bits flipped, when a scanner
//! gave up collecting and borrowed an embedded view (Observation 2), how
//! an emulated register's quorum phases behaved. This crate turns each of
//! those proof-relevant steps into a typed [`Event`] flowing through a
//! single [`Sink`] trait, plus a [`Registry`] of named metrics, so every
//! layer of the workspace reports through one model:
//!
//! * **Events** ([`Event`], [`TraceEvent`]) — small `Copy` payloads
//!   stamped with a global sequence number from a shared [`Clock`];
//! * **Trace handle** ([`Trace`]) — the cloneable object instrumented
//!   code holds; disabled by default so an untraced hot path pays one
//!   branch and touches no shared state;
//! * **Sinks** — [`RingSink`] (bounded per-process rings, merged on
//!   drain), [`CountingSink`] (per-kind counts), [`FanoutSink`];
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`], [`Registry`]) —
//!   pre-resolved atomic handles behind a named registry; histograms use
//!   the log₂-microsecond buckets the ABD layer has always reported;
//! * **Exporters** ([`json_lines`], [`chrome_tracing`]) — JSON-lines for
//!   machine consumption and a chrome://tracing document loadable in
//!   `about:tracing` or Perfetto;
//! * **Causal spans** ([`Span`], [`SpanId`], [`SpanForest`]) — the
//!   request-scoped tracing plane: parent-linked begin/end/annotate
//!   emitted through the same sinks, reconstructable into span trees
//!   that attribute a request's latency to named phases;
//! * **Flight recorder** ([`FlightRecorder`], [`FlightDump`]) — a
//!   bounded black-box ring frozen on anomalies (deadline exceeded,
//!   breaker trip, overload shed) and rendered as cause-headed
//!   JSON-lines.
//!
//! Sharing a trace's [`Clock`] with the linearizability recorder puts
//! operation intervals and trace events on one timestamp axis, which is
//! what lets a rejected Wing–Gong history be dumped as an annotated
//! timeline with the events that produced it.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use snapshot_obs::{Algo, Event, RingSink, Trace};
//!
//! let sink = Arc::new(RingSink::new(2, 64));
//! let trace = Trace::new(sink.clone());
//! trace.emit(0, Event::ScanBegin { algo: Algo::UnboundedSw });
//! trace.emit(1, Event::BorrowDecision { lender: 0, moved: 2 });
//! trace.emit(0, Event::ScanEnd { algo: Algo::UnboundedSw, double_collects: 1, borrowed: false });
//!
//! let events = sink.drain();
//! assert_eq!(events.len(), 3);
//! assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod export;
mod flight;
mod metrics;
mod span;
mod spantree;
mod trace;

pub use event::{
    AbdPhaseKind, Algo, Event, FallbackReason, RegOp, RoundOutcome, SpanKind, SpanStatus,
    TraceEvent,
};
pub use export::{chrome_tracing, json_lines};
pub use flight::{DumpCause, FlightDump, FlightRecorder};
pub use metrics::{
    bucket_of, Counter, Gauge, Histogram, HistogramSnapshot, LatencySummary, MetricValue,
    Registry, HISTOGRAM_BUCKETS,
};
pub use span::{Span, SpanId};
pub use spantree::{SpanForest, SpanNode};
pub use trace::{Clock, CountingSink, FanoutSink, RingSink, Sink, Trace};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn disabled_trace_is_a_no_op_and_does_not_tick() {
        let trace = Trace::disabled();
        assert!(!trace.is_enabled());
        trace.emit(0, Event::RegisterRead);
        assert_eq!(trace.clock().now(), 0);
    }

    #[test]
    fn ring_sink_orders_by_seq_across_processes() {
        let sink = Arc::new(RingSink::new(3, 16));
        let trace = Trace::new(sink.clone());
        trace.emit(2, Event::RegisterRead);
        trace.emit(0, Event::RegisterWrite);
        trace.emit(1, Event::RegisterRead);
        let events = sink.drain();
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(events.iter().map(|e| e.pid).collect::<Vec<_>>(), vec![2, 0, 1]);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn ring_sink_drops_oldest_when_full() {
        let sink = Arc::new(RingSink::new(1, 2));
        let trace = Trace::new(sink.clone());
        for _ in 0..5 {
            trace.emit(0, Event::RegisterRead);
        }
        assert_eq!(sink.dropped(), 3);
        let events = sink.drain();
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn counting_sink_counts_by_kind() {
        let sink = Arc::new(CountingSink::new());
        let trace = Trace::new(sink.clone());
        trace.emit(0, Event::RegisterRead);
        trace.emit(0, Event::RegisterRead);
        trace.emit(1, Event::BorrowDecision { lender: 0, moved: 2 });
        assert_eq!(sink.total(), 3);
        assert_eq!(sink.count("register_read"), 2);
        assert_eq!(sink.count("borrow_decision"), 1);
        assert_eq!(sink.count("toggle_flip"), 0);
    }

    #[test]
    fn shared_clock_gives_one_total_order() {
        let a = Arc::new(RingSink::new(1, 16));
        let clock = Clock::new();
        let t1 = Trace::new(a.clone()).with_clock(clock.clone());
        let t2 = Trace::new(a.clone()).with_clock(clock.clone());
        t1.emit(0, Event::RegisterRead);
        t2.emit(0, Event::RegisterWrite);
        t1.emit(0, Event::RegisterRead);
        let seqs: Vec<u64> = a.drain().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(clock.now(), 3);
    }

    #[test]
    fn registry_get_or_create_returns_shared_handles() {
        let r = Registry::new();
        let c1 = r.counter("x.count");
        let c2 = r.counter("x.count");
        c1.add(2);
        c2.inc();
        assert_eq!(c1.get(), 3);
        let g = r.gauge("x.level");
        g.set(-4);
        g.add(1);
        assert_eq!(r.gauge("x.level").get(), -3);
        let names: Vec<String> = r.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["x.count".to_string(), "x.level".to_string()]);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn registry_rejects_type_confusion() {
        let r = Registry::new();
        let _ = r.counter("m");
        let _ = r.gauge("m");
    }

    #[test]
    fn histogram_buckets_are_log2_micros() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_walk_the_buckets() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile_upper_bound(0.5), None);
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket 3: [8, 16)
        }
        h.record(Duration::from_millis(100)); // bucket 16
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.quantile_upper_bound(0.5), Some(16));
        assert_eq!(snap.quantile_upper_bound(1.0), Some(1 << 17));
    }

    #[test]
    fn json_lines_emits_one_parseable_object_per_event() {
        let events = vec![
            TraceEvent { seq: 0, pid: 1, event: Event::ScanBegin { algo: Algo::BoundedSw } },
            TraceEvent {
                seq: 1,
                pid: 0,
                event: Event::AbdQuorumReached {
                    phase: AbdPhaseKind::Query,
                    acks: 2,
                    elapsed_us: 37,
                },
            },
            TraceEvent {
                seq: 2,
                pid: 1,
                event: Event::ScanEnd { algo: Algo::BoundedSw, double_collects: 1, borrowed: false },
            },
        ];
        let out = json_lines(&events);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"pid\":1,\"kind\":\"scan_begin\",\"algo\":\"bounded_sw\"}"
        );
        assert!(lines[1].contains("\"phase\":\"query\""));
        assert!(lines[1].contains("\"elapsed_us\":37"));
        assert!(lines[2].contains("\"borrowed\":false"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn spans_nest_annotate_and_reconstruct() {
        let sink = Arc::new(RingSink::new(2, 128));
        let trace = Trace::new(sink.clone());
        let scan = trace.root_span(0, SpanKind::Scan);
        let attempt = scan.child(SpanKind::Attempt);
        attempt.note("attempt", 1);
        let park = attempt.child(SpanKind::CoalescePark);
        park.end(SpanStatus::Expired);
        attempt.end(SpanStatus::Error);
        scan.end(SpanStatus::Expired);

        let events = sink.drain();
        let forest = SpanForest::build(&events);
        forest.check().expect("span invariants hold");
        assert_eq!(forest.roots().len(), 1);
        let root = forest.roots()[0];
        assert_eq!(root.kind, SpanKind::Scan);
        assert_eq!(root.status, Some(SpanStatus::Expired));
        let attempt = forest.node(root.children[0]).unwrap();
        assert_eq!(attempt.kind, SpanKind::Attempt);
        assert_eq!(attempt.notes, vec![("attempt", 1)]);
        let park = forest.node(attempt.children[0]).unwrap();
        assert_eq!(park.kind, SpanKind::CoalescePark);
        assert_eq!(forest.path_to_root(park.id), vec![park.id, attempt.id, root.id]);
        assert!(forest.attribute_stall(root.id).unwrap().is_stall_phase());
    }

    #[test]
    fn disabled_trace_spans_are_inert() {
        let trace = Trace::disabled();
        let span = trace.root_span(0, SpanKind::Scan);
        assert!(!span.is_recording());
        assert!(span.id().is_none());
        span.note("k", 1);
        let child = span.child(SpanKind::Attempt);
        child.end(SpanStatus::Ok);
        span.end(SpanStatus::Ok);
        assert_eq!(trace.clock().now(), 0);
    }

    #[test]
    fn dropping_a_span_ends_it_ok() {
        let sink = Arc::new(RingSink::new(1, 16));
        let trace = Trace::new(sink.clone());
        {
            let _span = trace.root_span(0, SpanKind::Update);
        }
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[1].event,
            Event::SpanEnd { status: SpanStatus::Ok, kind: SpanKind::Update, .. }
        ));
    }

    #[test]
    fn span_forest_flags_unmatched_and_misnested_spans() {
        // An end without a begin is an orphan.
        let orphan_end = vec![TraceEvent {
            seq: 0,
            pid: 0,
            event: Event::SpanEnd {
                id: 9,
                kind: SpanKind::Scan,
                status: SpanStatus::Ok,
                elapsed_us: 1,
            },
        }];
        assert!(SpanForest::build(&orphan_end).check().is_err());

        // A child ending after its parent violates nesting.
        let misnested = vec![
            TraceEvent { seq: 0, pid: 0, event: Event::SpanBegin { id: 1, parent: 0, kind: SpanKind::Scan } },
            TraceEvent { seq: 1, pid: 0, event: Event::SpanBegin { id: 2, parent: 1, kind: SpanKind::Attempt } },
            TraceEvent {
                seq: 2,
                pid: 0,
                event: Event::SpanEnd { id: 1, kind: SpanKind::Scan, status: SpanStatus::Ok, elapsed_us: 1 },
            },
            TraceEvent {
                seq: 3,
                pid: 0,
                event: Event::SpanEnd { id: 2, kind: SpanKind::Attempt, status: SpanStatus::Ok, elapsed_us: 1 },
            },
        ];
        assert!(SpanForest::build(&misnested).check().is_err());
    }

    #[test]
    fn chrome_tracing_renders_spans_async_with_flow_arrows() {
        let sink = Arc::new(RingSink::new(2, 64));
        let trace = Trace::new(sink.clone());
        let lead_collect = trace.root_span(0, SpanKind::Collect);
        let joiner = trace.root_span(1, SpanKind::CoalescePark);
        joiner.follows_from(lead_collect.id());
        joiner.end(SpanStatus::Ok);
        lead_collect.end(SpanStatus::Ok);

        let out = chrome_tracing(&sink.drain());
        assert_eq!(out.matches("\"ph\":\"b\"").count(), 2);
        assert_eq!(out.matches("\"ph\":\"e\"").count(), 2);
        assert_eq!(out.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(out.matches("\"ph\":\"f\"").count(), 1);
        assert!(out.contains("\"cat\":\"span\""));
        assert!(out.contains("\"cat\":\"flow\""));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }

    #[test]
    fn flight_recorder_freezes_the_ring_on_anomalies() {
        let recorder = Arc::new(FlightRecorder::new(16));
        let trace = Trace::new(recorder.clone());
        let span = trace.root_span(2, SpanKind::Scan);
        span.note("attempt", 1);
        trace.emit(2, Event::DeadlineExceeded { attempts: 1, budget_us: 500 });
        span.end(SpanStatus::Expired);

        let dumps = recorder.dumps();
        assert_eq!(dumps.len(), 1);
        let dump = &dumps[0];
        assert_eq!(dump.cause, DumpCause::DeadlineExceeded);
        assert_eq!(dump.events.len(), 3); // begin, note, trigger
        assert!(matches!(dump.events.last().unwrap().event, Event::DeadlineExceeded { .. }));
        let rendered = dump.render();
        let first = rendered.lines().next().unwrap();
        assert!(first.contains("\"kind\":\"flight_dump\""));
        assert!(first.contains("\"cause\":\"deadline_exceeded\""));
        // Every line keeps the jsonl schema: seq ordered, seq/pid/kind.
        let seqs: Vec<u64> = rendered
            .lines()
            .map(|l| {
                assert!(l.contains("\"seq\":") && l.contains("\"pid\":") && l.contains("\"kind\":"));
                l.split("\"seq\":").nth(1).unwrap().split([',', '}']).next().unwrap().parse().unwrap()
            })
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
    }

    #[test]
    fn flight_recorder_bounds_its_dumps() {
        let recorder = Arc::new(FlightRecorder::with_max_dumps(4, 2));
        let trace = Trace::new(recorder.clone());
        for _ in 0..5 {
            trace.emit(0, Event::BreakerTrip { shard: 1, trips: 1 });
        }
        assert_eq!(recorder.dumps().len(), 2);
        assert_eq!(recorder.suppressed(), 3);
        let taken = recorder.take_dumps();
        assert_eq!(taken.len(), 2);
        assert!(recorder.dumps().is_empty());
        assert!(recorder.trigger(DumpCause::Manual));
        assert_eq!(recorder.dumps()[0].cause, DumpCause::Manual);
    }

    #[test]
    fn ring_sink_mirrors_drops_into_the_registry_gauge() {
        let registry = Registry::new();
        let sink = Arc::new(RingSink::new(1, 2).with_registry(&registry));
        let trace = Trace::new(sink.clone());
        for _ in 0..5 {
            trace.emit(0, Event::RegisterRead);
        }
        assert_eq!(sink.dropped(), 3);
        assert_eq!(registry.gauge("obs.ring.dropped").get(), 3);
    }

    #[test]
    fn latency_summary_distills_histogram_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().summary(), LatencySummary::default());
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket 3: [8, 16)
        }
        h.record(Duration::from_millis(100)); // bucket 16
        let s = h.snapshot().summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 16);
        assert_eq!(s.p95_us, 16);
        assert_eq!(s.p99_us, 16);
    }

    #[test]
    fn chrome_tracing_pairs_spans_and_marks_instants() {
        let events = vec![
            TraceEvent { seq: 0, pid: 3, event: Event::UpdateBegin { algo: Algo::MultiWriter } },
            TraceEvent { seq: 1, pid: 3, event: Event::ToggleFlip { word: 0, toggle: true } },
            TraceEvent {
                seq: 2,
                pid: 3,
                event: Event::UpdateEnd { algo: Algo::MultiWriter, double_collects: 1 },
            },
        ];
        let out = chrome_tracing(&events);
        assert!(out.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(out.ends_with("]}"));
        assert_eq!(out.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(out.matches("\"ph\":\"E\"").count(), 1);
        assert_eq!(out.matches("\"ph\":\"i\"").count(), 1);
        assert!(out.contains("\"tid\":3"));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
    }
}
