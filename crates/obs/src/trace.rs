//! The trace handle, the [`Sink`] trait, and the built-in sinks.
//!
//! A [`Trace`] is the cheap, cloneable handle components hold. It is either
//! disabled (the default — emitting costs exactly one branch and performs
//! no atomic operation) or carries an `Arc<dyn Sink>` plus a shared
//! [`Clock`] that stamps every event with a global sequence number.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{Event, TraceEvent};
use crate::metrics::{Gauge, Registry};

/// A shared logical clock handing out globally unique, monotonically
/// increasing sequence numbers.
///
/// Cloning shares the underlying counter. The linearizability recorder can
/// share a trace's clock so operation invocation/response timestamps and
/// trace event sequence numbers live on one axis — that is what makes the
/// annotated timelines line up.
#[derive(Clone, Debug, Default)]
pub struct Clock(Arc<AtomicU64>);

impl Clock {
    /// Creates a clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next timestamp (post-incrementing the counter).
    pub fn tick(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the current counter value without advancing it.
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Destination for trace events.
///
/// Implementations must tolerate concurrent emission from many threads.
/// `emit` sits on algorithm hot paths, so implementations should be cheap
/// and must never block on anything slower than a short critical section.
pub trait Sink: Send + Sync {
    /// Accepts one stamped event.
    fn emit(&self, event: TraceEvent);
}

/// The cloneable tracing handle held by instrumented components.
///
/// The default (`Trace::default()` / [`Trace::disabled`]) carries no sink:
/// [`Trace::emit`] then costs a single branch on an `Option` and touches no
/// shared state, which is what keeps uninstrumented hot paths within the
/// no-regression budget.
#[derive(Clone, Default)]
pub struct Trace {
    sink: Option<Arc<dyn Sink>>,
    clock: Clock,
}

impl Trace {
    /// A disabled trace; emitting into it is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A trace feeding `sink`, stamped by a fresh clock.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Trace { sink: Some(sink), clock: Clock::new() }
    }

    /// Replaces the clock, so several traces (or a trace and a
    /// linearizability recorder) share one timestamp axis.
    #[must_use]
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// The clock stamping this trace's events.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Whether a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The attached sink, if any (the span constructor needs to emit an
    /// event at a pre-assigned sequence number).
    pub(crate) fn sink(&self) -> Option<&Arc<dyn Sink>> {
        self.sink.as_ref()
    }

    /// Emits `event` on behalf of process `pid`.
    ///
    /// Disabled traces return immediately without ticking the clock.
    #[inline]
    pub fn emit(&self, pid: usize, event: Event) {
        if let Some(sink) = &self.sink {
            sink.emit(TraceEvent { seq: self.clock.tick(), pid, event });
        }
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.is_enabled())
            .field("clock", &self.clock.now())
            .finish()
    }
}

/// Per-process bounded ring buffers.
///
/// Each process writes to its own ring behind its own mutex, so emission
/// from distinct processes never contends; a full ring drops the oldest
/// event and counts the drop instead of blocking. Events from a pid at or
/// beyond the configured process count land in the last ring (kept rather
/// than lost, still ordered by `seq` on drain).
pub struct RingSink {
    rings: Vec<Mutex<VecDeque<TraceEvent>>>,
    capacity: usize,
    dropped: AtomicU64,
    dropped_gauge: Option<Gauge>,
}

impl RingSink {
    /// A sink with `n` per-process rings of `capacity` events each.
    ///
    /// # Panics
    /// Panics if `n` or `capacity` is zero.
    pub fn new(n: usize, capacity: usize) -> Self {
        assert!(n > 0, "RingSink needs at least one ring");
        assert!(capacity > 0, "RingSink rings need nonzero capacity");
        RingSink {
            rings: (0..n).map(|_| Mutex::new(VecDeque::with_capacity(capacity))).collect(),
            capacity,
            dropped: AtomicU64::new(0),
            dropped_gauge: None,
        }
    }

    /// Mirrors the eviction count into the `obs.ring.dropped` gauge on
    /// `registry`, so silent trace loss shows up in metric snapshots next
    /// to the component metrics instead of only on this sink.
    #[must_use]
    pub fn with_registry(mut self, registry: &Registry) -> Self {
        self.dropped_gauge = Some(registry.gauge("obs.ring.dropped"));
        self
    }

    /// Events evicted because a ring was full.
    #[must_use = "a nonzero drop count means the trace is incomplete"]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drains every ring and returns all buffered events merged into one
    /// sequence ordered by `seq`.
    #[must_use = "draining discards the buffered events if the result is unused"]
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::new();
        for ring in &self.rings {
            let mut g = ring.lock().expect("RingSink ring poisoned");
            all.extend(g.drain(..));
        }
        all.sort_by_key(|e| e.seq);
        all
    }
}

impl Sink for RingSink {
    fn emit(&self, event: TraceEvent) {
        let idx = event.pid.min(self.rings.len() - 1);
        let mut ring = self.rings[idx].lock().expect("RingSink ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            if let Some(gauge) = &self.dropped_gauge {
                gauge.add(1);
            }
        }
        ring.push_back(event);
    }
}

impl fmt::Debug for RingSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RingSink")
            .field("rings", &self.rings.len())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Counts events per kind without buffering them.
///
/// Useful as the "counting sink" in overhead experiments and in tests that
/// only care that a class of event fired.
#[derive(Debug, Default)]
pub struct CountingSink {
    counts: Mutex<Vec<(&'static str, u64)>>,
    total: AtomicU64,
}

impl CountingSink {
    /// A fresh sink with all counts at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total events emitted.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Events of the given [`Event::kind`] emitted so far.
    pub fn count(&self, kind: &str) -> u64 {
        let counts = self.counts.lock().expect("CountingSink poisoned");
        counts.iter().find(|(k, _)| *k == kind).map_or(0, |(_, c)| *c)
    }

    /// All `(kind, count)` pairs, sorted by kind.
    pub fn counts(&self) -> Vec<(&'static str, u64)> {
        let mut out = self.counts.lock().expect("CountingSink poisoned").clone();
        out.sort_by_key(|(k, _)| *k);
        out
    }
}

impl Sink for CountingSink {
    fn emit(&self, event: TraceEvent) {
        self.total.fetch_add(1, Ordering::Relaxed);
        let kind = event.event.kind();
        let mut counts = self.counts.lock().expect("CountingSink poisoned");
        match counts.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, c)) => *c += 1,
            None => counts.push((kind, 1)),
        }
    }
}

/// Broadcasts each event to several sinks in order.
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl FanoutSink {
    /// A fanout over the given sinks.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl Sink for FanoutSink {
    fn emit(&self, event: TraceEvent) {
        for sink in &self.sinks {
            sink.emit(event);
        }
    }
}

impl fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FanoutSink").field("sinks", &self.sinks.len()).finish()
    }
}
