//! Metrics registry: named counters, gauges, and fixed-bucket histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! of the registered metric, so hot paths update a pre-resolved atomic and
//! never touch the registry lock. Histogram buckets use the same
//! log₂-of-microseconds scheme the ABD layer has always reported, so
//! migrating `NetworkStats` onto the registry changes no observable
//! quantiles.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of histogram buckets; bucket `k` holds samples whose value `v`
/// (in microseconds) satisfies `ilog2(max(v, 1)) == k`, with the last
/// bucket absorbing everything larger.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A free-standing gauge (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) to the gauge.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log₂ histogram over microsecond-scale values.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl fmt::Debug for HistogramInner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HistogramInner").finish_non_exhaustive()
    }
}

/// Maps a microsecond value to its bucket index.
pub fn bucket_of(micros: u64) -> usize {
    let v = micros.max(1);
    (v.ilog2() as usize).min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    /// A free-standing histogram (not attached to any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a duration (bucketed by whole microseconds).
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_micros(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records a raw microsecond value.
    #[inline]
    pub fn record_micros(&self, micros: u64) {
        self.0.buckets[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// An immutable copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.0.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets }
    }
}

/// A point-in-time copy of a [`Histogram`]'s buckets.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket counts; see [`bucket_of`] for the bucket boundaries.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// An upper bound (in microseconds) on the `q`-quantile (`q` clamped
    /// to `[0, 1]`): the exclusive upper edge of the bucket containing
    /// that quantile. Returns `None` if nothing was recorded.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(1u64.checked_shl(k as u32 + 1).unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }
}

/// Per-op-class latency quantiles distilled from a log₂ histogram.
///
/// The quantiles are bucket upper bounds (exclusive, in microseconds) —
/// the resolution the histograms have always had — so a summary is a
/// compact, comparable view, not a new measurement.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Upper bound on the median, in microseconds (0 when empty).
    pub p50_us: u64,
    /// Upper bound on the 95th percentile, in microseconds (0 when empty).
    pub p95_us: u64,
    /// Upper bound on the 99th percentile, in microseconds (0 when empty).
    pub p99_us: u64,
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50<={}us p95<={}us p99<={}us",
            self.count, self.p50_us, self.p95_us, self.p99_us
        )
    }
}

impl HistogramSnapshot {
    /// Distills this snapshot into a [`LatencySummary`].
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            p50_us: self.quantile_upper_bound(0.50).unwrap_or(0),
            p95_us: self.quantile_upper_bound(0.95).unwrap_or(0),
            p99_us: self.quantile_upper_bound(0.99).unwrap_or(0),
        }
    }
}

impl fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count())
            .field("p50_us_le", &self.quantile_upper_bound(0.50))
            .field("p99_us_le", &self.quantile_upper_bound(0.99))
            .finish()
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A point-in-time value exported from the registry.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's current buckets.
    Histogram(HistogramSnapshot),
}

/// Named registry of metrics.
///
/// `counter` / `gauge` / `histogram` get-or-create by name and return a
/// handle; asking for an existing name with a different metric type
/// panics (it is always a programming error).
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<Vec<(String, Metric)>>,
}

impl fmt::Debug for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.type_name())
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().expect("Registry poisoned");
        if let Some((_, m)) = metrics.iter().find(|(n, _)| n == name) {
            return m.clone();
        }
        let m = make();
        metrics.push((name.to_string(), m.clone()));
        m
    }

    /// Get-or-create the counter called `name`.
    ///
    /// # Panics
    /// Panics if `name` is registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.type_name()),
        }
    }

    /// Get-or-create the gauge called `name`.
    ///
    /// # Panics
    /// Panics if `name` is registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.type_name()),
        }
    }

    /// Get-or-create the histogram called `name`.
    ///
    /// # Panics
    /// Panics if `name` is registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.type_name()),
        }
    }

    /// All registered metrics with their current values, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let metrics = self.metrics.lock().expect("Registry poisoned");
        let mut out: Vec<(String, MetricValue)> = metrics
            .iter()
            .map(|(n, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (n.clone(), v)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Plain-text rendering of [`Registry::snapshot`], one metric per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            match value {
                MetricValue::Counter(v) => out.push_str(&format!("{name:<40} counter   {v}\n")),
                MetricValue::Gauge(v) => out.push_str(&format!("{name:<40} gauge     {v}\n")),
                MetricValue::Histogram(h) => out.push_str(&format!(
                    "{name:<40} histogram count={} p50<={:?}us p99<={:?}us\n",
                    h.count(),
                    h.quantile_upper_bound(0.50),
                    h.quantile_upper_bound(0.99),
                )),
            }
        }
        out
    }
}
