//! Anomaly-triggered flight recorder.
//!
//! A [`FlightRecorder`] is a [`Sink`] that keeps a bounded ring of the
//! most recent events (spans included) and, when an anomaly event flows
//! through it — a [`DeadlineExceeded`](crate::Event::DeadlineExceeded), a
//! [`BreakerTrip`](crate::Event::BreakerTrip), or an
//! [`Overloaded` shed](crate::Event::ServiceOverload) — freezes a copy of
//! the ring as a [`FlightDump`]: the black-box recording of what the
//! stack was doing in the run-up to the anomaly. Dumps render as
//! JSON-lines with a `flight_dump` cause header, so the same tooling that
//! reads ordinary trace dumps reads these.
//!
//! Wire it next to (not instead of) a [`RingSink`](crate::RingSink) with
//! a [`FanoutSink`](crate::FanoutSink), or alone when only anomaly
//! forensics are wanted.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

use crate::event::{Event, TraceEvent};
use crate::export::json_lines;
use crate::trace::Sink;

/// Why a [`FlightDump`] was captured.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DumpCause {
    /// A request's wall-clock budget expired
    /// ([`Event::DeadlineExceeded`]).
    DeadlineExceeded,
    /// A shard's circuit breaker tripped open ([`Event::BreakerTrip`]).
    BreakerTrip,
    /// Admission control shed a request ([`Event::ServiceOverload`]).
    Overloaded,
    /// [`FlightRecorder::trigger`] was called explicitly.
    Manual,
}

impl DumpCause {
    /// Stable lowercase name used in the dump header.
    pub fn name(self) -> &'static str {
        match self {
            DumpCause::DeadlineExceeded => "deadline_exceeded",
            DumpCause::BreakerTrip => "breaker_trip",
            DumpCause::Overloaded => "overloaded",
            DumpCause::Manual => "manual",
        }
    }
}

impl fmt::Display for DumpCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A frozen copy of the recorder's ring at the moment an anomaly fired.
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// What froze the ring.
    pub cause: DumpCause,
    /// Sequence number of the triggering event (the last element of
    /// `events` for automatic dumps; the newest buffered event, if any,
    /// for manual ones).
    pub trigger_seq: u64,
    /// Pid that emitted the triggering event (0 for manual dumps).
    pub trigger_pid: usize,
    /// The buffered events, oldest first (the trigger included, last).
    pub events: Vec<TraceEvent>,
}

impl FlightDump {
    /// Renders the dump as JSON-lines: a `flight_dump` header line
    /// carrying the cause, then one line per buffered event.
    ///
    /// Every line (header included) has `seq`, `pid`, and `kind`, and
    /// lines are ordered by `seq` (the header borrows the first buffered
    /// event's seq), so the dump satisfies the same schema as an ordinary
    /// trace dump.
    pub fn render(&self) -> String {
        let header_seq = self.events.first().map_or(self.trigger_seq, |e| e.seq);
        let mut out = format!(
            "{{\"seq\":{},\"pid\":{},\"kind\":\"flight_dump\",\"cause\":\"{}\",\
             \"trigger_seq\":{},\"events\":{}}}\n",
            header_seq,
            self.trigger_pid,
            self.cause.name(),
            self.trigger_seq,
            self.events.len(),
        );
        out.push_str(&json_lines(&self.events));
        out
    }
}

struct FlightInner {
    ring: VecDeque<TraceEvent>,
    dumps: Vec<FlightDump>,
}

/// The black-box recorder: a bounded event ring frozen on anomalies.
///
/// Retains at most `max_dumps` dumps (later anomalies inside an already
/// captured storm are counted but not re-captured), so a flapping breaker
/// cannot grow memory without bound. The ring itself keeps recording
/// after a dump.
pub struct FlightRecorder {
    inner: Mutex<FlightInner>,
    capacity: usize,
    max_dumps: usize,
    suppressed: std::sync::atomic::AtomicU64,
}

impl FlightRecorder {
    /// A recorder whose ring holds the most recent `capacity` events,
    /// retaining up to 8 dumps.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_max_dumps(capacity, 8)
    }

    /// A recorder retaining up to `max_dumps` dumps.
    ///
    /// # Panics
    /// Panics if `capacity` or `max_dumps` is zero.
    pub fn with_max_dumps(capacity: usize, max_dumps: usize) -> Self {
        assert!(capacity > 0, "FlightRecorder needs a nonzero ring");
        assert!(max_dumps > 0, "FlightRecorder needs room for at least one dump");
        FlightRecorder {
            inner: Mutex::new(FlightInner {
                ring: VecDeque::with_capacity(capacity),
                dumps: Vec::new(),
            }),
            capacity,
            max_dumps,
            suppressed: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightInner> {
        self.inner.lock().expect("FlightRecorder poisoned")
    }

    fn capture(inner: &mut FlightInner, max_dumps: usize, dump: FlightDump) -> bool {
        if inner.dumps.len() >= max_dumps {
            return false;
        }
        inner.dumps.push(dump);
        true
    }

    /// Freezes the current ring as a [`DumpCause::Manual`] dump. Returns
    /// false if the dump budget was already exhausted.
    pub fn trigger(&self, cause: DumpCause) -> bool {
        let mut inner = self.lock();
        let (trigger_seq, trigger_pid) =
            inner.ring.back().map_or((0, 0), |e| (e.seq, e.pid));
        let dump = FlightDump {
            cause,
            trigger_seq,
            trigger_pid,
            events: inner.ring.iter().copied().collect(),
        };
        Self::capture(&mut inner, self.max_dumps, dump)
    }

    /// Dumps captured so far (clones; the recorder keeps its copies).
    #[must_use]
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.lock().dumps.clone()
    }

    /// Removes and returns the captured dumps, freeing the dump budget.
    #[must_use = "taking discards the dumps if the result is unused"]
    pub fn take_dumps(&self) -> Vec<FlightDump> {
        std::mem::take(&mut self.lock().dumps)
    }

    /// Anomalies that fired while the dump budget was exhausted.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn cause_of(event: &Event) -> Option<DumpCause> {
        match event {
            Event::DeadlineExceeded { .. } => Some(DumpCause::DeadlineExceeded),
            Event::BreakerTrip { .. } => Some(DumpCause::BreakerTrip),
            Event::ServiceOverload { .. } => Some(DumpCause::Overloaded),
            _ => None,
        }
    }
}

impl Sink for FlightRecorder {
    fn emit(&self, event: TraceEvent) {
        let mut inner = self.lock();
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(event);
        if let Some(cause) = Self::cause_of(&event.event) {
            let dump = FlightDump {
                cause,
                trigger_seq: event.seq,
                trigger_pid: event.pid,
                events: inner.ring.iter().copied().collect(),
            };
            if !Self::capture(&mut inner, self.max_dumps, dump) {
                self.suppressed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.lock();
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("buffered", &inner.ring.len())
            .field("dumps", &inner.dumps.len())
            .field("suppressed", &self.suppressed())
            .finish()
    }
}
