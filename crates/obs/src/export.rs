//! Trace exporters: JSON-lines and chrome://tracing.
//!
//! Both are hand-rolled (the workspace takes no serialization dependency
//! for this). Every emitted string field is a static identifier from the
//! event taxonomy, so no JSON string escaping is required.

use crate::event::{Event, TraceEvent};

fn push_field(out: &mut String, key: &str, value: impl std::fmt::Display) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    out.push_str(value);
    out.push('"');
}

/// Appends the variant-specific payload fields of `event` to a JSON object
/// under construction (each field prefixed with a comma).
fn push_payload(out: &mut String, event: &Event) {
    match *event {
        Event::ScanBegin { algo } | Event::UpdateBegin { algo } => {
            push_str_field(out, "algo", algo.name());
        }
        Event::ScanEnd { algo, double_collects, borrowed } => {
            push_str_field(out, "algo", algo.name());
            push_field(out, "double_collects", double_collects);
            push_field(out, "borrowed", borrowed);
        }
        Event::UpdateEnd { algo, double_collects } => {
            push_str_field(out, "algo", algo.name());
            push_field(out, "double_collects", double_collects);
        }
        Event::RoundStart { algo, round } => {
            push_str_field(out, "algo", algo.name());
            push_field(out, "round", round);
        }
        Event::RoundEnd { algo, round, outcome } => {
            push_str_field(out, "algo", algo.name());
            push_field(out, "round", round);
            push_str_field(out, "outcome", outcome.name());
        }
        Event::HandshakeCopy { partner, bit } | Event::HandshakeFlip { partner, bit } => {
            push_field(out, "partner", partner);
            push_field(out, "bit", bit);
        }
        Event::ToggleFlip { word, toggle } => {
            push_field(out, "word", word);
            push_field(out, "toggle", toggle);
        }
        Event::BorrowDecision { lender, moved } => {
            push_field(out, "lender", lender);
            push_field(out, "moved", moved);
        }
        Event::RegisterRead | Event::RegisterWrite => {}
        Event::ScheduleStep { step, op } => {
            push_field(out, "step", step);
            push_str_field(out, "op", op.name());
        }
        Event::AbdPhaseStart { phase } => {
            push_str_field(out, "phase", phase.name());
        }
        Event::AbdRetransmit { phase, attempt, resent } => {
            push_str_field(out, "phase", phase.name());
            push_field(out, "attempt", attempt);
            push_field(out, "resent", resent);
        }
        Event::AbdQuorumReached { phase, acks, elapsed_us } => {
            push_str_field(out, "phase", phase.name());
            push_field(out, "acks", acks);
            push_field(out, "elapsed_us", elapsed_us);
        }
        Event::AbdQuorumFailed { phase, acks, needed } => {
            push_str_field(out, "phase", phase.name());
            push_field(out, "acks", acks);
            push_field(out, "needed", needed);
        }
        Event::CoalesceLead { generation } | Event::CoalesceJoin { generation } => {
            push_field(out, "generation", generation);
        }
        Event::ServiceOverload { inflight } => {
            push_field(out, "inflight", inflight);
        }
        Event::PartialCollect { segments, rounds, fallback } => {
            push_field(out, "segments", segments);
            push_field(out, "rounds", rounds);
            push_field(out, "fallback", fallback);
        }
        Event::BackendError { attempt, retryable } => {
            push_field(out, "attempt", attempt);
            push_field(out, "retryable", retryable);
        }
        Event::CoalesceAbdicate { generation } => {
            push_field(out, "generation", generation);
        }
        Event::RetryExhausted { attempts } => {
            push_field(out, "attempts", attempts);
        }
        Event::ShardDegraded { shard, retry_after_us } => {
            push_field(out, "shard", shard);
            push_field(out, "retry_after_us", retry_after_us);
        }
        Event::ShardShed { shard, rank, retry_after_us } => {
            push_field(out, "shard", shard);
            push_field(out, "rank", rank);
            push_field(out, "retry_after_us", retry_after_us);
        }
        Event::DeadlineExceeded { attempts, budget_us } => {
            push_field(out, "attempts", attempts);
            push_field(out, "budget_us", budget_us);
        }
        Event::LoadReport { hot_shard, skewed, skew_permille, open_shards } => {
            push_field(out, "hot_shard", hot_shard);
            push_field(out, "skewed", skewed);
            push_field(out, "skew_permille", skew_permille);
            push_field(out, "open_shards", open_shards);
        }
    }
}

/// Renders events as JSON-lines: one JSON object per line with `seq`,
/// `pid`, `kind`, and the variant's payload fields.
pub fn json_lines(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 64);
    for e in events {
        out.push_str("{\"seq\":");
        out.push_str(&e.seq.to_string());
        push_field(&mut out, "pid", e.pid);
        push_str_field(&mut out, "kind", e.event.kind());
        push_payload(&mut out, &e.event);
        out.push_str("}\n");
    }
    out
}

/// Renders events as a chrome://tracing (`about:tracing` / Perfetto)
/// "Trace Event Format" JSON document.
///
/// Scan/update begin/end pairs become duration spans (`ph: "B"`/`"E"`);
/// everything else becomes an instant event (`ph: "i"`, thread scope).
/// Timestamps are the logical sequence numbers (the trace is a logical
/// schedule, not a wall-clock profile), and each process id becomes a
/// `tid` so the viewer shows one track per process.
pub fn chrome_tracing(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for e in events {
        let (ph, name): (&str, &str) = match e.event {
            Event::ScanBegin { .. } => ("B", "scan"),
            Event::ScanEnd { .. } => ("E", "scan"),
            Event::UpdateBegin { .. } => ("B", "update"),
            Event::UpdateEnd { .. } => ("E", "update"),
            _ => ("i", e.event.kind()),
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"");
        out.push_str(name);
        out.push_str("\",\"ph\":\"");
        out.push_str(ph);
        out.push_str("\",\"pid\":0");
        push_field(&mut out, "tid", e.pid);
        push_field(&mut out, "ts", e.seq);
        if ph == "i" {
            push_str_field(&mut out, "s", "t");
        }
        out.push_str(",\"args\":{\"seq\":");
        out.push_str(&e.seq.to_string());
        push_str_field(&mut out, "kind", e.event.kind());
        push_payload(&mut out, &e.event);
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}
