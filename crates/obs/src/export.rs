//! Trace exporters: JSON-lines and chrome://tracing.
//!
//! Both are hand-rolled (the workspace takes no serialization dependency
//! for this). Every emitted string field is a static identifier from the
//! event taxonomy, so no JSON string escaping is required.

use crate::event::{Event, TraceEvent};

fn push_field(out: &mut String, key: &str, value: impl std::fmt::Display) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    out.push_str(value);
    out.push('"');
}

/// Appends the variant-specific payload fields of `event` to a JSON object
/// under construction (each field prefixed with a comma).
fn push_payload(out: &mut String, event: &Event) {
    match *event {
        Event::ScanBegin { algo } | Event::UpdateBegin { algo } => {
            push_str_field(out, "algo", algo.name());
        }
        Event::ScanEnd { algo, double_collects, borrowed } => {
            push_str_field(out, "algo", algo.name());
            push_field(out, "double_collects", double_collects);
            push_field(out, "borrowed", borrowed);
        }
        Event::UpdateEnd { algo, double_collects } => {
            push_str_field(out, "algo", algo.name());
            push_field(out, "double_collects", double_collects);
        }
        Event::RoundStart { algo, round } => {
            push_str_field(out, "algo", algo.name());
            push_field(out, "round", round);
        }
        Event::RoundEnd { algo, round, outcome } => {
            push_str_field(out, "algo", algo.name());
            push_field(out, "round", round);
            push_str_field(out, "outcome", outcome.name());
        }
        Event::HandshakeCopy { partner, bit } | Event::HandshakeFlip { partner, bit } => {
            push_field(out, "partner", partner);
            push_field(out, "bit", bit);
        }
        Event::ToggleFlip { word, toggle } => {
            push_field(out, "word", word);
            push_field(out, "toggle", toggle);
        }
        Event::BorrowDecision { lender, moved } => {
            push_field(out, "lender", lender);
            push_field(out, "moved", moved);
        }
        Event::RegisterRead | Event::RegisterWrite => {}
        Event::ScheduleStep { step, op } => {
            push_field(out, "step", step);
            push_str_field(out, "op", op.name());
        }
        Event::AbdPhaseStart { phase } => {
            push_str_field(out, "phase", phase.name());
        }
        Event::AbdRetransmit { phase, attempt, resent } => {
            push_str_field(out, "phase", phase.name());
            push_field(out, "attempt", attempt);
            push_field(out, "resent", resent);
        }
        Event::AbdQuorumReached { phase, acks, elapsed_us } => {
            push_str_field(out, "phase", phase.name());
            push_field(out, "acks", acks);
            push_field(out, "elapsed_us", elapsed_us);
        }
        Event::AbdQuorumFailed { phase, acks, needed } => {
            push_str_field(out, "phase", phase.name());
            push_field(out, "acks", acks);
            push_field(out, "needed", needed);
        }
        Event::CoalesceLead { generation } | Event::CoalesceJoin { generation } => {
            push_field(out, "generation", generation);
        }
        Event::ServiceOverload { inflight } => {
            push_field(out, "inflight", inflight);
        }
        Event::PartialCollect { segments, rounds, fallback } => {
            push_field(out, "segments", segments);
            push_field(out, "rounds", rounds);
            push_field(out, "fallback", fallback);
        }
        Event::PartialFallback { segments, reason } => {
            push_field(out, "segments", segments);
            push_str_field(out, "reason", reason.name());
        }
        Event::BackendError { attempt, retryable } => {
            push_field(out, "attempt", attempt);
            push_field(out, "retryable", retryable);
        }
        Event::CoalesceAbdicate { generation } => {
            push_field(out, "generation", generation);
        }
        Event::RetryExhausted { attempts } => {
            push_field(out, "attempts", attempts);
        }
        Event::ShardDegraded { shard, retry_after_us } => {
            push_field(out, "shard", shard);
            push_field(out, "retry_after_us", retry_after_us);
        }
        Event::ShardShed { shard, rank, retry_after_us } => {
            push_field(out, "shard", shard);
            push_field(out, "rank", rank);
            push_field(out, "retry_after_us", retry_after_us);
        }
        Event::DeadlineExceeded { attempts, budget_us } => {
            push_field(out, "attempts", attempts);
            push_field(out, "budget_us", budget_us);
        }
        Event::SpanBegin { id, parent, kind } => {
            push_field(out, "id", id);
            push_field(out, "parent", parent);
            push_str_field(out, "span", kind.name());
        }
        Event::SpanEnd { id, kind, status, elapsed_us } => {
            push_field(out, "id", id);
            push_str_field(out, "span", kind.name());
            push_str_field(out, "status", status.name());
            push_field(out, "elapsed_us", elapsed_us);
        }
        Event::SpanNote { id, key, value } => {
            push_field(out, "id", id);
            push_str_field(out, "key", key);
            push_field(out, "value", value);
        }
        Event::SpanFollows { id, from } => {
            push_field(out, "id", id);
            push_field(out, "from", from);
        }
        Event::BreakerTrip { shard, trips } => {
            push_field(out, "shard", shard);
            push_field(out, "trips", trips);
        }
        Event::LoadReport { hot_shard, skewed, skew_permille, open_shards } => {
            push_field(out, "hot_shard", hot_shard);
            push_field(out, "skewed", skewed);
            push_field(out, "skew_permille", skew_permille);
            push_field(out, "open_shards", open_shards);
        }
        Event::TransportDial { replica, attempt } => {
            push_field(out, "replica", replica);
            push_field(out, "attempt", attempt);
        }
        Event::TransportConnected { replica, attempt } => {
            push_field(out, "replica", replica);
            push_field(out, "attempt", attempt);
        }
        Event::TransportDropped { replica } => {
            push_field(out, "replica", replica);
        }
        Event::StoreTruncated { replica, bytes } => {
            push_field(out, "replica", replica);
            push_field(out, "bytes", bytes);
        }
        Event::StoreCorrupt { replica, offset, truncated } => {
            push_field(out, "replica", replica);
            push_field(out, "offset", offset);
            push_field(out, "truncated", truncated);
        }
        Event::StoreCheckpoint { replica, registers, bytes } => {
            push_field(out, "replica", replica);
            push_field(out, "registers", registers);
            push_field(out, "bytes", bytes);
        }
        Event::StoreCheckpointFailed { replica } => {
            push_field(out, "replica", replica);
        }
        Event::StoreReplayed { replica, checkpoint_registers, records, elapsed_us } => {
            push_field(out, "replica", replica);
            push_field(out, "checkpoint_registers", checkpoint_registers);
            push_field(out, "records", records);
            push_field(out, "elapsed_us", elapsed_us);
        }
    }
}

/// Renders events as JSON-lines: one JSON object per line with `seq`,
/// `pid`, `kind`, and the variant's payload fields.
pub fn json_lines(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 64);
    for e in events {
        out.push_str("{\"seq\":");
        out.push_str(&e.seq.to_string());
        push_field(&mut out, "pid", e.pid);
        push_str_field(&mut out, "kind", e.event.kind());
        push_payload(&mut out, &e.event);
        out.push_str("}\n");
    }
    out
}

/// Opens one trace event object with the five fields every event carries
/// (`name`, `ph`, `pid`, `tid`, `ts`), leaving the object unterminated so
/// the caller can append event-specific fields.
fn open_chrome_event(out: &mut String, first: &mut bool, name: &str, ph: &str, tid: usize, ts: u64) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"name\":\"");
    out.push_str(name);
    out.push_str("\",\"ph\":\"");
    out.push_str(ph);
    out.push_str("\",\"pid\":0");
    push_field(out, "tid", tid);
    push_field(out, "ts", ts);
}

fn push_chrome_args(out: &mut String, e: &TraceEvent) {
    out.push_str(",\"args\":{\"seq\":");
    out.push_str(&e.seq.to_string());
    push_str_field(out, "kind", e.event.kind());
    push_payload(out, &e.event);
    out.push('}');
}

/// Renders events as a chrome://tracing (`about:tracing` / Perfetto)
/// "Trace Event Format" JSON document.
///
/// Scan/update begin/end pairs become duration spans (`ph: "B"`/`"E"`);
/// causal spans ([`Event::SpanBegin`] / [`Event::SpanEnd`]) become async
/// spans (`ph: "b"`/`"e"`, category `span`, keyed by span id) so nested
/// request phases render as stacked tracks; [`Event::SpanFollows`] links
/// become flow arrows (`ph: "s"` at the producing span's begin, `ph: "f"`
/// at the consumer — the coalesce-join → lead arrow); everything else
/// becomes an instant event (`ph: "i"`, thread scope). A follows link
/// whose producing span's begin is not in `events` (evicted from a
/// bounded ring) degrades to an instant. Timestamps are the logical
/// sequence numbers (the trace is a logical schedule, not a wall-clock
/// profile), and each process id becomes a `tid` so the viewer shows one
/// track per process.
pub fn chrome_tracing(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    // Flow arrows anchor at the producing span's begin coordinates, so
    // index the begins up front: (span id, seq, pid).
    let begins: Vec<(u64, u64, usize)> = events
        .iter()
        .filter_map(|e| match e.event {
            Event::SpanBegin { id, .. } => Some((id, e.seq, e.pid)),
            _ => None,
        })
        .collect();
    let begin_of =
        |id: u64| begins.iter().find(|(i, _, _)| *i == id).map(|&(_, seq, pid)| (seq, pid));
    let mut first = true;
    for e in events {
        match e.event {
            Event::SpanBegin { id, kind, .. } => {
                open_chrome_event(&mut out, &mut first, kind.name(), "b", e.pid, e.seq);
                push_str_field(&mut out, "cat", "span");
                push_field(&mut out, "id", id);
                push_chrome_args(&mut out, e);
                out.push('}');
            }
            Event::SpanEnd { id, kind, .. } => {
                open_chrome_event(&mut out, &mut first, kind.name(), "e", e.pid, e.seq);
                push_str_field(&mut out, "cat", "span");
                push_field(&mut out, "id", id);
                push_chrome_args(&mut out, e);
                out.push('}');
            }
            Event::SpanFollows { from, .. } if begin_of(from).is_some() => {
                let (from_seq, from_pid) = begin_of(from).expect("guard checked");
                open_chrome_event(&mut out, &mut first, "follows", "s", from_pid, from_seq);
                push_str_field(&mut out, "cat", "flow");
                push_field(&mut out, "id", e.seq);
                out.push('}');
                open_chrome_event(&mut out, &mut first, "follows", "f", e.pid, e.seq);
                push_str_field(&mut out, "cat", "flow");
                push_str_field(&mut out, "bp", "e");
                push_field(&mut out, "id", e.seq);
                push_chrome_args(&mut out, e);
                out.push('}');
            }
            _ => {
                let (ph, name): (&str, &str) = match e.event {
                    Event::ScanBegin { .. } => ("B", "scan"),
                    Event::ScanEnd { .. } => ("E", "scan"),
                    Event::UpdateBegin { .. } => ("B", "update"),
                    Event::UpdateEnd { .. } => ("E", "update"),
                    _ => ("i", e.event.kind()),
                };
                open_chrome_event(&mut out, &mut first, name, ph, e.pid, e.seq);
                if ph == "i" {
                    push_str_field(&mut out, "s", "t");
                }
                push_chrome_args(&mut out, e);
                out.push('}');
            }
        }
    }
    out.push_str("]}");
    out
}
