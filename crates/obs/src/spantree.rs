//! Offline reconstruction of span trees from a flat event sequence.
//!
//! [`SpanForest::build`] folds the `Span*` events out of a drained trace
//! (or a [`FlightDump`](crate::FlightDump)) into parent-linked
//! [`SpanNode`]s, so a test — or a human reading a flight recording —
//! can ask the questions the causal plane exists to answer: what did
//! this request spend its budget on ([`SpanForest::attribute_stall`]),
//! whose collect did this joiner adopt (`follows`), and do the spans
//! nest the way the code claims ([`SpanForest::check`]).

use std::fmt;

use crate::event::{Event, SpanKind, SpanStatus, TraceEvent};

/// One reconstructed span.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// The span's id (begin seq + 1).
    pub id: u64,
    /// Parent span id (0 for roots).
    pub parent: u64,
    /// What the span covered.
    pub kind: SpanKind,
    /// Pid that opened the span.
    pub pid: usize,
    /// Sequence number of the begin event.
    pub begin_seq: u64,
    /// Sequence number of the end event, if the end was observed.
    pub end_seq: Option<u64>,
    /// Terminal status, if the end was observed.
    pub status: Option<SpanStatus>,
    /// Wall-clock microseconds the span was open (0 until ended).
    pub elapsed_us: u64,
    /// `key = value` annotations, in emission order.
    pub notes: Vec<(&'static str, u64)>,
    /// Ids of spans whose results this span consumed
    /// ([`Event::SpanFollows`] edges; e.g. joiner → lead collect).
    pub follows: Vec<u64>,
    /// Ids of child spans, in begin order.
    pub children: Vec<u64>,
}

impl SpanNode {
    /// Whether this span names a waiting phase a stall can be attributed
    /// to: a quorum wait ([`SpanKind::QuorumQuery`],
    /// [`SpanKind::QuorumStore`], [`SpanKind::Collect`]), a coalesce park
    /// ([`SpanKind::CoalescePark`]), or a retry backoff
    /// ([`SpanKind::Backoff`]).
    pub fn is_stall_phase(&self) -> bool {
        matches!(
            self.kind,
            SpanKind::QuorumQuery
                | SpanKind::QuorumStore
                | SpanKind::Collect
                | SpanKind::CoalescePark
                | SpanKind::Backoff
        )
    }
}

/// The span trees reconstructed from one event sequence.
#[derive(Clone, Debug, Default)]
pub struct SpanForest {
    nodes: Vec<SpanNode>,
    /// Span events whose begin was not in the input (evicted from a
    /// bounded ring, or malformed instrumentation — [`SpanForest::check`]
    /// tells them apart from a full trace).
    orphans: Vec<TraceEvent>,
}

impl SpanForest {
    /// Folds the `Span*` events in `events` (any other kinds are ignored)
    /// into a forest. `events` must be seq-ordered, as produced by
    /// [`RingSink::drain`](crate::RingSink::drain) or a flight dump.
    pub fn build(events: &[TraceEvent]) -> Self {
        let mut forest = SpanForest::default();
        for e in events {
            match e.event {
                Event::SpanBegin { id, parent, kind } => {
                    forest.nodes.push(SpanNode {
                        id,
                        parent,
                        kind,
                        pid: e.pid,
                        begin_seq: e.seq,
                        end_seq: None,
                        status: None,
                        elapsed_us: 0,
                        notes: Vec::new(),
                        follows: Vec::new(),
                        children: Vec::new(),
                    });
                }
                Event::SpanEnd { id, status, elapsed_us, .. } => {
                    match forest.index_of(id) {
                        Some(i) if forest.nodes[i].end_seq.is_none() => {
                            forest.nodes[i].end_seq = Some(e.seq);
                            forest.nodes[i].status = Some(status);
                            forest.nodes[i].elapsed_us = elapsed_us;
                        }
                        _ => forest.orphans.push(*e),
                    }
                }
                Event::SpanNote { id, key, value } => match forest.index_of(id) {
                    Some(i) => forest.nodes[i].notes.push((key, value)),
                    None => forest.orphans.push(*e),
                },
                Event::SpanFollows { id, from } => match forest.index_of(id) {
                    Some(i) => forest.nodes[i].follows.push(from),
                    None => forest.orphans.push(*e),
                },
                _ => {}
            }
        }
        for i in 0..forest.nodes.len() {
            let (id, parent) = (forest.nodes[i].id, forest.nodes[i].parent);
            if parent != 0 {
                if let Some(p) = forest.index_of(parent) {
                    forest.nodes[p].children.push(id);
                }
            }
        }
        forest
    }

    fn index_of(&self, id: u64) -> Option<usize> {
        self.nodes.iter().position(|n| n.id == id)
    }

    /// The node with the given id.
    pub fn node(&self, id: u64) -> Option<&SpanNode> {
        self.index_of(id).map(|i| &self.nodes[i])
    }

    /// All nodes, in begin order.
    pub fn nodes(&self) -> &[SpanNode] {
        &self.nodes
    }

    /// Roots: spans with no parent, or whose parent's begin is not in the
    /// input (the subtree survived a ring eviction; still inspectable).
    pub fn roots(&self) -> Vec<&SpanNode> {
        self.nodes
            .iter()
            .filter(|n| n.parent == 0 || self.node(n.parent).is_none())
            .collect()
    }

    /// Span events that referenced a begin not present in the input.
    pub fn orphans(&self) -> &[TraceEvent] {
        &self.orphans
    }

    /// Ids on the path from `id` up to its root, inclusive, starting at
    /// `id`. Empty if `id` is unknown.
    pub fn path_to_root(&self, id: u64) -> Vec<u64> {
        let mut path = Vec::new();
        let mut cur = id;
        while let Some(n) = self.node(cur) {
            if path.contains(&n.id) {
                break; // defensive: malformed input with a parent cycle
            }
            path.push(n.id);
            cur = n.parent;
        }
        path
    }

    /// Ids of `id`'s subtree in depth-first order, excluding `id` itself.
    fn descendants(&self, id: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut stack: Vec<u64> = self.node(id).map(|n| n.children.clone()).unwrap_or_default();
        while let Some(next) = stack.pop() {
            if out.contains(&next) {
                continue;
            }
            out.push(next);
            if let Some(n) = self.node(next) {
                stack.extend(n.children.iter().copied());
            }
        }
        out
    }

    /// Attributes a stalled request to a named phase: the ended
    /// stall-phase descendant of `root` ([`SpanNode::is_stall_phase`])
    /// with the largest `elapsed_us`. Falls back to the slowest ended
    /// descendant of any kind, then `None` when the subtree has no ended
    /// descendants at all.
    pub fn attribute_stall(&self, root: u64) -> Option<&SpanNode> {
        let ended: Vec<&SpanNode> = self
            .descendants(root)
            .into_iter()
            .filter_map(|id| self.node(id))
            .filter(|n| n.end_seq.is_some())
            .collect();
        ended
            .iter()
            .filter(|n| n.is_stall_phase())
            .max_by_key(|n| n.elapsed_us)
            .or_else(|| ended.iter().max_by_key(|n| n.elapsed_us))
            .copied()
    }

    /// Checks the span-tree invariants a complete (non-evicted) trace
    /// must satisfy, returning the first violation:
    ///
    /// * every end/note/follows referenced a begin in the input;
    /// * span ids are unique;
    /// * each end comes after its begin on the shared clock axis;
    /// * every span ended at most once and with the kind it began with
    ///   (enforced structurally by [`SpanForest::build`], which orphans
    ///   duplicate ends);
    /// * children nest inside their parent's `[begin, end]` window on
    ///   the seq axis.
    pub fn check(&self) -> Result<(), String> {
        if let Some(orphan) = self.orphans.first() {
            return Err(format!("span event without a matching begin: {orphan}"));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if self.nodes[..i].iter().any(|m| m.id == n.id) {
                return Err(format!("duplicate span id S{}", n.id));
            }
            if let Some(end) = n.end_seq {
                if end <= n.begin_seq {
                    return Err(format!(
                        "span S{} ends at seq {} before its begin at {}",
                        n.id, end, n.begin_seq
                    ));
                }
            }
            if n.parent != 0 {
                let p = self
                    .node(n.parent)
                    .ok_or_else(|| format!("span S{} has unknown parent S{}", n.id, n.parent))?;
                if n.begin_seq <= p.begin_seq {
                    return Err(format!(
                        "child S{} begins at seq {} outside parent S{} (begins {})",
                        n.id, n.begin_seq, p.id, p.begin_seq
                    ));
                }
                if let (Some(child_end), Some(parent_end)) = (n.end_seq, p.end_seq) {
                    if child_end >= parent_end {
                        return Err(format!(
                            "child S{} ends at seq {child_end} after parent S{} (ends {parent_end})",
                            n.id, p.id
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for SpanForest {
    /// An indented one-line-per-span rendering, roots first.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn render(
            forest: &SpanForest,
            f: &mut fmt::Formatter<'_>,
            id: u64,
            depth: usize,
        ) -> fmt::Result {
            let Some(n) = forest.node(id) else { return Ok(()) };
            let status = n.status.map_or("open", |s| s.name());
            writeln!(
                f,
                "{:indent$}S{} {} [{status}] {}us pid={} seq={}..{}",
                "",
                n.id,
                n.kind,
                n.elapsed_us,
                n.pid,
                n.begin_seq,
                n.end_seq.map_or("?".to_string(), |s| s.to_string()),
                indent = depth * 2,
            )?;
            for &child in &n.children {
                render(forest, f, child, depth + 1)?;
            }
            Ok(())
        }
        for root in self.roots() {
            render(self, f, root.id, 0)?;
        }
        Ok(())
    }
}
