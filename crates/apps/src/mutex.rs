use std::fmt;

use snapshot_core::{BoundedSnapshot, SwSnapshot, SwSnapshotHandle};
use snapshot_registers::{Backend, EpochBackend, ProcessId};

/// One process's published bakery state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct BakeryState {
    /// True while the process is picking its ticket (the bakery
    /// "choosing" flag, here published atomically with the ticket).
    choosing: bool,
    /// Ticket number; 0 = not competing.
    number: u64,
}

/// Lamport's bakery mutual-exclusion algorithm with its collects replaced
/// by **atomic scans** — the "exclusion problems" application family the
/// paper cites (\[K78, L86c, DGS88\]).
///
/// The bakery draws a ticket greater than every ticket it sees, then
/// waits until no smaller-ticketed process (and no process still
/// choosing) exists. With plain registers the correctness argument has to
/// reason about torn reads of the ticket array; with a snapshot, every
/// observation is an instant, and the invariant "my ticket is larger than
/// every ticket that existed when I drew it" is immediate — the
/// verification-simplification point of the paper's introduction.
///
/// Mutual exclusion is deterministic; **entry is not wait-free** (mutual
/// exclusion fundamentally cannot be): a process parks while competitors
/// hold smaller tickets. The sim-based tests model-check the exclusion
/// safety property across schedules.
///
/// # Example
///
/// ```
/// use snapshot_apps::BakeryMutex;
/// use snapshot_registers::ProcessId;
///
/// let mutex = BakeryMutex::new(2);
/// let mut h = mutex.handle(ProcessId::new(0));
/// h.lock();
/// // ... critical section ...
/// h.unlock();
/// ```
pub struct BakeryMutex<B: Backend = EpochBackend> {
    snapshot: BoundedSnapshot<BakeryState, B>,
}

impl BakeryMutex<EpochBackend> {
    /// Creates a mutex for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        Self::with_backend(n, &EpochBackend::new())
    }
}

impl<B: Backend> BakeryMutex<B> {
    /// Creates the mutex over an explicit register backend.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_backend(n: usize, backend: &B) -> Self {
        BakeryMutex {
            snapshot: BoundedSnapshot::with_backend(n, BakeryState::default(), backend),
        }
    }

    /// Number of participating processes.
    pub fn processes(&self) -> usize {
        self.snapshot.processes()
    }

    /// Claims the handle for process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or already claimed.
    pub fn handle(&self, pid: ProcessId) -> BakeryHandle<'_, B> {
        BakeryHandle {
            inner: self.snapshot.handle(pid),
            locked: false,
        }
    }
}

impl<B: Backend> fmt::Debug for BakeryMutex<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BakeryMutex")
            .field("processes", &self.processes())
            .finish()
    }
}

/// Per-process handle to a [`BakeryMutex`].
pub struct BakeryHandle<'a, B: Backend> {
    inner: <BoundedSnapshot<BakeryState, B> as SwSnapshot<BakeryState>>::Handle<'a>,
    locked: bool,
}

impl<B: Backend> BakeryHandle<'_, B> {
    /// Acquires the mutex (blocks while competitors hold priority).
    ///
    /// # Panics
    ///
    /// Panics if this handle already holds the lock (non-reentrant).
    pub fn lock(&mut self) {
        assert!(!self.locked, "BakeryMutex is not reentrant");
        let me = self.inner.pid().get();

        // Doorway: announce choosing, draw a ticket above everything in
        // one atomic picture, publish it.
        self.inner.update(BakeryState {
            choosing: true,
            number: 0,
        });
        let view = self.inner.scan();
        let ticket = view.iter().map(|s| s.number).max().unwrap_or(0) + 1;
        self.inner.update(BakeryState {
            choosing: false,
            number: ticket,
        });

        // Wait until we hold the smallest (ticket, pid) among competitors
        // and nobody is mid-draw.
        loop {
            let view = self.inner.scan();
            let blocked = view.iter().enumerate().any(|(j, s)| {
                j != me && (s.choosing || (s.number != 0 && (s.number, j) < (ticket, me)))
            });
            if !blocked {
                self.locked = true;
                return;
            }
            std::hint::spin_loop();
        }
    }

    /// Tries to acquire without waiting on competitors: returns `false`
    /// and withdraws if anybody holds priority right now.
    pub fn try_lock(&mut self) -> bool {
        assert!(!self.locked, "BakeryMutex is not reentrant");
        let me = self.inner.pid().get();
        self.inner.update(BakeryState {
            choosing: true,
            number: 0,
        });
        let view = self.inner.scan();
        let ticket = view.iter().map(|s| s.number).max().unwrap_or(0) + 1;
        self.inner.update(BakeryState {
            choosing: false,
            number: ticket,
        });
        let view = self.inner.scan();
        let blocked = view.iter().enumerate().any(|(j, s)| {
            j != me && (s.choosing || (s.number != 0 && (s.number, j) < (ticket, me)))
        });
        if blocked {
            self.inner.update(BakeryState::default()); // withdraw
            false
        } else {
            self.locked = true;
            true
        }
    }

    /// Releases the mutex.
    ///
    /// # Panics
    ///
    /// Panics if the lock is not held by this handle.
    pub fn unlock(&mut self) {
        assert!(self.locked, "unlock without lock");
        self.inner.update(BakeryState::default());
        self.locked = false;
    }

    /// Whether this handle currently holds the lock.
    pub fn is_locked(&self) -> bool {
        self.locked
    }
}

impl<B: Backend> fmt::Debug for BakeryHandle<'_, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BakeryHandle")
            .field("locked", &self.locked)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn lock_unlock_cycles() {
        let mutex = BakeryMutex::new(1);
        let mut h = mutex.handle(ProcessId::new(0));
        for _ in 0..5 {
            h.lock();
            assert!(h.is_locked());
            h.unlock();
        }
    }

    #[test]
    fn try_lock_succeeds_uncontended_and_withdraws_when_blocked() {
        let mutex = BakeryMutex::new(2);
        let mut h0 = mutex.handle(ProcessId::new(0));
        let mut h1 = mutex.handle(ProcessId::new(1));
        assert!(h0.try_lock());
        assert!(!h1.try_lock(), "must observe the holder's ticket");
        h0.unlock();
        assert!(h1.try_lock());
        h1.unlock();
    }

    #[test]
    fn threaded_mutual_exclusion_holds() {
        let n = 4;
        let mutex = BakeryMutex::new(n);
        let in_cs = AtomicUsize::new(0);
        let entries = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for i in 0..n {
                let mutex = &mutex;
                let in_cs = &in_cs;
                let entries = &entries;
                s.spawn(move || {
                    let mut h = mutex.handle(ProcessId::new(i));
                    for _ in 0..50 {
                        h.lock();
                        let now = in_cs.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(now, 0, "two processes in the critical section");
                        std::thread::yield_now();
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                        entries.fetch_add(1, Ordering::Relaxed);
                        h.unlock();
                    }
                });
            }
        });
        assert_eq!(entries.load(Ordering::Relaxed), n * 50);
    }

    #[test]
    #[should_panic(expected = "not reentrant")]
    fn reentrant_lock_panics() {
        let mutex = BakeryMutex::new(1);
        let mut h = mutex.handle(ProcessId::new(0));
        h.lock();
        h.lock();
    }
}
