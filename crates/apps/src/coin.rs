use std::fmt;

use snapshot_core::{SwSnapshot, SwSnapshotHandle, UnboundedSnapshot};
use snapshot_registers::{Backend, EpochBackend, ProcessId};

/// A **shared coin** from atomic snapshots — the random-walk construction
/// behind the fast randomized consensus the paper cites as \[AH89\]
/// (Aspnes–Herlihy, "Fast Randomized Consensus using Shared Memory").
///
/// Each process repeatedly flips a local coin and adds ±1 to its own
/// segment; after each step it scans and computes the global sum. Once
/// the random walk drifts past `±threshold`, the process outputs the
/// corresponding side. Because scans are atomic, all processes watch *the
/// same* walk, so with probability at least a constant (independent of
/// the adversary) **all** processes see the same side — which is exactly
/// the "weak shared coin" contract that upgrades local-coin consensus
/// from exponential to polynomial expected time.
///
/// This implementation is the textbook unbounded-counter variant: simple,
/// wait-free, with the agreement *probability* (not certainty) that the
/// consensus layer is designed to tolerate.
///
/// # Example
///
/// ```
/// use snapshot_apps::SharedCoin;
/// use snapshot_registers::ProcessId;
///
/// let coin = SharedCoin::new(1, 4);
/// let mut h = coin.handle(ProcessId::new(0));
/// // A heads-biased local coin drives the walk to +4 deterministically
/// // (an alternating coin would oscillate forever — the walk must drift).
/// let heads = h.flip(&mut || true);
/// assert!(heads);
/// ```
pub struct SharedCoin<B: Backend = EpochBackend> {
    snapshot: UnboundedSnapshot<i64, B>,
    threshold: i64,
}

impl SharedCoin<EpochBackend> {
    /// Creates a shared coin for `n` processes with drift threshold
    /// `threshold` (a small multiple of `n` gives the classic constant
    /// agreement probability).
    ///
    /// # Panics
    ///
    /// Panics if `n` or `threshold` is zero.
    pub fn new(n: usize, threshold: i64) -> Self {
        Self::with_backend(n, threshold, &EpochBackend::new())
    }
}

impl<B: Backend> SharedCoin<B> {
    /// Creates the coin over an explicit register backend.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `threshold` is zero.
    pub fn with_backend(n: usize, threshold: i64, backend: &B) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        SharedCoin {
            snapshot: UnboundedSnapshot::with_backend(n, 0, backend),
            threshold,
        }
    }

    /// Number of participating processes.
    pub fn processes(&self) -> usize {
        self.snapshot.processes()
    }

    /// Claims the handle for process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or already claimed.
    pub fn handle(&self, pid: ProcessId) -> SharedCoinHandle<'_, B> {
        SharedCoinHandle {
            inner: self.snapshot.handle(pid),
            threshold: self.threshold,
            contribution: 0,
        }
    }
}

impl<B: Backend> fmt::Debug for SharedCoin<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedCoin")
            .field("processes", &self.processes())
            .field("threshold", &self.threshold)
            .finish()
    }
}

/// Per-process handle to a [`SharedCoin`].
pub struct SharedCoinHandle<'a, B: Backend> {
    inner: <UnboundedSnapshot<i64, B> as SwSnapshot<i64>>::Handle<'a>,
    threshold: i64,
    contribution: i64,
}

impl<B: Backend> SharedCoinHandle<'_, B> {
    /// Participates in the walk until it drifts past the threshold;
    /// returns the side (`true` = heads). `local` supplies the local
    /// random bits.
    ///
    /// Wait-free per step; the number of steps is the hitting time of a
    /// ±threshold random walk — finite with probability 1 for genuinely
    /// random `local` bits, expected `O(threshold²)` total steps across
    /// all processes. A *deterministically alternating* `local` source
    /// can stall the walk forever; callers that need a hard bound should
    /// wrap `flip` with their own step budget.
    pub fn flip(&mut self, local: &mut dyn FnMut() -> bool) -> bool {
        loop {
            let total: i64 = self.inner.scan().iter().sum();
            if total >= self.threshold {
                return true;
            }
            if total <= -self.threshold {
                return false;
            }
            self.contribution += if local() { 1 } else { -1 };
            self.inner.update(self.contribution);
        }
    }
}

impl<B: Backend> fmt::Debug for SharedCoinHandle<'_, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedCoinHandle")
            .field("threshold", &self.threshold)
            .field("contribution", &self.contribution)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn biased_local_coins_fix_the_outcome() {
        let coin = SharedCoin::new(1, 3);
        let mut h = coin.handle(ProcessId::new(0));
        assert!(h.flip(&mut || true), "all-heads walk must output heads");

        let coin = SharedCoin::new(1, 3);
        let mut h = coin.handle(ProcessId::new(0));
        assert!(!h.flip(&mut || false), "all-tails walk must output tails");
    }

    #[test]
    fn threaded_flips_mostly_agree() {
        // With fair local coins the weak-coin property promises agreement
        // with constant probability per instance; across 30 instances the
        // agreement rate must be well above coin-guessing. (The consensus
        // layer tolerates occasional disagreement by construction.)
        let mut agreements = 0;
        let instances = 30;
        for round in 0..instances {
            let n = 3;
            let coin = SharedCoin::new(n, 2 * n as i64);
            let sides: Vec<bool> = std::thread::scope(|s| {
                (0..n)
                    .map(|i| {
                        let coin = &coin;
                        s.spawn(move || {
                            let mut rng = rand::rngs::StdRng::seed_from_u64(
                                round as u64 * 100 + i as u64,
                            );
                            let mut h = coin.handle(ProcessId::new(i));
                            h.flip(&mut || rng.random_bool(0.5))
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|j| j.join().unwrap())
                    .collect()
            });
            if sides.iter().all(|&s| s == sides[0]) {
                agreements += 1;
            }
        }
        assert!(
            agreements * 2 > instances,
            "only {agreements}/{instances} instances agreed"
        );
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_is_rejected() {
        let _ = SharedCoin::new(1, 0);
    }
}
