//! Applications of atomic snapshot memory.
//!
//! The paper's introduction motivates snapshots as a building block that
//! "can greatly simplify the design and verification of many concurrent
//! algorithms", citing exclusion problems, multi-writer registers,
//! concurrent time-stamp systems \[DS89\], randomized consensus
//! \[A88, AH89, ADS89, A90\] and wait-free data structures \[AH90\]. This
//! crate implements three of those uses on top of `snapshot-core`:
//!
//! * [`CheckpointableCounter`] — a wait-free sharded counter whose reads
//!   are *consistent global checkpoints*, not racy sums;
//! * [`RandomizedConsensus`] — wait-free binary consensus from snapshots
//!   plus local coin flips (the Aspnes–Herlihy shape: deterministic
//!   agreement/validity, randomized termination);
//! * [`TimestampSystem`] — an (unbounded) concurrent time-stamp system:
//!   totally ordered labels where an operation that finishes before
//!   another starts always receives a smaller label;
//! * [`BakeryMutex`] — Lamport's bakery with its collects replaced by
//!   atomic scans (the paper's "exclusion problems" citations);
//! * [`SnapshotRegister`] — an n-writer atomic register in a few lines on
//!   top of a snapshot (the multi-writer-register application family);
//! * [`ImmediateSnapshot`] — the one-shot *immediate* snapshot
//!   (Borowsky–Gafni levels), an instance of Section 6's closing question
//!   about more powerful objects built from registers;
//! * [`SharedCoin`] — the random-walk weak shared coin of the \[AH89\]
//!   fast-randomized-consensus line, also built on one snapshot.
//!
//! Everything is generic over the snapshot's register [`Backend`], so the
//! applications run unchanged under the deterministic simulator — the
//! consensus tests model-check agreement across schedules.
//!
//! [`Backend`]: snapshot_registers::Backend

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coin;
mod consensus;
mod counter;
mod immediate;
mod mutex;
mod register;
mod timestamp;

pub use coin::{SharedCoin, SharedCoinHandle};
pub use consensus::{ConsensusError, ConsensusHandle, RandomizedConsensus};
pub use immediate::{check_immediacy, ImmediateSnapshot};
pub use counter::{CheckpointableCounter, CounterHandle};
pub use mutex::{BakeryHandle, BakeryMutex};
pub use register::{SnapshotRegister, SnapshotRegisterHandle};
pub use timestamp::{Timestamp, TimestampHandle, TimestampSystem};
