use std::fmt;

use snapshot_core::{BoundedSnapshot, SnapshotView, SwSnapshot, SwSnapshotHandle};
use snapshot_registers::{Backend, EpochBackend, ProcessId};

/// A wait-free sharded counter with **consistent checkpoints**.
///
/// Each process increments its own segment; a read scans all segments
/// atomically and sums them. Unlike a pile of independent atomics read one
/// by one, [`CounterHandle::checkpoint`] returns a vector of per-process
/// contributions that *all existed at one instant* — the exact
/// "instantaneous global picture" problem the paper's introduction opens
/// with. Two checkpoints are therefore always comparable, and a
/// checkpoint's total never counts an increment that a causally earlier
/// checkpoint missed.
///
/// # Example
///
/// ```
/// use snapshot_apps::CheckpointableCounter;
/// use snapshot_registers::ProcessId;
///
/// let counter = CheckpointableCounter::new(2);
/// let mut h = counter.handle(ProcessId::new(0));
/// h.increment();
/// h.add(4);
/// assert_eq!(h.read(), 5);
/// ```
pub struct CheckpointableCounter<B: Backend = EpochBackend> {
    snapshot: BoundedSnapshot<u64, B>,
}

impl CheckpointableCounter<EpochBackend> {
    /// Creates a counter shared by `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        Self::with_backend(n, &EpochBackend::new())
    }
}

impl<B: Backend> CheckpointableCounter<B> {
    /// Creates a counter over an explicit register backend.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_backend(n: usize, backend: &B) -> Self {
        CheckpointableCounter {
            snapshot: BoundedSnapshot::with_backend(n, 0, backend),
        }
    }

    /// Number of participating processes.
    pub fn processes(&self) -> usize {
        self.snapshot.processes()
    }

    /// Claims the handle for process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or already claimed.
    pub fn handle(&self, pid: ProcessId) -> CounterHandle<'_, B> {
        CounterHandle {
            inner: self.snapshot.handle(pid),
            local: 0,
        }
    }
}

impl<B: Backend> fmt::Debug for CheckpointableCounter<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointableCounter")
            .field("processes", &self.processes())
            .finish()
    }
}

/// Per-process handle to a [`CheckpointableCounter`].
pub struct CounterHandle<'a, B: Backend> {
    inner: <BoundedSnapshot<u64, B> as SwSnapshot<u64>>::Handle<'a>,
    local: u64,
}

impl<B: Backend> CounterHandle<'_, B> {
    /// Adds 1 to this process's contribution.
    pub fn increment(&mut self) {
        self.add(1);
    }

    /// Adds `delta` to this process's contribution.
    pub fn add(&mut self, delta: u64) {
        self.local += delta;
        self.inner.update(self.local);
    }

    /// The current global total, from one atomic checkpoint.
    pub fn read(&mut self) -> u64 {
        self.checkpoint().iter().sum()
    }

    /// An atomic checkpoint: every process's contribution at one instant.
    pub fn checkpoint(&mut self) -> SnapshotView<u64> {
        self.inner.scan()
    }
}

impl<B: Backend> fmt::Debug for CounterHandle<'_, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CounterHandle")
            .field("local", &self.local)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_counting() {
        let counter = CheckpointableCounter::new(2);
        let mut h0 = counter.handle(ProcessId::new(0));
        let mut h1 = counter.handle(ProcessId::new(1));
        h0.increment();
        h1.add(10);
        assert_eq!(h0.read(), 11);
        assert_eq!(h1.checkpoint().to_vec(), vec![1, 10]);
    }

    #[test]
    fn checkpoints_are_monotone_and_consistent() {
        let counter = CheckpointableCounter::new(4);
        std::thread::scope(|s| {
            for i in 0..4usize {
                let counter = &counter;
                s.spawn(move || {
                    let mut h = counter.handle(ProcessId::new(i));
                    let mut prev_total = 0;
                    for _ in 0..200 {
                        h.increment();
                        let cp = h.checkpoint();
                        let total: u64 = cp.iter().sum();
                        // Totals a single process observes never decrease
                        // (each segment is monotone and checkpoints are
                        // atomic).
                        assert!(total >= prev_total, "total went backwards");
                        prev_total = total;
                    }
                });
            }
        });
        let mut h = counter.handle(ProcessId::new(0));
        assert_eq!(h.read(), 4 * 200);
    }

    #[test]
    fn final_total_is_exact() {
        let counter = CheckpointableCounter::new(3);
        std::thread::scope(|s| {
            for i in 0..3usize {
                let counter = &counter;
                s.spawn(move || {
                    let mut h = counter.handle(ProcessId::new(i));
                    for k in 1..=100 {
                        h.add(k % 7);
                    }
                });
            }
        });
        let expected: u64 = (1..=100u64).map(|k| k % 7).sum::<u64>() * 3;
        assert_eq!(counter.handle(ProcessId::new(1)).read(), expected);
    }
}
