use std::fmt;

use snapshot_core::{SwSnapshot, SwSnapshotHandle, UnboundedSnapshot};
use snapshot_registers::{Backend, EpochBackend, ProcessId};

use crate::SharedCoin;

/// Why a consensus attempt failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsensusError {
    /// The configured round budget ran out before a decision. Safety is
    /// never compromised — rerun with a larger budget.
    RoundLimitExceeded {
        /// The exhausted budget.
        rounds: u64,
    },
}

impl fmt::Display for ConsensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusError::RoundLimitExceeded { rounds } => {
                write!(f, "no decision within {rounds} rounds")
            }
        }
    }
}

impl std::error::Error for ConsensusError {}

/// One commit–adopt round: a phase-A snapshot of raw proposals and a
/// phase-B snapshot of `(commit?, value)` proposals.
struct Round<B: Backend> {
    a: UnboundedSnapshot<Option<bool>, B>,
    b: UnboundedSnapshot<Option<(bool, bool)>, B>,
}

/// Wait-free binary **randomized consensus** from atomic snapshots — the
/// application family the paper cites as \[A88, AH89, ADS89, A90\].
///
/// Structure: a sequence of *commit–adopt* rounds (Gafni-style), each
/// built from two snapshot objects.
///
/// * Phase A: write your value, scan; if every visible value agrees,
///   propose `(commit: true, v)`, else `(false, v)`.
/// * Phase B: write your proposal, scan.
///     * all visible proposals are `(true, v)` → **decide** `v`;
///     * some `(true, v)` visible → **adopt** `v` (someone may have
///       decided it);
///     * only `(false, _)` visible → nobody can have decided this round:
///       flip the **coin** and retry.
///
/// Snapshot atomicity makes the two phases airtight: if a process decides
/// `v` in round `r`, every other process leaves round `r` holding `v`, so
/// round `r + 1` decides `v` unanimously. Agreement and validity are
/// deterministic; only termination is randomized (expected constant
/// rounds against non-adaptive adversaries with local coins). The
/// consensus tests *model-check* agreement over every schedule of small
/// configurations.
///
/// # Example
///
/// ```
/// use snapshot_apps::RandomizedConsensus;
/// use snapshot_registers::ProcessId;
///
/// let consensus = RandomizedConsensus::new(2, 64);
/// let mut h = consensus.handle(ProcessId::new(0));
/// let decided = h.propose(true, &mut || false).unwrap();
/// assert!(decided); // sole participant: its input wins (validity)
/// ```
pub struct RandomizedConsensus<B: Backend = EpochBackend> {
    rounds: Vec<Round<B>>,
    /// One weak shared coin per round, when built with
    /// [`RandomizedConsensus::with_shared_coin`]: conflicting processes
    /// then agree on their new value with constant probability per round
    /// (the \[AH89\] configuration), instead of relying on independent
    /// local coins aligning.
    coins: Vec<SharedCoin<B>>,
    n: usize,
}

impl RandomizedConsensus<EpochBackend> {
    /// Creates a consensus object for `n` processes with a budget of
    /// `max_rounds` commit–adopt rounds.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `max_rounds` is zero.
    pub fn new(n: usize, max_rounds: u64) -> Self {
        Self::with_backend(n, max_rounds, &EpochBackend::new())
    }
}

impl<B: Backend> RandomizedConsensus<B> {
    /// Creates the object over an explicit register backend.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `max_rounds` is zero.
    pub fn with_backend(n: usize, max_rounds: u64, backend: &B) -> Self {
        assert!(n > 0, "consensus needs at least one process");
        assert!(max_rounds > 0, "consensus needs at least one round");
        RandomizedConsensus {
            rounds: (0..max_rounds)
                .map(|_| Round {
                    a: UnboundedSnapshot::with_backend(n, None, backend),
                    b: UnboundedSnapshot::with_backend(n, None, backend),
                })
                .collect(),
            coins: Vec::new(),
            n,
        }
    }

    /// Like [`with_backend`](Self::with_backend), but additionally equips
    /// every round with a snapshot-based [`SharedCoin`] (drift threshold
    /// `2n`): on a conflict round, processes flip the *shared* coin
    /// instead of independent local ones, which aligns their next values
    /// with constant probability per round — the \[AH89\]
    /// fast-randomized-consensus configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `max_rounds` is zero.
    pub fn with_shared_coin(n: usize, max_rounds: u64, backend: &B) -> Self {
        let mut object = Self::with_backend(n, max_rounds, backend);
        object.coins = (0..max_rounds)
            .map(|_| SharedCoin::with_backend(n, 2 * n as i64, backend))
            .collect();
        object
    }

    /// True if rounds are equipped with shared coins.
    pub fn has_shared_coin(&self) -> bool {
        !self.coins.is_empty()
    }

    /// Number of participating processes.
    pub fn processes(&self) -> usize {
        self.n
    }

    /// The round budget.
    pub fn max_rounds(&self) -> u64 {
        self.rounds.len() as u64
    }

    /// Claims the handle for process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range. (Unlike the snapshot handles,
    /// consensus handles claim their per-round snapshot handles lazily, so
    /// this only validates the range.)
    pub fn handle(&self, pid: ProcessId) -> ConsensusHandle<'_, B> {
        assert!(
            pid.get() < self.n,
            "process {pid} out of range (consensus has {} processes)",
            self.n
        );
        ConsensusHandle { shared: self, pid }
    }
}

impl<B: Backend> fmt::Debug for RandomizedConsensus<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RandomizedConsensus")
            .field("processes", &self.n)
            .field("max_rounds", &self.rounds.len())
            .finish()
    }
}

/// Per-process handle to a [`RandomizedConsensus`] object.
pub struct ConsensusHandle<'a, B: Backend> {
    shared: &'a RandomizedConsensus<B>,
    pid: ProcessId,
}

impl<B: Backend> ConsensusHandle<'_, B> {
    /// Proposes `input`; returns the decided value.
    ///
    /// `coin` supplies the local random bits (pass a closure over your
    /// RNG; tests pass deterministic sequences).
    ///
    /// # Errors
    ///
    /// [`ConsensusError::RoundLimitExceeded`] if the round budget runs out
    /// (possible only with adversarial coins/schedules; rerunning with a
    /// larger budget is always safe).
    pub fn propose(
        &mut self,
        input: bool,
        coin: &mut dyn FnMut() -> bool,
    ) -> Result<bool, ConsensusError> {
        let mut value = input;
        for (index, round) in self.shared.rounds.iter().enumerate() {
            match self.commit_adopt(round, value) {
                Outcome::Commit(v) => return Ok(v),
                Outcome::Adopt(v) => value = v,
                Outcome::Conflict => {
                    value = match self.shared.coins.get(index) {
                        // The shared coin consumes local randomness but
                        // aligns the outcome across processes with
                        // constant probability.
                        Some(shared_coin) => {
                            shared_coin.handle(self.pid).flip(coin)
                        }
                        None => coin(),
                    }
                }
            }
        }
        Err(ConsensusError::RoundLimitExceeded {
            rounds: self.shared.max_rounds(),
        })
    }

    fn commit_adopt(&self, round: &Round<B>, value: bool) -> Outcome {
        // Phase A: publish the raw value; check for unanimity.
        let mut a = round.a.handle(self.pid);
        a.update(Some(value));
        let seen = a.scan();
        drop(a);
        let unanimous = seen.iter().flatten().all(|&v| v == value);
        let proposal = (unanimous, value);

        // Phase B: publish the (commit?, value) proposal.
        let mut b = round.b.handle(self.pid);
        b.update(Some(proposal));
        let proposals = b.scan();
        drop(b);

        let mut committed_value = None;
        let mut all_commit = true;
        for p in proposals.iter().flatten() {
            match p {
                (true, v) => committed_value = Some(*v),
                (false, _) => all_commit = false,
            }
        }
        match committed_value {
            Some(v) if all_commit => Outcome::Commit(v),
            // Some process proposed a commit for `v`: it may decide `v`
            // this round, so `v` must be carried forward.
            Some(v) => Outcome::Adopt(v),
            // No commit proposal visible anywhere: nobody can decide this
            // round (a decider's proposal is written before its scan, so
            // it would be visible) — randomizing is safe.
            None => Outcome::Conflict,
        }
    }
}

enum Outcome {
    Commit(bool),
    Adopt(bool),
    Conflict,
}

impl<B: Backend> fmt::Debug for ConsensusHandle<'_, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConsensusHandle")
            .field("pid", &self.pid)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_process_decides_its_input() {
        for input in [false, true] {
            let c = RandomizedConsensus::new(1, 4);
            let mut h = c.handle(ProcessId::new(0));
            assert_eq!(
                h.propose(input, &mut || panic!("no coin needed")),
                Ok(input)
            );
        }
    }

    #[test]
    fn unanimous_inputs_decide_in_one_round_without_coins() {
        let n = 4;
        let c = RandomizedConsensus::new(n, 2);
        let decisions: Vec<bool> = std::thread::scope(|s| {
            (0..n)
                .map(|i| {
                    let c = &c;
                    s.spawn(move || {
                        let mut h = c.handle(ProcessId::new(i));
                        h.propose(true, &mut || panic!("coin must not be needed"))
                            .unwrap()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        assert!(decisions.iter().all(|&d| d));
    }

    #[test]
    fn conflicting_inputs_agree_with_random_coins() {
        use rand::{RngExt, SeedableRng};
        for seed in 0..20u64 {
            let n = 4;
            let c = RandomizedConsensus::new(n, 64);
            let decisions: Vec<bool> = std::thread::scope(|s| {
                (0..n)
                    .map(|i| {
                        let c = &c;
                        s.spawn(move || {
                            let mut rng = rand::rngs::StdRng::seed_from_u64(seed * 100 + i as u64);
                            let mut h = c.handle(ProcessId::new(i));
                            h.propose(i % 2 == 0, &mut || rng.random_bool(0.5)).unwrap()
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|j| j.join().unwrap())
                    .collect()
            });
            assert!(
                decisions.iter().all(|&d| d == decisions[0]),
                "seed {seed}: disagreement {decisions:?}"
            );
        }
    }

    #[test]
    fn shared_coin_configuration_reaches_agreement() {
        use rand::{RngExt, SeedableRng};
        for seed in 0..10u64 {
            let n = 4;
            let backend = snapshot_registers::EpochBackend::new();
            let c = RandomizedConsensus::with_shared_coin(n, 32, &backend);
            assert!(c.has_shared_coin());
            let decisions: Vec<bool> = std::thread::scope(|s| {
                (0..n)
                    .map(|i| {
                        let c = &c;
                        s.spawn(move || {
                            let mut rng =
                                rand::rngs::StdRng::seed_from_u64(seed * 1000 + i as u64);
                            let mut h = c.handle(ProcessId::new(i));
                            h.propose(i % 2 == 0, &mut || rng.random_bool(0.5))
                                .unwrap()
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|j| j.join().unwrap())
                    .collect()
            });
            assert!(
                decisions.iter().all(|&d| d == decisions[0]),
                "seed {seed}: disagreement {decisions:?}"
            );
        }
    }

    #[test]
    fn round_budget_errors_are_reported_not_hung() {
        // A coin that perpetuates disagreement (each process stubbornly
        // re-flips to its own id parity) + a tiny budget.
        let n = 2;
        let c = RandomizedConsensus::new(n, 2);
        let results: Vec<Result<bool, ConsensusError>> = std::thread::scope(|s| {
            (0..n)
                .map(|i| {
                    let c = &c;
                    s.spawn(move || {
                        let mut h = c.handle(ProcessId::new(i));
                        h.propose(i % 2 == 0, &mut || i % 2 == 0)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|j| j.join().unwrap())
                .collect()
        });
        // Whatever happened, any decisions reached must agree.
        let decisions: Vec<bool> = results.iter().filter_map(|r| r.ok()).collect();
        assert!(decisions.windows(2).all(|w| w[0] == w[1]));
    }
}
