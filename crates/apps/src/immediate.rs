use std::fmt;

use snapshot_registers::{collect, Backend, EpochBackend, ProcessId, Register, RegisterValue};

/// The state one process publishes: its value and its current level.
#[derive(Clone, Debug)]
struct Slot<V> {
    value: Option<V>,
    level: usize,
}

/// A one-shot **immediate snapshot** object (Borowsky–Gafni levels
/// algorithm) — the kind of "more powerful primitive built from registers"
/// that Section 6 of the paper asks about ("is it possible to construct a
/// hierarchy of objects implementable from atomic registers?").
///
/// Each process calls [`write_read`](ImmediateSnapshot::write_read)
/// exactly once with its value and receives a *view* (a set of `(pid,
/// value)` pairs) such that, for the views `V_p` of all participants:
///
/// * **self-inclusion** — `p ∈ V_p`;
/// * **containment** — views are totally ordered by inclusion;
/// * **immediacy** — if `q ∈ V_p` then `V_q ⊆ V_p`.
///
/// Immediacy is strictly stronger than what a scan of an atomic snapshot
/// gives (a scan-then-update object yields containment but not
/// immediacy), which is why immediate snapshots power the
/// Borowsky–Gafni simulation and the combinatorial-topology view of
/// wait-free computation.
///
/// The algorithm: descend levels `n, n-1, …`; at each level publish
/// `(value, level)` and collect; if at least `level` processes are at
/// this level or below, return exactly those processes' values.
/// Wait-free: at most `n` iterations of `O(n)` register ops each.
///
/// # Example
///
/// ```
/// use snapshot_apps::ImmediateSnapshot;
/// use snapshot_registers::ProcessId;
///
/// let object = ImmediateSnapshot::new(2);
/// let view = object.write_read(ProcessId::new(0), "a");
/// assert!(view.iter().any(|(pid, _)| pid.get() == 0)); // self-inclusion
/// ```
pub struct ImmediateSnapshot<V: RegisterValue, B: Backend = EpochBackend> {
    slots: Box<[B::Cell<Slot<V>>]>,
    n: usize,
}

impl<V: RegisterValue> ImmediateSnapshot<V, EpochBackend> {
    /// Creates a one-shot immediate snapshot for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        Self::with_backend(n, &EpochBackend::new())
    }
}

impl<V: RegisterValue, B: Backend> ImmediateSnapshot<V, B> {
    /// Creates the object over an explicit register backend.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_backend(n: usize, backend: &B) -> Self {
        assert!(n > 0, "an immediate snapshot needs at least one process");
        ImmediateSnapshot {
            slots: (0..n)
                .map(|_| {
                    backend.cell(Slot {
                        value: None,
                        level: usize::MAX,
                    })
                })
                .collect(),
            n,
        }
    }

    /// Number of participating processes.
    pub fn processes(&self) -> usize {
        self.n
    }

    /// Publishes `value` and returns this process's immediate view: the
    /// `(pid, value)` pairs of every process at the level where this
    /// process "lands".
    ///
    /// One-shot: must be called at most once per process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or if this process already called
    /// `write_read`.
    pub fn write_read(&self, pid: ProcessId, value: V) -> Vec<(ProcessId, V)> {
        let i = pid.get();
        assert!(i < self.n, "{pid} out of range (object has {})", self.n);
        assert_eq!(
            self.slots[i].read(pid).level,
            usize::MAX,
            "write_read is one-shot; {pid} called it twice"
        );

        let mut level = self.n + 1;
        loop {
            level -= 1;
            debug_assert!(level >= 1, "levels algorithm descended past level 1");
            self.slots[i].write(
                pid,
                Slot {
                    value: Some(value.clone()),
                    level,
                },
            );
            let seen = collect(pid, &self.slots);
            let at_or_below: Vec<(ProcessId, V)> = seen
                .iter()
                .enumerate()
                .filter(|(_, s)| s.level <= level)
                .map(|(j, s)| {
                    (
                        ProcessId::new(j),
                        s.value.clone().expect("a leveled slot always has a value"),
                    )
                })
                .collect();
            if at_or_below.len() >= level {
                return at_or_below;
            }
        }
    }
}

impl<V: RegisterValue, B: Backend> fmt::Debug for ImmediateSnapshot<V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ImmediateSnapshot")
            .field("processes", &self.n)
            .finish()
    }
}

/// Checks the three immediate-snapshot properties over the views of all
/// participants; returns a description of the first violation found.
///
/// `views[i]` must be `Some(view)` for every process that completed its
/// `write_read` (pids in views must be `< views.len()`).
pub fn check_immediacy<V: Clone + Eq + fmt::Debug>(
    views: &[Option<Vec<(ProcessId, V)>>],
) -> Result<(), String> {
    let as_set = |view: &Vec<(ProcessId, V)>| -> Vec<usize> {
        let mut pids: Vec<usize> = view.iter().map(|(p, _)| p.get()).collect();
        pids.sort_unstable();
        pids
    };
    // Self-inclusion.
    for (i, view) in views.iter().enumerate() {
        if let Some(v) = view {
            if !v.iter().any(|(p, _)| p.get() == i) {
                return Err(format!("self-inclusion violated: P{i} not in own view {v:?}"));
            }
        }
    }
    // Containment: views totally ordered by inclusion.
    let sets: Vec<(usize, Vec<usize>)> = views
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.as_ref().map(|v| (i, as_set(v))))
        .collect();
    for (i, a) in &sets {
        for (j, b) in &sets {
            let a_in_b = a.iter().all(|x| b.contains(x));
            let b_in_a = b.iter().all(|x| a.contains(x));
            if !a_in_b && !b_in_a {
                return Err(format!(
                    "containment violated: views of P{i} ({a:?}) and P{j} ({b:?}) incomparable"
                ));
            }
        }
    }
    // Immediacy: q in V_p implies V_q subseteq V_p.
    for (p, vp) in &sets {
        for q in vp {
            if let Some((_, vq)) = sets.iter().find(|(i, _)| i == q) {
                if !vq.iter().all(|x| vp.contains(x)) {
                    return Err(format!(
                        "immediacy violated: P{q} in view of P{p} but V_{q} ({vq:?}) ⊄ V_{p} ({vp:?})"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_process_sees_itself_only() {
        let object = ImmediateSnapshot::new(1);
        let view = object.write_read(ProcessId::new(0), 7u32);
        assert_eq!(view, vec![(ProcessId::new(0), 7)]);
    }

    #[test]
    fn sequential_participants_get_nested_views() {
        let object = ImmediateSnapshot::new(3);
        let v0 = object.write_read(ProcessId::new(0), 10u32);
        let v1 = object.write_read(ProcessId::new(1), 11);
        let v2 = object.write_read(ProcessId::new(2), 12);
        assert_eq!(v0.len(), 1);
        assert_eq!(v1.len(), 2);
        assert_eq!(v2.len(), 3);
        let views = vec![Some(v0), Some(v1), Some(v2)];
        assert_eq!(check_immediacy(&views), Ok(()));
    }

    #[test]
    #[should_panic(expected = "one-shot")]
    fn second_write_read_panics() {
        let object = ImmediateSnapshot::new(2);
        object.write_read(ProcessId::new(0), 1u8);
        object.write_read(ProcessId::new(0), 2u8);
    }

    #[test]
    fn threaded_runs_satisfy_all_three_properties() {
        for round in 0..50 {
            let n = 4;
            let object = ImmediateSnapshot::new(n);
            let views: Vec<Option<Vec<(ProcessId, u64)>>> = std::thread::scope(|s| {
                (0..n)
                    .map(|i| {
                        let object = &object;
                        s.spawn(move || Some(object.write_read(ProcessId::new(i), i as u64)))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            assert_eq!(check_immediacy(&views), Ok(()), "round {round}");
        }
    }

    #[test]
    fn checker_rejects_bad_view_sets() {
        let p = ProcessId::new;
        // Missing self-inclusion.
        let views = vec![Some(vec![(p(1), 1u8)]), None];
        assert!(check_immediacy(&views).unwrap_err().contains("self-inclusion"));
        // Incomparable views.
        let views = vec![
            Some(vec![(p(0), 0u8)]),
            Some(vec![(p(1), 1)]),
        ];
        assert!(check_immediacy(&views).unwrap_err().contains("containment"));
        // Immediacy breach: P1 sees P0, but V_0 has P2 that V_1 lacks.
        let views = vec![
            Some(vec![(p(0), 0u8), (p(2), 2)]),
            Some(vec![(p(0), 0), (p(1), 1)]),
            Some(vec![(p(0), 0), (p(1), 1), (p(2), 2)]),
        ];
        assert!(check_immediacy(&views).unwrap_err().contains("violated"));
    }
}
