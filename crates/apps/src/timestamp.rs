use std::fmt;

use snapshot_core::{BoundedSnapshot, SwSnapshot, SwSnapshotHandle};
use snapshot_registers::{Backend, EpochBackend, ProcessId};

/// A totally ordered logical timestamp: `(time, pid)`.
///
/// Produced by [`TimestampHandle::label`]. Ordered lexicographically, so
/// timestamps from different processes never compare equal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp {
    /// The logical time component.
    pub time: u64,
    /// The labeling process (tie-breaker).
    pub pid: usize,
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.time, self.pid)
    }
}

/// An (unbounded) **concurrent time-stamp system** built from one atomic
/// snapshot object — the application from the paper's citation of
/// \[DS89\] ("Bounded Concurrent Time-Stamp Systems Are Constructible!").
///
/// Each call to [`TimestampHandle::label`] atomically scans all
/// processes' current labels and takes one larger than everything it saw.
/// The snapshot's atomicity gives the characteristic ordering guarantee:
/// **if one labeling operation completes before another begins, it
/// receives a strictly smaller timestamp** — concurrent labelings may be
/// ordered either way but never equal.
///
/// The labels here are unbounded integers; the paper's own bounded
/// single-writer construction is exactly the tool \[DS89\] combine with
/// handshakes to bound them — out of scope for this reproduction (see
/// DESIGN.md).
///
/// # Example
///
/// ```
/// use snapshot_apps::TimestampSystem;
/// use snapshot_registers::ProcessId;
///
/// let ts = TimestampSystem::new(2);
/// let mut h = ts.handle(ProcessId::new(0));
/// let a = h.label();
/// let b = h.label();
/// assert!(a < b);
/// ```
pub struct TimestampSystem<B: Backend = EpochBackend> {
    snapshot: BoundedSnapshot<u64, B>,
}

impl TimestampSystem<EpochBackend> {
    /// Creates a timestamp system shared by `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        Self::with_backend(n, &EpochBackend::new())
    }
}

impl<B: Backend> TimestampSystem<B> {
    /// Creates the system over an explicit register backend.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_backend(n: usize, backend: &B) -> Self {
        TimestampSystem {
            snapshot: BoundedSnapshot::with_backend(n, 0, backend),
        }
    }

    /// Number of participating processes.
    pub fn processes(&self) -> usize {
        self.snapshot.processes()
    }

    /// Claims the handle for process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or already claimed.
    pub fn handle(&self, pid: ProcessId) -> TimestampHandle<'_, B> {
        TimestampHandle {
            inner: self.snapshot.handle(pid),
        }
    }
}

impl<B: Backend> fmt::Debug for TimestampSystem<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimestampSystem")
            .field("processes", &self.processes())
            .finish()
    }
}

/// Per-process handle to a [`TimestampSystem`].
pub struct TimestampHandle<'a, B: Backend> {
    inner: <BoundedSnapshot<u64, B> as SwSnapshot<u64>>::Handle<'a>,
}

impl<B: Backend> TimestampHandle<'_, B> {
    /// Obtains a new timestamp, strictly larger than that of every
    /// labeling operation that completed before this one began.
    pub fn label(&mut self) -> Timestamp {
        let view = self.inner.scan();
        let max = view.iter().copied().max().unwrap_or(0);
        let time = max + 1;
        self.inner.update(time);
        Timestamp {
            time,
            pid: self.inner.pid().get(),
        }
    }

    /// The most recent label of every process, read atomically.
    pub fn observe(&mut self) -> Vec<Timestamp> {
        self.inner
            .scan()
            .iter()
            .enumerate()
            .map(|(pid, &time)| Timestamp { time, pid })
            .collect()
    }
}

impl<B: Backend> fmt::Debug for TimestampHandle<'_, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimestampHandle").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_increase_sequentially() {
        let ts = TimestampSystem::new(2);
        let mut h0 = ts.handle(ProcessId::new(0));
        let mut h1 = ts.handle(ProcessId::new(1));
        let a = h0.label();
        let b = h1.label();
        let c = h0.label();
        assert!(a < b && b < c);
    }

    #[test]
    fn concurrent_labels_are_all_distinct_and_realtime_ordered() {
        let n = 4;
        let ts = TimestampSystem::new(n);
        let clock = std::sync::atomic::AtomicU64::new(0);
        let all: Vec<Vec<(u64, u64, Timestamp)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let ts = &ts;
                    let clock = &clock;
                    s.spawn(move || {
                        use std::sync::atomic::Ordering;
                        let mut h = ts.handle(ProcessId::new(i));
                        let mut out = Vec::new();
                        for _ in 0..100 {
                            let inv = clock.fetch_add(1, Ordering::Relaxed);
                            let label = h.label();
                            let res = clock.fetch_add(1, Ordering::Relaxed);
                            out.push((inv, res, label));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let flat: Vec<(u64, u64, Timestamp)> = all.into_iter().flatten().collect();
        // All distinct.
        let mut labels: Vec<Timestamp> = flat.iter().map(|x| x.2).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), n * 100, "duplicate timestamps issued");
        // Real-time order respected: finish-before-start implies smaller.
        for x in &flat {
            for y in &flat {
                if x.1 < y.0 {
                    assert!(x.2 < y.2, "{} !< {} despite real-time order", x.2, y.2);
                }
            }
        }
    }
}
