use std::fmt;

use snapshot_core::{SwSnapshot, SwSnapshotHandle, UnboundedSnapshot};
use snapshot_registers::{Backend, EpochBackend, ProcessId, RegisterValue};

/// One process's segment: its latest write, tagged.
#[derive(Clone, Debug)]
struct Entry<V> {
    seq: u64,
    value: V,
}

/// An **n-writer, n-reader atomic register built from a single-writer
/// snapshot** — the converse of the register-from-register constructions
/// the paper cites (\[VA86, Blo87, PB87, S88, LTV89\]), and the textbook
/// illustration of why snapshots are a powerful primitive: with an atomic
/// picture of everybody's latest write, multi-writer semantics reduce to
/// "take the maximum tag".
///
/// * `write(v)`: scan, pick `seq` above every tag seen, update the own
///   segment with `(seq, v)` — wait-free, `O(n²)` register ops.
/// * `read()`: scan, return the value with the maximum `(seq, pid)` —
///   wait-free, `O(n²)` register ops.
///
/// Contrast with [`MwmrFromSwmr`], which builds the same object directly
/// from single-writer registers in `O(n)` — the snapshot route is more
/// expensive but conceptually one-line, which is the paper's point about
/// design simplification.
///
/// [`MwmrFromSwmr`]: snapshot_registers::MwmrFromSwmr
///
/// # Example
///
/// ```
/// use snapshot_apps::SnapshotRegister;
/// use snapshot_registers::ProcessId;
///
/// let reg = SnapshotRegister::new(2, 0u32);
/// let mut w = reg.writer(ProcessId::new(0));
/// w.write(5);
/// assert_eq!(w.read(), 5);
/// ```
pub struct SnapshotRegister<V: RegisterValue, B: Backend = EpochBackend> {
    snapshot: UnboundedSnapshot<Entry<V>, B>,
    init: V,
}

impl<V: RegisterValue> SnapshotRegister<V, EpochBackend> {
    /// Creates the register for `n` processes with initial value `init`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, init: V) -> Self {
        Self::with_backend(n, init, &EpochBackend::new())
    }
}

impl<V: RegisterValue, B: Backend> SnapshotRegister<V, B> {
    /// Creates the register over an explicit backend.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_backend(n: usize, init: V, backend: &B) -> Self {
        SnapshotRegister {
            snapshot: UnboundedSnapshot::with_backend(
                n,
                Entry {
                    seq: 0,
                    value: init.clone(),
                },
                backend,
            ),
            init,
        }
    }

    /// Number of participating processes.
    pub fn processes(&self) -> usize {
        self.snapshot.processes()
    }

    /// Claims process `pid`'s read/write handle.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or already claimed.
    pub fn writer(&self, pid: ProcessId) -> SnapshotRegisterHandle<'_, V, B> {
        SnapshotRegisterHandle {
            inner: self.snapshot.handle(pid),
            init: self.init.clone(),
        }
    }
}

impl<V: RegisterValue, B: Backend> fmt::Debug for SnapshotRegister<V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotRegister")
            .field("processes", &self.processes())
            .finish()
    }
}

/// Per-process handle to a [`SnapshotRegister`].
pub struct SnapshotRegisterHandle<'a, V: RegisterValue, B: Backend> {
    inner: <UnboundedSnapshot<Entry<V>, B> as SwSnapshot<Entry<V>>>::Handle<'a>,
    init: V,
}

impl<V: RegisterValue, B: Backend> SnapshotRegisterHandle<'_, V, B> {
    /// Writes `value`, superseding every write visible at this instant.
    pub fn write(&mut self, value: V) {
        let view = self.inner.scan();
        let max_seq = view.iter().map(|e| e.seq).max().unwrap_or(0);
        self.inner.update(Entry {
            seq: max_seq + 1,
            value,
        });
    }

    /// Reads the register: the maximum-tagged value across one atomic
    /// picture of all segments.
    pub fn read(&mut self) -> V {
        let view = self.inner.scan();
        view.iter()
            .enumerate()
            .max_by_key(|(pid, e)| (e.seq, *pid))
            .filter(|(_, e)| e.seq > 0)
            .map(|(_, e)| e.value.clone())
            .unwrap_or_else(|| self.init.clone())
    }
}

impl<V: RegisterValue, B: Backend> fmt::Debug for SnapshotRegisterHandle<'_, V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotRegisterHandle")
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_value_until_first_write() {
        let reg = SnapshotRegister::new(3, 7u32);
        let mut h = reg.writer(ProcessId::new(1));
        assert_eq!(h.read(), 7);
    }

    #[test]
    fn last_write_wins_across_processes() {
        let reg = SnapshotRegister::new(3, 0u32);
        let mut h0 = reg.writer(ProcessId::new(0));
        let mut h1 = reg.writer(ProcessId::new(1));
        let mut h2 = reg.writer(ProcessId::new(2));
        h0.write(1);
        h1.write(2);
        h2.write(3);
        assert_eq!(h0.read(), 3);
        h0.write(4);
        assert_eq!(h1.read(), 4);
    }

    #[test]
    fn threaded_no_lost_final_write() {
        let reg = SnapshotRegister::new(4, 0u64);
        std::thread::scope(|s| {
            for i in 0..4usize {
                let reg = &reg;
                s.spawn(move || {
                    let mut h = reg.writer(ProcessId::new(i));
                    for k in 0..100u64 {
                        h.write(k * 4 + i as u64);
                        // Tags are globally monotone, so the read returns
                        // some write concurrent with or later than ours;
                        // it must at least be a value somebody wrote.
                        let v = h.read();
                        assert!(v % 4 < 4 && v < 400 + 4);
                    }
                });
            }
        });
    }
}
