//! Property tests for the register substrate: sequential semantics of
//! every cell flavor against a reference model, and the counter algebra.

use proptest::prelude::*;
use snapshot_registers::{
    Backend, EpochBackend, EpochCell, MutexBackend, MwmrFromSwmr, OpCounters, OpKind, ProcessId,
    Register, SeqLockCell,
};

/// One sequential register operation by some process.
#[derive(Clone, Debug)]
enum Op {
    Write { pid: usize, value: u64 },
    Read { pid: usize },
}

fn ops(n_procs: usize, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..n_procs, any::<u64>()).prop_map(|(pid, value)| Op::Write { pid, value }),
            (0..n_procs).prop_map(|pid| Op::Read { pid }),
        ],
        0..len,
    )
}

/// Applies `ops` sequentially to `reg`, checking every read against the
/// last-write model.
fn check_sequential<R: Register<u64>>(reg: &R, init: u64, ops: &[Op]) {
    let mut model = init;
    for op in ops {
        match op {
            Op::Write { pid, value } => {
                reg.write(ProcessId::new(*pid), *value);
                model = *value;
            }
            Op::Read { pid } => {
                assert_eq!(reg.read(ProcessId::new(*pid)), model);
            }
        }
    }
}

proptest! {
    #[test]
    fn epoch_cell_is_a_sequential_register(init in any::<u64>(), ops in ops(4, 64)) {
        check_sequential(&EpochCell::new(init), init, &ops);
    }

    #[test]
    fn mutex_backend_is_a_sequential_register(init in any::<u64>(), ops in ops(4, 64)) {
        let backend = MutexBackend::new();
        check_sequential(&backend.cell(init), init, &ops);
    }

    #[test]
    fn seqlock_is_a_sequential_register(init in any::<u64>(), ops in ops(1, 64)) {
        // SeqLock is single-writer: all ops by process 0.
        let owner = ProcessId::new(0);
        check_sequential(&SeqLockCell::new(owner, init), init, &ops);
    }

    #[test]
    fn mwmr_from_swmr_is_a_sequential_register(
        init in any::<u64>(),
        n in 1usize..6,
        raw_ops in ops(6, 48),
    ) {
        // Clamp pids into range for this n.
        let ops: Vec<Op> = raw_ops
            .into_iter()
            .map(|op| match op {
                Op::Write { pid, value } => Op::Write { pid: pid % n, value },
                Op::Read { pid } => Op::Read { pid: pid % n },
            })
            .collect();
        let reg = MwmrFromSwmr::new(&EpochBackend::new(), n, init);
        check_sequential(&reg, init, &ops);
    }

    #[test]
    fn bit_cells_round_trip(bits in prop::collection::vec(any::<bool>(), 0..32)) {
        let backend = EpochBackend::new();
        let bit = backend.bit(false);
        let p = ProcessId::new(0);
        let mut model = false;
        for b in bits {
            bit.write(p, b);
            model = b;
            prop_assert_eq!(bit.read(p), model);
        }
    }

    #[test]
    fn op_counters_sum_to_recorded_totals(
        events in prop::collection::vec((0usize..5, any::<bool>()), 0..200)
    ) {
        let counters = OpCounters::new(5);
        let mut reads = [0u64; 5];
        let mut writes = [0u64; 5];
        for (pid, is_read) in &events {
            let kind = if *is_read { OpKind::Read } else { OpKind::Write };
            counters.record(ProcessId::new(*pid), kind);
            if *is_read {
                reads[*pid] += 1;
            } else {
                writes[*pid] += 1;
            }
        }
        for pid in 0..5 {
            let snap = counters.snapshot(ProcessId::new(pid));
            prop_assert_eq!(snap.reads, reads[pid]);
            prop_assert_eq!(snap.writes, writes[pid]);
        }
        let total = counters.total();
        prop_assert_eq!(total.reads, reads.iter().sum::<u64>());
        prop_assert_eq!(total.writes, writes.iter().sum::<u64>());
        prop_assert_eq!(total.total(), events.len() as u64);
    }

    #[test]
    fn mwmr_tags_strictly_dominate_after_writes(
        writers in prop::collection::vec(0usize..4, 1..24)
    ) {
        // After any sequential series of writes, a read from anybody
        // returns the LAST write, regardless of which processes wrote
        // (tag order must break ties deterministically).
        let reg = MwmrFromSwmr::new(&EpochBackend::new(), 4, 0u64);
        let mut last = 0u64;
        for (k, w) in writers.iter().enumerate() {
            last = (k as u64 + 1) * 10 + *w as u64;
            reg.write(ProcessId::new(*w), last);
        }
        for r in 0..4 {
            prop_assert_eq!(reg.read(ProcessId::new(r)), last);
        }
    }
}
