//! Atomic read/write register substrate for the wait-free atomic-snapshot
//! constructions of Afek, Attiya, Dolev, Gafni, Merritt and Shavit
//! (*Atomic Snapshots of Shared Memory*, PODC 1990).
//!
//! The paper's model allows exactly one kind of shared primitive: the
//! **atomic (linearizable) read/write register**. This crate provides that
//! primitive in several interchangeable flavors, plus the instrumentation
//! the reproduction needs:
//!
//! * [`Register`] — the abstract single-cell read/write interface, with
//!   every access attributed to a [`ProcessId`];
//! * [`EpochCell`] — the default lock-free register: an immutable record
//!   behind an atomic pointer, reclaimed with epoch-based GC (a write is a
//!   single pointer swap, so arbitrarily wide records are written
//!   atomically, exactly as the paper assumes);
//! * [`MutexCell`] and [`SeqLockCell`] — blocking and sequence-lock
//!   baselines for the benchmarks;
//! * [`BitCell`] — a specialized boolean register for the handshake bits
//!   of the bounded algorithms;
//! * [`Backend`] — a factory abstraction so each snapshot algorithm is
//!   generic over the register flavor;
//! * [`Instrumented`] — a transparent wrapper that counts register
//!   operations per process ([`OpCounters`]) and/or parks at every
//!   register access until a scheduler grants a step ([`StepGate`]); the
//!   deterministic simulator in `snapshot-sim` drives the latter;
//! * [`MwmrFromSwmr`] — an n-writer n-reader register built from n
//!   single-writer registers (Vitányi–Awerbuch-style unbounded-tag
//!   construction), used to trace the multi-writer snapshot's cost back to
//!   single-writer operations as in Section 6 of the paper;
//! * [`CachePadded`] — 128-byte padding for per-process cell arrays, so
//!   neighbouring processes' registers never false-share a cache line;
//! * [`TrackedCollect`] — an incremental collect that re-reads only the
//!   registers that moved, using [`Register::version_hint`] probes and the
//!   algorithms' own seq/handshake keys (see `registers/collect.rs`).
//!
//! # Example
//!
//! ```
//! use snapshot_registers::{Backend, EpochBackend, ProcessId, Register};
//!
//! let backend = EpochBackend::default();
//! let cell = backend.cell(0u64);
//! let p0 = ProcessId::new(0);
//! cell.write(p0, 7);
//! assert_eq!(cell.read(p0), 7);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod bit_cell;
mod collect;
mod counting;
mod epoch_cell;
mod gate;
mod instrument;
mod mutex_cell;
mod mwmr_from_swmr;
mod pad;
mod process;
mod seqlock;

pub use backend::{Backend, EpochBackend, MutexBackend, RegisterValue};
pub use bit_cell::BitCell;
pub use collect::{collect, subset_collect, PassSummary, SlotOutcome, SubsetOutcome, TrackedCollect};
pub use counting::{OpCounters, OpKind, OpSnapshot};
pub use epoch_cell::EpochCell;
pub use gate::{NullGate, StepGate};
pub use instrument::{Instrumented, InstrumentedCell, Probe};
pub use mutex_cell::MutexCell;
pub use mwmr_from_swmr::{CompoundBackend, MwmrFromSwmr, Tagged};
pub use pad::CachePadded;
pub use process::ProcessId;
pub use seqlock::SeqLockCell;

/// A shared atomic (linearizable) read/write register.
///
/// Every access names the process performing it; implementations use this
/// for instrumentation, for scheduler gating, and (in debug builds) to
/// enforce single-writer disciplines.
///
/// Implementations must be linearizable: each `read` returns the value of
/// some `write` (or the initial value) consistent with a total order of all
/// operations that respects real time.
pub trait Register<T>: Send + Sync {
    /// Reads the current register contents on behalf of `reader`.
    fn read(&self, reader: ProcessId) -> T;

    /// Replaces the register contents with `value` on behalf of `writer`.
    fn write(&self, writer: ProcessId, value: T);

    /// Applies `f` to the current register contents *in place* and returns
    /// its result — one atomic read, no clone of `T`.
    ///
    /// This is the clone-free read path the collects are built on: a
    /// scanner comparing sequence numbers or handshake bits only needs to
    /// *look at* a record, and cloning the whole `(value, seq, view)`
    /// composite just to drop it is the dominant constant-factor cost of a
    /// double collect. The default implementation clones via [`read`] and
    /// borrows the copy, so every register is correct out of the box;
    /// in-memory cells override it to borrow the shared record directly
    /// (e.g. [`EpochCell`] pins an epoch and derefs the stored pointer).
    ///
    /// `f` may run while an implementation-internal resource is held (an
    /// epoch pin, a lock): keep it short and never call back into the same
    /// register from inside it.
    ///
    /// Note the `where Self: Sized` bound: `read_with` cannot be
    /// dispatched through a `dyn Register` trait object, so an unsized
    /// register only ever exposes this cloning fallback. The blanket
    /// impls for `&R` and `Arc<R>` require `R: Sized` precisely so they
    /// can forward to the inner register's (possibly clone-free)
    /// override instead of silently degrading to `read` + clone while
    /// still advertising [`version_hint`].
    ///
    /// [`read`]: Register::read
    /// [`version_hint`]: Register::version_hint
    /// [`EpochCell`]: crate::EpochCell
    fn read_with<U>(&self, reader: ProcessId, f: impl FnOnce(&T) -> U) -> U
    where
        Self: Sized,
    {
        f(&self.read(reader))
    }

    /// A cheap *write-version* observation, if the implementation keeps
    /// one ([`None`] otherwise, the default).
    ///
    /// Contract for implementers: the counter changes with every `write`,
    /// and the change becomes visible no later than the write's return.
    /// Hence if two calls return the same `Some(v)`, **no write completed
    /// between them** — a write the pair missed is still in flight, i.e.
    /// concurrent with both observations. A caller that observes the
    /// version, then reads the record, may later treat an unchanged
    /// version as proof that its record is still current: the only writes
    /// it can be missing are concurrent ones, which may legally be
    /// linearized after the read. [`TrackedCollect`] uses exactly this to
    /// skip re-reading registers that have not moved.
    ///
    /// [`TrackedCollect`]: crate::TrackedCollect
    fn version_hint(&self) -> Option<u64> {
        None
    }
}
/// A register whose operations can fail with a typed error.
///
/// In-process registers never fail (their `Error` is
/// [`std::convert::Infallible`]), but registers emulated over a
/// message-passing system lose liveness when the network degrades past
/// the protocol's resilience boundary — e.g. the ABD emulation's quorum
/// phases starve once a majority of replicas is unreachable. This trait
/// lets such embeddings surface that as a typed error the caller can
/// retry or report, while the plain [`Register`] interface (which the
/// wait-free constructions use, and which has no error channel) panics.
///
/// For infallible implementations the `try_` methods are exactly
/// `read`/`write`; implementations with real failure modes must keep the
/// pair coherent: `read`/`write` behave as `try_read`/`try_write` with
/// errors escalated to panics.
pub trait TryRegister<T>: Register<T> {
    /// The error produced when an operation cannot complete.
    type Error: std::error::Error + Send + Sync + 'static;

    /// Reads the current register contents on behalf of `reader`.
    fn try_read(&self, reader: ProcessId) -> Result<T, Self::Error>;

    /// Replaces the register contents with `value` on behalf of `writer`.
    fn try_write(&self, writer: ProcessId, value: T) -> Result<(), Self::Error>;
}

// `R: Sized` (not `?Sized`) so `read_with` can forward to the inner
// register's override — a `&R` register must not degrade to the cloning
// fallback while still advertising `version_hint`. `dyn Register` is
// deliberately unsupported here; see the `read_with` docs.
impl<T, R: Register<T>> Register<T> for &R {
    fn read(&self, reader: ProcessId) -> T {
        (**self).read(reader)
    }

    fn write(&self, writer: ProcessId, value: T) {
        (**self).write(writer, value)
    }

    fn read_with<U>(&self, reader: ProcessId, f: impl FnOnce(&T) -> U) -> U {
        (**self).read_with(reader, f)
    }

    fn version_hint(&self) -> Option<u64> {
        (**self).version_hint()
    }
}

impl<T, R: Register<T>> Register<T> for std::sync::Arc<R> {
    fn read(&self, reader: ProcessId) -> T {
        (**self).read(reader)
    }

    fn write(&self, writer: ProcessId, value: T) {
        (**self).write(writer, value)
    }

    fn read_with<U>(&self, reader: ProcessId, f: impl FnOnce(&T) -> U) -> U {
        (**self).read_with(reader, f)
    }

    fn version_hint(&self) -> Option<u64> {
        (**self).version_hint()
    }
}
