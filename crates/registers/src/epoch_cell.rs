use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_epoch::{self as epoch, Atomic, Owned};

use crate::{ProcessId, Register, TryRegister};

/// The default lock-free atomic register: an immutable record behind an
/// atomic pointer, reclaimed with epoch-based garbage collection.
///
/// The snapshot constructions require registers holding *composite*
/// records — e.g. `(value, seq, view)` in Figure 2 of the paper — written
/// in a **single atomic write**. Storing the record behind a pointer makes
/// a write one `swap` and a read one `load`, so records of any width are
/// read and written atomically. Writers never wait for readers and vice
/// versa, matching the wait-free register primitive the paper assumes.
///
/// Reads clone the stored value (`T: Clone`); the snapshot algorithms keep
/// their bulky fields (the `view` vectors) behind `Arc`, so cloning is
/// cheap — and the [`Register::read_with`] override here avoids even that
/// clone by borrowing the record under the epoch pin.
///
/// The cell also keeps a *write-version* counter for
/// [`Register::version_hint`]: it is bumped **after** each pointer swap,
/// inside `write`, so an unchanged version between two observations
/// proves no write completed in between (a swap the observer missed can
/// only belong to a `write` call that had not yet returned — a concurrent
/// write, which a linearizable reader may order after itself).
///
/// # Memory-ordering audit
///
/// All cross-thread accesses here are `SeqCst`, deliberately. The paper's
/// proofs (Observation 1, and the Figure 3 handshake argument recorded as
/// Lemma 4.1 in PROOFS.md) reason about a single real-time total order of
/// operations on *different* registers — e.g. a scanner's write to the
/// handshake bit `q_{i,j}` must be ordered against an updater's read of
/// it and against both parties' subsequent accesses to `r_j`. Pairwise
/// `Acquire`/`Release` only orders accesses to the *same* location and
/// admits IRIW-style anomalies across locations, which would let two
/// scanners disagree on the order of two independent writes — breaking
/// the linearizable-register abstraction out from under every proof. The
/// only `Relaxed` access is in [`Drop`], where `&mut self` guarantees
/// exclusivity and no concurrent observer exists.
///
/// # Example
///
/// ```
/// use snapshot_registers::{EpochCell, ProcessId, Register};
///
/// let cell = EpochCell::new((0u64, "init"));
/// cell.write(ProcessId::new(1), (9, "hello"));
/// assert_eq!(cell.read(ProcessId::new(0)), (9, "hello"));
/// ```
pub struct EpochCell<T> {
    slot: Atomic<T>,
    /// Write-version for `version_hint`; bumped after every swap.
    version: AtomicU64,
}

impl<T: Clone + Send + Sync> EpochCell<T> {
    /// Creates a register holding `init`.
    pub fn new(init: T) -> Self {
        EpochCell {
            slot: Atomic::new(init),
            version: AtomicU64::new(0),
        }
    }
}

impl<T: Clone + Send + Sync> Register<T> for EpochCell<T> {
    fn read(&self, _reader: ProcessId) -> T {
        let guard = epoch::pin();
        // SeqCst: the read must take its place in the global operation
        // order the snapshot proofs quantify over (see the type-level
        // ordering audit above).
        let shared = self.slot.load(Ordering::SeqCst, &guard);
        // SAFETY: the slot is never null (initialized in `new`, and every
        // write installs a valid allocation); the epoch guard keeps the
        // pointee alive for the duration of the dereference.
        unsafe { shared.deref() }.clone()
    }

    fn write(&self, _writer: ProcessId, value: T) {
        let guard = epoch::pin();
        // SeqCst: same global-order requirement as `read`.
        let old = self.slot.swap(Owned::new(value), Ordering::SeqCst, &guard);
        // The version bump follows the swap (both SeqCst, same thread):
        // once this `write` returns, the bump is visible, so an observer
        // seeing an unchanged version can only have missed swaps of writes
        // that had not yet returned — concurrent writes, which the
        // `version_hint` contract explicitly permits missing.
        self.version.fetch_add(1, Ordering::SeqCst);
        // SAFETY: `old` was produced by `Owned::new` / `Atomic::new` and is
        // now unreachable from the slot; readers that loaded it are pinned,
        // so destruction is deferred past their epochs.
        unsafe { guard.defer_destroy(old) };
    }

    fn read_with<U>(&self, _reader: ProcessId, f: impl FnOnce(&T) -> U) -> U {
        let guard = epoch::pin();
        let shared = self.slot.load(Ordering::SeqCst, &guard);
        // SAFETY: as in `read`; `f` borrows the record only while the
        // epoch guard is live, so no clone is needed.
        f(unsafe { shared.deref() })
    }

    fn version_hint(&self) -> Option<u64> {
        Some(self.version.load(Ordering::SeqCst))
    }
}

impl<T: Clone + Send + Sync> TryRegister<T> for EpochCell<T> {
    type Error = std::convert::Infallible;

    fn try_read(&self, reader: ProcessId) -> Result<T, Self::Error> {
        Ok(self.read(reader))
    }

    fn try_write(&self, writer: ProcessId, value: T) -> Result<(), Self::Error> {
        self.write(writer, value);
        Ok(())
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        // SAFETY: we have exclusive access; the pointer is non-null and no
        // concurrent reader can exist. Relaxed suffices for the same
        // reason: `&mut self` already synchronized with every past access.
        unsafe {
            let guard = epoch::unprotected();
            let shared = self.slot.load(Ordering::Relaxed, guard);
            drop(shared.into_owned());
        }
    }
}

impl<T> fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochCell").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const P0: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);

    #[test]
    fn initial_value_is_visible() {
        let cell = EpochCell::new(41u32);
        assert_eq!(cell.read(P0), 41);
    }

    #[test]
    fn write_then_read_round_trips() {
        let cell = EpochCell::new(String::from("a"));
        cell.write(P0, String::from("b"));
        assert_eq!(cell.read(P1), "b");
    }

    #[test]
    fn read_with_borrows_the_stored_record() {
        let cell = EpochCell::new(vec![1, 2, 3]);
        assert_eq!(cell.read_with(P0, Vec::len), 3);
        cell.write(P0, vec![9]);
        assert_eq!(cell.read_with(P1, |v| v[0]), 9);
    }

    #[test]
    fn version_hint_moves_on_every_completed_write() {
        let cell = EpochCell::new(0u8);
        let v0 = cell.version_hint().unwrap();
        cell.write(P0, 1);
        let v1 = cell.version_hint().unwrap();
        assert_ne!(v0, v1, "a write must change the version");
        // Writing the same value still counts: the algorithms' toggle
        // bits exist precisely because identical payloads must remain
        // distinguishable writes.
        cell.write(P0, 1);
        assert_ne!(cell.version_hint().unwrap(), v1);
    }

    #[test]
    fn version_probe_pairs_with_reads() {
        // The reuse discipline of TrackedCollect: observe the version,
        // read the record, and an unchanged version later certifies the
        // record is still current.
        let cell = EpochCell::new(10u32);
        let v = cell.version_hint().unwrap();
        let rec = cell.read(P0);
        assert_eq!(cell.version_hint().unwrap(), v);
        assert_eq!(rec, cell.read(P0));
        cell.write(P1, 11);
        assert_ne!(cell.version_hint().unwrap(), v);
    }

    #[test]
    fn composite_records_are_written_atomically() {
        // Writers alternate between two internally-consistent records; a
        // torn write would surface as a mixed record.
        let cell = Arc::new(EpochCell::new((0u64, 0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut k = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    cell.write(P0, (k, k.wrapping_mul(3)));
                    k += 1;
                }
            })
        };
        for _ in 0..10_000 {
            let (a, b) = cell.read(P1);
            assert_eq!(b, a.wrapping_mul(3), "torn read: ({a}, {b})");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn many_writers_last_value_wins_eventually() {
        let cell = Arc::new(EpochCell::new(0usize));
        std::thread::scope(|s| {
            for t in 0..4 {
                let cell = &cell;
                s.spawn(move || {
                    for i in 0..1_000 {
                        cell.write(ProcessId::new(t), t * 1_000 + i);
                    }
                });
            }
        });
        let last = cell.read(P0);
        assert!(last % 1_000 == 999, "last write of some thread: {last}");
    }

    #[test]
    fn drop_releases_storage() {
        // Mostly a miri/asan canary: construct, write a few times, drop.
        let cell = EpochCell::new(vec![1, 2, 3]);
        cell.write(P0, vec![4, 5]);
        cell.write(P0, vec![6]);
        drop(cell);
    }
}
