use std::fmt;
use std::sync::atomic::Ordering;

use crossbeam_epoch::{self as epoch, Atomic, Owned};

use crate::{ProcessId, Register, TryRegister};

/// The default lock-free atomic register: an immutable record behind an
/// atomic pointer, reclaimed with epoch-based garbage collection.
///
/// The snapshot constructions require registers holding *composite*
/// records — e.g. `(value, seq, view)` in Figure 2 of the paper — written
/// in a **single atomic write**. Storing the record behind a pointer makes
/// a write one `swap` and a read one `load`, so records of any width are
/// read and written atomically. Writers never wait for readers and vice
/// versa, matching the wait-free register primitive the paper assumes.
///
/// Reads clone the stored value (`T: Clone`); the snapshot algorithms keep
/// their bulky fields (the `view` vectors) behind `Arc`, so cloning is
/// cheap.
///
/// # Example
///
/// ```
/// use snapshot_registers::{EpochCell, ProcessId, Register};
///
/// let cell = EpochCell::new((0u64, "init"));
/// cell.write(ProcessId::new(1), (9, "hello"));
/// assert_eq!(cell.read(ProcessId::new(0)), (9, "hello"));
/// ```
pub struct EpochCell<T> {
    slot: Atomic<T>,
}

impl<T: Clone + Send + Sync> EpochCell<T> {
    /// Creates a register holding `init`.
    pub fn new(init: T) -> Self {
        EpochCell {
            slot: Atomic::new(init),
        }
    }
}

impl<T: Clone + Send + Sync> Register<T> for EpochCell<T> {
    fn read(&self, _reader: ProcessId) -> T {
        let guard = epoch::pin();
        let shared = self.slot.load(Ordering::SeqCst, &guard);
        // SAFETY: the slot is never null (initialized in `new`, and every
        // write installs a valid allocation); the epoch guard keeps the
        // pointee alive for the duration of the dereference.
        unsafe { shared.deref() }.clone()
    }

    fn write(&self, _writer: ProcessId, value: T) {
        let guard = epoch::pin();
        let old = self.slot.swap(Owned::new(value), Ordering::SeqCst, &guard);
        // SAFETY: `old` was produced by `Owned::new` / `Atomic::new` and is
        // now unreachable from the slot; readers that loaded it are pinned,
        // so destruction is deferred past their epochs.
        unsafe { guard.defer_destroy(old) };
    }
}

impl<T: Clone + Send + Sync> TryRegister<T> for EpochCell<T> {
    type Error = std::convert::Infallible;

    fn try_read(&self, reader: ProcessId) -> Result<T, Self::Error> {
        Ok(self.read(reader))
    }

    fn try_write(&self, writer: ProcessId, value: T) -> Result<(), Self::Error> {
        self.write(writer, value);
        Ok(())
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        // SAFETY: we have exclusive access; the pointer is non-null and no
        // concurrent reader can exist.
        unsafe {
            let guard = epoch::unprotected();
            let shared = self.slot.load(Ordering::Relaxed, guard);
            drop(shared.into_owned());
        }
    }
}

impl<T> fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochCell").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const P0: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);

    #[test]
    fn initial_value_is_visible() {
        let cell = EpochCell::new(41u32);
        assert_eq!(cell.read(P0), 41);
    }

    #[test]
    fn write_then_read_round_trips() {
        let cell = EpochCell::new(String::from("a"));
        cell.write(P0, String::from("b"));
        assert_eq!(cell.read(P1), "b");
    }

    #[test]
    fn composite_records_are_written_atomically() {
        // Writers alternate between two internally-consistent records; a
        // torn write would surface as a mixed record.
        let cell = Arc::new(EpochCell::new((0u64, 0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut k = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    cell.write(P0, (k, k.wrapping_mul(3)));
                    k += 1;
                }
            })
        };
        for _ in 0..10_000 {
            let (a, b) = cell.read(P1);
            assert_eq!(b, a.wrapping_mul(3), "torn read: ({a}, {b})");
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn many_writers_last_value_wins_eventually() {
        let cell = Arc::new(EpochCell::new(0usize));
        std::thread::scope(|s| {
            for t in 0..4 {
                let cell = &cell;
                s.spawn(move || {
                    for i in 0..1_000 {
                        cell.write(ProcessId::new(t), t * 1_000 + i);
                    }
                });
            }
        });
        let last = cell.read(P0);
        assert!(last % 1_000 == 999, "last write of some thread: {last}");
    }

    #[test]
    fn drop_releases_storage() {
        // Mostly a miri/asan canary: construct, write a few times, drop.
        let cell = EpochCell::new(vec![1, 2, 3]);
        cell.write(P0, vec![4, 5]);
        cell.write(P0, vec![6]);
        drop(cell);
    }
}
