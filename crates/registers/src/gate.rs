use std::fmt;

use crate::{OpKind, ProcessId};

/// A hook invoked immediately before every primitive register operation.
///
/// The deterministic simulator in `snapshot-sim` implements this trait with
/// a gate that *parks the calling thread* until the scheduler grants it a
/// step. Because every shared-memory access funnels through the gate and at
/// most one process runs between grants, the scheduler totally orders all
/// register operations — turning the very same algorithm code that runs on
/// real threads into a deterministically explorable state machine.
///
/// Implementations must not panic while other gated threads are parked
/// unless the whole exploration is being torn down.
pub trait StepGate: Send + Sync {
    /// Blocks (or not) until the process `pid` may perform `op`.
    fn step(&self, pid: ProcessId, op: OpKind);
}

/// A gate that never blocks: real-concurrency execution.
///
/// # Example
///
/// ```
/// use snapshot_registers::{NullGate, OpKind, ProcessId, StepGate};
///
/// NullGate.step(ProcessId::new(0), OpKind::Read); // returns immediately
/// ```
#[derive(Clone, Copy, Default)]
pub struct NullGate;

impl StepGate for NullGate {
    fn step(&self, _pid: ProcessId, _op: OpKind) {}
}

impl fmt::Debug for NullGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("NullGate")
    }
}
