use std::fmt;
use std::sync::Arc;

use snapshot_obs::{Event, Trace};

use crate::{Backend, OpCounters, OpKind, ProcessId, Register, RegisterValue, StepGate};

/// The observation hooks shared by every cell an [`Instrumented`] backend
/// creates: optional per-process operation counters, an optional scheduler
/// gate, and an optional [`Trace`] receiving a typed event per primitive
/// register operation.
#[derive(Clone, Default)]
pub struct Probe {
    counters: Option<Arc<OpCounters>>,
    gate: Option<Arc<dyn StepGate>>,
    trace: Trace,
}

impl Probe {
    /// A probe that counts operations into `counters`.
    pub fn counting(counters: Arc<OpCounters>) -> Self {
        Probe {
            counters: Some(counters),
            gate: None,
            trace: Trace::disabled(),
        }
    }

    /// A probe that parks at `gate` before every operation.
    pub fn gated(gate: Arc<dyn StepGate>) -> Self {
        Probe {
            counters: None,
            gate: Some(gate),
            trace: Trace::disabled(),
        }
    }

    /// Adds counting to this probe.
    pub fn with_counters(mut self, counters: Arc<OpCounters>) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Adds gating to this probe.
    pub fn with_gate(mut self, gate: Arc<dyn StepGate>) -> Self {
        self.gate = Some(gate);
        self
    }

    /// Routes a `register_read` / `register_write` event into `trace` for
    /// every observed operation.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// The counters this probe records into, if any.
    pub fn counters(&self) -> Option<&Arc<OpCounters>> {
        self.counters.as_ref()
    }

    /// The trace this probe emits into (disabled by default).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    fn observe(&self, pid: ProcessId, op: OpKind) {
        if let Some(gate) = &self.gate {
            gate.step(pid, op);
        }
        if let Some(counters) = &self.counters {
            counters.record(pid, op);
        }
        self.trace.emit(
            pid.get(),
            match op {
                OpKind::Read => Event::RegisterRead,
                OpKind::Write => Event::RegisterWrite,
            },
        );
    }
}

impl fmt::Debug for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Probe")
            .field("counting", &self.counters.is_some())
            .field("gated", &self.gate.is_some())
            .field("traced", &self.trace.is_enabled())
            .finish()
    }
}

/// A [`Backend`] wrapper whose every cell reports to a shared [`Probe`].
///
/// Composes with any inner backend: counted real-concurrency runs
/// (`Instrumented<EpochBackend>` with counters), deterministic simulation
/// (gate installed by `snapshot-sim`), or both at once — the step-complexity
/// experiments count operations *under* adversarial schedules this way.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use snapshot_registers::{
///     Backend, EpochBackend, Instrumented, OpCounters, ProcessId, Register,
/// };
///
/// let counters = Arc::new(OpCounters::new(1));
/// let backend = Instrumented::new(EpochBackend::default())
///     .with_counters(Arc::clone(&counters));
/// let cell = backend.cell(0u8);
/// let p = ProcessId::new(0);
/// cell.write(p, 1);
/// cell.read(p);
/// let snap = counters.snapshot(p);
/// assert_eq!((snap.reads, snap.writes), (1, 1));
/// ```
#[derive(Debug)]
pub struct Instrumented<B> {
    inner: B,
    probe: Probe,
}

impl<B> Instrumented<B> {
    /// Wraps `inner` with an empty probe (no counting, no gating).
    pub fn new(inner: B) -> Self {
        Instrumented {
            inner,
            probe: Probe::default(),
        }
    }

    /// Wraps `inner` with an explicit probe.
    pub fn with_probe(inner: B, probe: Probe) -> Self {
        Instrumented { inner, probe }
    }

    /// Adds operation counting.
    pub fn with_counters(mut self, counters: Arc<OpCounters>) -> Self {
        self.probe = self.probe.with_counters(counters);
        self
    }

    /// Adds scheduler gating.
    pub fn with_gate(mut self, gate: Arc<dyn StepGate>) -> Self {
        self.probe = self.probe.with_gate(gate);
        self
    }

    /// Adds trace emission (one event per primitive register operation).
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.probe = self.probe.with_trace(trace);
        self
    }

    /// The probe shared by all cells of this backend.
    pub fn probe(&self) -> &Probe {
        &self.probe
    }

    /// Consumes the wrapper, returning the inner backend.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: Backend> Backend for Instrumented<B> {
    type Cell<T: RegisterValue> = InstrumentedCell<B::Cell<T>>;
    type Bit = InstrumentedCell<B::Bit>;

    fn cell<T: RegisterValue>(&self, init: T) -> Self::Cell<T> {
        InstrumentedCell {
            inner: self.inner.cell(init),
            probe: self.probe.clone(),
        }
    }

    fn bit(&self, init: bool) -> Self::Bit {
        InstrumentedCell {
            inner: self.inner.bit(init),
            probe: self.probe.clone(),
        }
    }
}

/// A register cell that reports every operation to a [`Probe`] before
/// delegating to the wrapped cell.
pub struct InstrumentedCell<R> {
    inner: R,
    probe: Probe,
}

impl<T, R: Register<T>> Register<T> for InstrumentedCell<R> {
    fn read(&self, reader: ProcessId) -> T {
        self.probe.observe(reader, OpKind::Read);
        self.inner.read(reader)
    }

    fn write(&self, writer: ProcessId, value: T) {
        self.probe.observe(writer, OpKind::Write);
        self.inner.write(writer, value)
    }

    fn read_with<U>(&self, reader: ProcessId, f: impl FnOnce(&T) -> U) -> U {
        // Exactly one observed step per logical read, same as `read`, so
        // the clone-free path is indistinguishable to gates and counters.
        self.probe.observe(reader, OpKind::Read);
        self.inner.read_with(reader, f)
    }

    fn version_hint(&self) -> Option<u64> {
        // Under a gate, deliberately no hint even when the inner cell
        // keeps versions: a version probe would let callers skip reads
        // *without parking at the gate*, hiding steps from the
        // deterministic scheduler and changing the operation counts the
        // simulator tests assert on. Counting-only and tracing-only
        // instrumentation forwards the hint — probes are not register
        // operations (no reader identity, nothing to count), and hiding
        // them would make the instrumented backend behave unlike the
        // production one it is supposed to measure (no incremental
        // collect, no version-filtered subset collect).
        if self.probe.gate.is_some() {
            None
        } else {
            self.inner.version_hint()
        }
    }
}

impl<R: fmt::Debug> fmt::Debug for InstrumentedCell<R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InstrumentedCell")
            .field("inner", &self.inner)
            .field("probe", &self.probe)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EpochBackend;

    #[test]
    fn counters_see_every_cell_of_the_backend() {
        let counters = Arc::new(OpCounters::new(2));
        let backend = Instrumented::new(EpochBackend::new()).with_counters(Arc::clone(&counters));
        let a = backend.cell(0u32);
        let b = backend.cell(0u32);
        let bit = backend.bit(false);
        let p0 = ProcessId::new(0);
        let p1 = ProcessId::new(1);

        a.read(p0);
        b.read(p0);
        bit.write(p1, true);

        assert_eq!(counters.snapshot(p0).reads, 2);
        assert_eq!(counters.snapshot(p1).writes, 1);
    }

    #[test]
    fn gate_is_invoked_before_each_operation() {
        use std::sync::atomic::{AtomicU64, Ordering};

        #[derive(Debug, Default)]
        struct CountingGate(AtomicU64);
        impl StepGate for CountingGate {
            fn step(&self, _pid: ProcessId, _op: OpKind) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let gate = Arc::new(CountingGate::default());
        let backend = Instrumented::new(EpochBackend::new())
            .with_gate(Arc::clone(&gate) as Arc<dyn StepGate>);
        let cell = backend.cell(0u8);
        let p = ProcessId::new(0);
        cell.write(p, 1);
        cell.read(p);
        cell.read(p);
        assert_eq!(gate.0.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn read_with_is_one_observed_step_and_versions_follow_the_gate() {
        let counters = Arc::new(OpCounters::new(1));
        let backend = Instrumented::new(EpochBackend::new()).with_counters(Arc::clone(&counters));
        let cell = backend.cell(5u32);
        let p = ProcessId::new(0);
        assert_eq!(cell.read_with(p, |v| v + 1), 6);
        assert_eq!(counters.snapshot(p).reads, 1);
        // Counting-only instrumentation forwards the inner EpochCell's
        // versions (probes are not counted operations), and the hint
        // keeps the inner contract: it moves with every write.
        let before = cell.version_hint().expect("counting must not hide versions");
        cell.write(p, 9);
        let after = cell.version_hint().expect("still forwarded after a write");
        assert_ne!(before, after, "the forwarded hint must move with writes");

        // Under a gate the hint disappears: a probe-based shortcut would
        // let callers skip reads without parking at the gate.
        let gated = Instrumented::new(EpochBackend::new())
            .with_gate(Arc::new(crate::NullGate) as Arc<dyn StepGate>);
        assert_eq!(gated.cell(5u32).version_hint(), None);
    }

    #[test]
    fn trace_sees_each_operation_with_the_right_kind() {
        use snapshot_obs::RingSink;

        let sink = Arc::new(RingSink::new(2, 16));
        let backend =
            Instrumented::new(EpochBackend::new()).with_trace(Trace::new(sink.clone()));
        let cell = backend.cell(0u8);
        let p1 = ProcessId::new(1);
        cell.write(p1, 7);
        cell.read(p1);

        let events = sink.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].pid, 1);
        assert_eq!(events[0].event, Event::RegisterWrite);
        assert_eq!(events[1].event, Event::RegisterRead);
    }
}
