use std::cell::UnsafeCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{ProcessId, Register};

/// A sequence-lock register for `Copy` payloads, single-writer only.
///
/// The writer increments a version counter to an odd value, stores the
/// payload, then increments to the next even value. Readers retry while the
/// version is odd or changed across the payload read. Writes are wait-free;
/// reads are lock-free (a reader retries only while the single writer is
/// mid-write, which is a bounded window per write).
///
/// This register is **single-writer**: exactly the discipline of the
/// registers `r_i` in the paper's single-writer algorithms. Debug builds
/// assert that all writes come from the owner passed to [`SeqLockCell::new`].
///
/// The payload must be `Copy` because a reader copies the bytes while a
/// writer may be mid-update and only then validates the version; non-`Copy`
/// types could observe a torn intermediate state during `clone`.
///
/// # Example
///
/// ```
/// use snapshot_registers::{ProcessId, Register, SeqLockCell};
///
/// let owner = ProcessId::new(0);
/// let cell = SeqLockCell::new(owner, (0u32, 0u32));
/// cell.write(owner, (1, 2));
/// assert_eq!(cell.read(ProcessId::new(1)), (1, 2));
/// ```
pub struct SeqLockCell<T> {
    version: AtomicU64,
    payload: UnsafeCell<T>,
    owner: ProcessId,
}

// SAFETY: access to `payload` is mediated by the seqlock protocol; readers
// only trust data validated by an even, unchanged version, and the single
// writer is externally synchronized by the single-writer discipline.
unsafe impl<T: Copy + Send> Send for SeqLockCell<T> {}
unsafe impl<T: Copy + Send> Sync for SeqLockCell<T> {}

impl<T: Copy + Send> SeqLockCell<T> {
    /// Creates a register holding `init`, writable only by `owner`.
    pub fn new(owner: ProcessId, init: T) -> Self {
        SeqLockCell {
            version: AtomicU64::new(0),
            payload: UnsafeCell::new(init),
            owner,
        }
    }

    /// The process allowed to write this register.
    pub fn owner(&self) -> ProcessId {
        self.owner
    }
}

impl<T: Copy + Send> Register<T> for SeqLockCell<T> {
    // Memory-ordering audit: unlike BitCell/EpochCell (which need SeqCst
    // because the snapshot proofs order operations across *different*
    // registers), the seqlock protocol is a single-location validation
    // scheme — a read is trusted only if the version is even and
    // unchanged around the payload copy. Acquire/Release plus the fences
    // suffice for that local invariant. The cell is correspondingly NOT
    // offered as the default backend for the proof-carrying algorithms;
    // it is a benchmark baseline.
    fn read(&self, _reader: ProcessId) -> T {
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            // SAFETY: we re-validate the version after the copy; if the
            // writer raced us, `v2 != v1` and the torn copy is discarded.
            // `T: Copy` guarantees the torn copy has no drop glue and is
            // never observed.
            let value = unsafe { std::ptr::read_volatile(self.payload.get()) };
            std::sync::atomic::fence(Ordering::Acquire);
            let v2 = self.version.load(Ordering::Acquire);
            if v1 == v2 {
                return value;
            }
            std::hint::spin_loop();
        }
    }

    fn write(&self, writer: ProcessId, value: T) {
        debug_assert_eq!(
            writer, self.owner,
            "SeqLockCell is single-writer: {writer} attempted to write a register owned by {}",
            self.owner
        );
        let v = self.version.load(Ordering::Relaxed);
        self.version.store(v.wrapping_add(1), Ordering::Release);
        std::sync::atomic::fence(Ordering::Release);
        // SAFETY: single-writer discipline means no concurrent writer; the
        // odd version warns readers off trusting the bytes we are storing.
        unsafe { std::ptr::write_volatile(self.payload.get(), value) };
        self.version.store(v.wrapping_add(2), Ordering::Release);
    }
}

impl<T> fmt::Debug for SeqLockCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SeqLockCell")
            .field("owner", &self.owner)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    const P0: ProcessId = ProcessId::new(0);
    const P1: ProcessId = ProcessId::new(1);

    #[test]
    fn round_trip() {
        let cell = SeqLockCell::new(P0, 5i64);
        assert_eq!(cell.read(P1), 5);
        cell.write(P0, -9);
        assert_eq!(cell.read(P1), -9);
    }

    #[test]
    fn reader_never_sees_torn_pair() {
        let cell = Arc::new(SeqLockCell::new(P0, (0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut k = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    cell.write(P0, (k, k.wrapping_mul(31)));
                    k += 1;
                }
            })
        };
        for _ in 0..50_000 {
            let (a, b) = cell.read(P1);
            assert_eq!(b, a.wrapping_mul(31));
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "single-writer")]
    #[cfg(debug_assertions)]
    fn foreign_writer_is_rejected_in_debug() {
        let cell = SeqLockCell::new(P0, 0u8);
        cell.write(P1, 1);
    }
}
