use crate::{ProcessId, Register};

/// Reads every register in `regs`, in index order, on behalf of `reader`.
///
/// This is the paper's `collect` operation: a *non-atomic* read of the
/// whole register array, the building block of the double-collect scans in
/// Figures 2–4. A single collect gives no consistency guarantee — the whole
/// point of the snapshot constructions is to turn pairs of collects into an
/// atomic scan.
///
/// # Example
///
/// ```
/// use snapshot_registers::{collect, Backend, EpochBackend, ProcessId, Register};
///
/// let backend = EpochBackend::default();
/// let regs: Vec<_> = (0..3u32).map(|i| backend.cell(i)).collect();
/// regs[1].write(ProcessId::new(1), 10);
/// assert_eq!(collect(ProcessId::new(0), &regs), vec![0, 10, 2]);
/// ```
pub fn collect<T, R: Register<T>>(reader: ProcessId, regs: &[R]) -> Vec<T> {
    regs.iter().map(|r| r.read(reader)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, EpochBackend};

    #[test]
    fn collect_reads_in_index_order() {
        let backend = EpochBackend::new();
        let regs: Vec<_> = (0..5i32).map(|i| backend.cell(i * i)).collect();
        assert_eq!(collect(ProcessId::new(0), &regs), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn collect_of_empty_array_is_empty() {
        let regs: Vec<crate::EpochCell<u8>> = Vec::new();
        assert!(collect(ProcessId::new(0), &regs).is_empty());
    }
}
