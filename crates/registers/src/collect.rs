use crate::{ProcessId, Register};

/// Reads every register in `regs`, in index order, on behalf of `reader`.
///
/// This is the paper's `collect` operation: a *non-atomic* read of the
/// whole register array, the building block of the double-collect scans in
/// Figures 2–4. A single collect gives no consistency guarantee — the whole
/// point of the snapshot constructions is to turn pairs of collects into an
/// atomic scan.
///
/// # Example
///
/// ```
/// use snapshot_registers::{collect, Backend, EpochBackend, ProcessId, Register};
///
/// let backend = EpochBackend::default();
/// let regs: Vec<_> = (0..3u32).map(|i| backend.cell(i)).collect();
/// regs[1].write(ProcessId::new(1), 10);
/// assert_eq!(collect(ProcessId::new(0), &regs), vec![0, 10, 2]);
/// ```
pub fn collect<T, R: Register<T>>(reader: ProcessId, regs: &[R]) -> Vec<T> {
    regs.iter().map(|r| r.read(reader)).collect()
}

/// How [`TrackedCollect`] resolved one register slot during a pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOutcome {
    /// The register's [`Register::version_hint`] matched the one recorded
    /// with the cached record, so no write completed since the record was
    /// read — the cache is current and the register was not touched.
    ReusedByVersion,
    /// The register was read in place ([`Register::read_with`]) and the
    /// caller's key comparison said the stored record is the *same write*
    /// as the cached one, so the clone was skipped. The stored version is
    /// *not* refreshed: a key match does not carry the version contract's
    /// guarantee, so the slot will be re-validated by reading on the next
    /// pass (see the soundness discussion on [`TrackedCollect`]).
    ReusedByKey,
    /// The register was read and its record cloned into the cache.
    Cloned {
        /// Whether the caller's key comparison saw a *different* write
        /// than the cached record (always `true` on the priming pass).
        changed: bool,
    },
}

/// Summary of one full [`TrackedCollect::advance`] pass over the array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassSummary {
    /// Per-slot: did this pass observe a different write than the cache
    /// held before the pass? (Index = register index.)
    pub changed: Vec<bool>,
    /// How many slots were actually cloned (the `k` in the "n probes +
    /// k clones" steady-state cost).
    pub cloned: usize,
}

impl PassSummary {
    /// `true` when no slot changed — the collect equals the previous one.
    pub fn clean(&self) -> bool {
        self.changed.iter().all(|c| !c)
    }
}

/// An incremental collect: a cached copy of the register array that
/// re-reads (and re-clones) only the registers that moved.
///
/// The classical double collect clones all `n` composite records twice
/// per round even when nothing changed. `TrackedCollect` keeps the last
/// record seen per register together with the [`Register::version_hint`]
/// observed *just before* that record was read. A later pass first probes
/// the version: if it is unchanged, **no write completed in between**
/// (see the `version_hint` contract), so the cached record is still the
/// register's current content and the slot costs one atomic load — no
/// read, no clone. In the steady state a pass is `n` version probes plus
/// `k` clones, where `k` is the number of registers that actually moved.
///
/// When the version differs (or the register keeps no versions), the slot
/// is read in place via [`Register::read_with`] and the caller's `same`
/// closure compares algorithm-level keys — `seq` for the unbounded
/// construction, `(p[i], toggle)` for the bounded one, `(id, toggle)` for
/// the multi-writer one. The comparison decides the `changed` bit that
/// drives the algorithms' move-counting, exactly as comparing two full
/// collects did.
///
/// # Key reuse vs. version reuse — soundness (`trust_keys`)
///
/// The two reuse paths have *different* soundness windows, and the
/// `trust_keys` flag exists to keep them apart:
///
/// * A **version** match proves no write completed between the two
///   observations, full stop. It is sound in *any* window — across
///   rounds, across scans, across handshakes.
/// * A **key** match only proves the keys are equal. For the bounded
///   algorithms a key can recur: two completed updates can restore
///   `(p[i], toggle)` (an ABA), so outside a double collect a key match
///   may equate two different writes, and reusing the cached record there
///   could hand the scanner a stale value for one register combined with
///   fresher values for others — a cut the original algorithm can never
///   output. *Within* one scan's pass-`b`, however, the key comparison is
///   exactly the paper's own `moved` predicate (Lemma 4.1 / 5.1 exclude
///   the ABA there), so skipping the clone is safe. Callers therefore
///   pass `trust_keys = true` only on the second collect of a double
///   collect — except the unbounded construction, whose per-writer `seq`
///   is monotone (key-equal implies same write in every window), so it
///   may trust keys everywhere.
///
/// With `trust_keys = false` a key match still yields `changed = false`
/// (the move-counting semantics) but the record is re-cloned, so the
/// cache always holds what was actually read in that pass.
///
/// Because a key match proves less than a version match, a key-reuse
/// never *upgrades* into version-level trust: the slot keeps the version
/// recorded when its cached record was actually read, not the one probed
/// in the reusing pass. (The probed version certifies the register's
/// current record, which under a key ABA may differ from the cached one;
/// storing it would let every later pass `ReusedByVersion` a stale
/// record forever.) The cost is one extra in-place read the next time
/// the slot is visited; the cache self-corrects on the next untrusted
/// pass.
///
/// # Example
///
/// ```
/// use snapshot_registers::{Backend, EpochBackend, ProcessId, Register, TrackedCollect};
///
/// let backend = EpochBackend::default();
/// let regs: Vec<_> = (0..4u64).map(|i| backend.cell(i)).collect();
/// let p = ProcessId::new(0);
/// let mut tc = TrackedCollect::new();
/// let same = |a: &u64, b: &u64| a == b;
///
/// tc.advance(p, &regs, false, same); // priming pass: clones everything
/// let pass = tc.advance(p, &regs, false, same);
/// assert!(pass.clean());
/// assert_eq!(pass.cloned, 0); // steady state: version probes only
///
/// regs[2].write(ProcessId::new(2), 99);
/// let pass = tc.advance(p, &regs, false, same);
/// assert_eq!(pass.changed, vec![false, false, true, false]);
/// assert_eq!(tc.records()[2], 99);
/// ```
#[derive(Debug, Clone)]
pub struct TrackedCollect<T> {
    records: Vec<T>,
    versions: Vec<Option<u64>>,
}

impl<T: Clone> Default for TrackedCollect<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> TrackedCollect<T> {
    /// Creates an empty, unprimed cache.
    pub fn new() -> Self {
        TrackedCollect {
            records: Vec::new(),
            versions: Vec::new(),
        }
    }

    /// `true` once a priming pass has filled the cache.
    pub fn is_primed(&self) -> bool {
        !self.records.is_empty()
    }

    /// The cached records, one per register, in index order.
    pub fn records(&self) -> &[T] {
        &self.records
    }

    /// Drops the cache; the next pass will prime from scratch.
    pub fn invalidate(&mut self) {
        self.records.clear();
        self.versions.clear();
    }

    /// Advances the cache for register `j` alone.
    ///
    /// This exists so the bounded scan's handshake loop can interleave the
    /// cache refresh of `r_j` with its write of `q_{i,j}` *per register*,
    /// preserving the exact operation sequence (`read r_0`, `write q_0`,
    /// `read r_1`, …) that the deterministic-scheduler tests count on.
    /// On an unprimed cache, slots must be advanced in index order.
    ///
    /// `same(cached, current)` compares algorithm-level keys; see the
    /// type-level docs for what `trust_keys` licenses.
    pub fn advance_one<R: Register<T>>(
        &mut self,
        reader: ProcessId,
        regs: &[R],
        j: usize,
        trust_keys: bool,
        same: impl Fn(&T, &T) -> bool,
    ) -> SlotOutcome {
        // Observe the version BEFORE reading the record: an unchanged
        // probe later then certifies the record (contract: no write
        // completed between the two probes, and the read sits between).
        let hint = regs[j].version_hint();
        if j >= self.records.len() {
            // Priming: first visit of this slot.
            debug_assert_eq!(j, self.records.len(), "prime slots in index order");
            let rec = regs[j].read_with(reader, |cur| cur.clone());
            self.records.push(rec);
            self.versions.push(hint);
            return SlotOutcome::Cloned { changed: true };
        }
        if let (Some(h), Some(v)) = (hint, self.versions[j]) {
            if h == v {
                return SlotOutcome::ReusedByVersion;
            }
        }
        let prev = &self.records[j];
        let fresh = regs[j].read_with(reader, |cur| {
            let is_same = same(prev, cur);
            if trust_keys && is_same {
                None
            } else {
                Some((cur.clone(), !is_same))
            }
        });
        match fresh {
            None => {
                // Do NOT refresh `self.versions[j]` here. `hint` certifies
                // the record *currently stored* in the register (`cur`),
                // but the cache keeps `prev`, and a key match does not
                // prove `prev == cur`: the bounded algorithms' keys can
                // recur (three updates inside one double collect restore
                // `(p[i], toggle)` with a different value). Pairing `prev`
                // with `hint` would let every later pass take
                // `ReusedByVersion` on a stale record — a scan of a
                // then-quiescent object would return values older than
                // writes that completed before it began. Keeping the old
                // version (probed before `prev` was read) preserves the
                // pairing invariant, so the next pass sees the version
                // mismatch and re-validates the slot by reading.
                SlotOutcome::ReusedByKey
            }
            Some((rec, changed)) => {
                self.records[j] = rec;
                self.versions[j] = hint;
                SlotOutcome::Cloned { changed }
            }
        }
    }

    /// Advances the cache across the whole array — one incremental
    /// collect pass — and reports which slots moved.
    ///
    /// On an unprimed cache this is the priming pass: every slot is
    /// cloned and reported `changed` (callers discard the mask of a
    /// priming pass; the algorithms always run at least two passes).
    pub fn advance<R: Register<T>>(
        &mut self,
        reader: ProcessId,
        regs: &[R],
        trust_keys: bool,
        same: impl Fn(&T, &T) -> bool,
    ) -> PassSummary {
        let mut changed = Vec::with_capacity(regs.len());
        let mut cloned = 0;
        for j in 0..regs.len() {
            let outcome = self.advance_one(reader, regs, j, trust_keys, &same);
            changed.push(matches!(outcome, SlotOutcome::Cloned { changed: true }));
            if matches!(outcome, SlotOutcome::Cloned { .. }) {
                cloned += 1;
            }
        }
        PassSummary { changed, cloned }
    }
}

// ---------------------------------------------------------------------------
// Version-filtered subset collect
// ---------------------------------------------------------------------------

/// Outcome of a [`subset_collect`]: either a certified picture of the
/// requested slots, or a typed reason it could not be produced.
#[derive(Debug)]
pub enum SubsetOutcome<T> {
    /// Two adjacent probe passes agreed on every slot's version: each
    /// record in `records` was read inside a window bracketed by equal
    /// version probes, and all the windows overlap (they share the
    /// instant between the two passes), so the records form an
    /// instantaneous picture of the subset — see the soundness note on
    /// [`subset_collect`].
    Clean {
        /// One record per requested slot, in the caller's slot order.
        records: Vec<T>,
        /// Probe passes performed after the priming pass (≥ 1).
        rounds: u32,
        /// Physical register reads performed (probes are not reads).
        reads: u64,
    },
    /// Some slot's register keeps no version hints
    /// ([`Register::version_hint`] returned [`None`]), so the filter
    /// cannot certify anything. Reported before any record is read.
    Unsupported,
    /// The round budget ran out with some version still moving every
    /// pass. The caller falls back (e.g. to a full scan, which has its
    /// own termination argument) rather than spinning unboundedly.
    Contended {
        /// Probe passes performed after the priming pass.
        rounds: u32,
        /// Physical register reads performed before giving up.
        reads: u64,
    },
}

/// A bounded, version-filtered collect of a *subset* of registers: the
/// interference filter behind the O(touched)-cost partial snapshots.
///
/// The protocol is rounds of *probe-then-read* per slot. The priming
/// pass probes each slot's [`version_hint`] and reads its record; each
/// following pass re-probes every slot. When a whole pass finds every
/// probe equal to the previous pass's, the **previous** pass's records
/// are returned; otherwise the moved slots are re-read (probe first,
/// then read) and the next pass begins. After `max_rounds` re-probe
/// passes the call gives up with [`SubsetOutcome::Contended`].
///
/// # Soundness
///
/// The hint contract says equal probes prove no write *returned*
/// between them. Each returned record was read inside a window whose
/// endpoints are equal probes of its slot, and every window contains
/// the instant between the last two passes — so there is a common
/// instant `T` such that, for every slot, no write returned in a
/// window around `T` in which its record was read. A write that would
/// contradict the returned picture (one slot's record missing a write
/// that another slot's record can only follow) must have returned
/// inside some window, which would have bumped that slot's version and
/// dirtied the pass. Note what is **not** claimed: a still-in-flight
/// write may have swapped a slot's physical contents inside a window.
/// Such a write is concurrent with the whole collect and may be
/// linearized after it — callers whose updates linearize at the
/// register write (and who need nothing else from the round) get a
/// linearizable subset read; callers with handshake obligations to
/// writers outside the subset must not use this filter alone.
///
/// Quiescent cost: `k` reads plus `2k` probes for `k` slots — the
/// priming pass and one clean confirmation pass — independent of how
/// many registers the full object has.
///
/// [`version_hint`]: Register::version_hint
pub fn subset_collect<T: Clone, R: Register<T>>(
    reader: ProcessId,
    slots: &[R],
    max_rounds: u32,
) -> SubsetOutcome<T> {
    let k = slots.len();
    let mut versions = Vec::with_capacity(k);
    for slot in slots {
        match slot.version_hint() {
            Some(v) => versions.push(v),
            None => return SubsetOutcome::Unsupported,
        }
    }
    // Priming pass: every record is read *after* its version probe, so
    // each cache entry's window opens at its probe.
    let mut records: Vec<T> =
        slots.iter().map(|slot| slot.read_with(reader, |r| r.clone())).collect();
    let mut reads = k as u64;

    for round in 1..=max_rounds {
        let mut clean = true;
        let mut moved = vec![false; k];
        for (j, slot) in slots.iter().enumerate() {
            // A `None` here means the register changed its mind about
            // keeping hints (no in-tree register does); treat it as a
            // moved slot so we never certify through it.
            let probe = slot.version_hint();
            if probe != Some(versions[j]) {
                clean = false;
                moved[j] = true;
                if let Some(v) = probe {
                    versions[j] = v;
                } else {
                    return SubsetOutcome::Unsupported;
                }
            }
        }
        if clean {
            // Every record's window is bracketed by equal probes and
            // contains the instant before this pass: certified.
            return SubsetOutcome::Clean { records, rounds: round, reads };
        }
        for (j, slot) in slots.iter().enumerate() {
            if moved[j] {
                // Probe already taken above opens the fresh window.
                records[j] = slot.read_with(reader, |r| r.clone());
                reads += 1;
            }
        }
    }
    SubsetOutcome::Contended { rounds: max_rounds, reads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, EpochBackend, MutexBackend};

    const P0: ProcessId = ProcessId::new(0);

    #[test]
    fn collect_reads_in_index_order() {
        let backend = EpochBackend::new();
        let regs: Vec<_> = (0..5i32).map(|i| backend.cell(i * i)).collect();
        assert_eq!(collect(ProcessId::new(0), &regs), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn collect_of_empty_array_is_empty() {
        let regs: Vec<crate::EpochCell<u8>> = Vec::new();
        assert!(collect(ProcessId::new(0), &regs).is_empty());
    }

    #[test]
    fn steady_state_costs_zero_clones_with_versions() {
        let backend = EpochBackend::new();
        let regs: Vec<_> = (0..6u64).map(|i| backend.cell(i)).collect();
        let same = |a: &u64, b: &u64| a == b;
        let mut tc = TrackedCollect::new();
        let prime = tc.advance(P0, &regs, false, same);
        assert_eq!(prime.cloned, 6);
        assert!(tc.is_primed());
        for _ in 0..3 {
            let pass = tc.advance(P0, &regs, false, same);
            assert!(pass.clean());
            assert_eq!(pass.cloned, 0, "quiescent pass must be probe-only");
        }
        assert_eq!(tc.records(), collect(P0, &regs).as_slice());
    }

    #[test]
    fn a_single_write_costs_a_single_clone() {
        let backend = EpochBackend::new();
        let regs: Vec<_> = (0..4u64).map(|i| backend.cell(i)).collect();
        let same = |a: &u64, b: &u64| a == b;
        let mut tc = TrackedCollect::new();
        tc.advance(P0, &regs, false, same);
        regs[1].write(ProcessId::new(1), 77);
        let pass = tc.advance(P0, &regs, false, same);
        assert_eq!(pass.changed, vec![false, true, false, false]);
        assert_eq!(pass.cloned, 1);
        assert_eq!(tc.records(), collect(P0, &regs).as_slice());
    }

    #[test]
    fn version_reuse_detects_same_payload_rewrites() {
        // Rewriting the same payload is still a write; the algorithms'
        // toggle bits exist to distinguish it. The key comparison alone
        // would call it unchanged — correct for move-counting — but the
        // version probe must NOT claim the register was untouched.
        let backend = EpochBackend::new();
        let regs: Vec<_> = (0..2u64).map(|i| backend.cell(i)).collect();
        let same = |a: &u64, b: &u64| a == b;
        let mut tc = TrackedCollect::new();
        tc.advance(P0, &regs, false, same);
        regs[0].write(P0, 0); // same payload, new write
        let pass = tc.advance(P0, &regs, false, same);
        assert!(pass.clean(), "key comparison says unmoved");
        assert_eq!(pass.cloned, 1, "but the slot had to be re-read");
    }

    #[test]
    fn without_versions_untrusted_keys_clone_everything() {
        let backend = MutexBackend::new();
        let regs: Vec<_> = (0..3u64).map(|i| backend.cell(i)).collect();
        let same = |a: &u64, b: &u64| a == b;
        let mut tc = TrackedCollect::new();
        tc.advance(P0, &regs, false, same);
        let pass = tc.advance(P0, &regs, false, same);
        assert!(pass.clean());
        assert_eq!(pass.cloned, 3, "no versions + no key trust = full clone");
    }

    #[test]
    fn without_versions_trusted_keys_skip_clones() {
        let backend = MutexBackend::new();
        let regs: Vec<_> = (0..3u64).map(|i| backend.cell(i)).collect();
        let same = |a: &u64, b: &u64| a == b;
        let mut tc = TrackedCollect::new();
        tc.advance(P0, &regs, true, same);
        let pass = tc.advance(P0, &regs, true, same);
        assert!(pass.clean());
        assert_eq!(pass.cloned, 0, "key-equal slots reuse the cache");
        regs[2].write(ProcessId::new(2), 9);
        let pass = tc.advance(P0, &regs, true, same);
        assert_eq!(pass.changed, vec![false, false, true]);
        assert_eq!(tc.records(), collect(P0, &regs).as_slice());
    }

    #[test]
    fn key_reuse_does_not_certify_stale_records() {
        // Composite records whose key (.0) can recur with a different
        // payload (.1) — the bounded algorithms' key ABA. A trusted key
        // match legitimately skips the clone (the cache is stale *by
        // design* within that pass), but it must NOT pair the stale
        // cached record with the freshly probed version: that would make
        // every later pass `ReusedByVersion` on the stale record, even
        // once memory is quiescent.
        let backend = EpochBackend::new();
        let regs = vec![backend.cell((0u8, 0u64))];
        let same = |a: &(u8, u64), b: &(u8, u64)| a.0 == b.0;
        let mut tc = TrackedCollect::new();
        tc.advance(P0, &regs, false, same); // cache holds (0, 0)

        // Two completed writes restore key 0 with a different payload.
        regs[0].write(P0, (1, 10));
        regs[0].write(P0, (0, 20));

        // Trusted pass: key matches, clone skipped, cache keeps (0, 0).
        let out = tc.advance_one(P0, &regs, 0, true, same);
        assert_eq!(out, SlotOutcome::ReusedByKey);
        assert_eq!(tc.records()[0], (0u8, 0u64));

        // No further writes: the slot's version must still mismatch, so
        // the next pass re-reads and repairs the cache instead of
        // certifying the stale record.
        let pass = tc.advance(P0, &regs, false, same);
        assert_eq!(pass.cloned, 1, "stale slot must be re-validated by reading");
        assert_eq!(tc.records(), collect(P0, &regs).as_slice());
        assert_eq!(tc.records()[0], (0u8, 20u64));

        // Only now — cache repaired and version correctly paired — may
        // the quiescent slot be served by version probes alone.
        let pass = tc.advance(P0, &regs, false, same);
        assert_eq!(pass.cloned, 0);
        assert_eq!(tc.records()[0], (0u8, 20u64));
    }

    #[test]
    fn advance_one_primes_in_index_order() {
        let backend = EpochBackend::new();
        let regs: Vec<_> = (0..3u64).map(|i| backend.cell(i)).collect();
        let same = |a: &u64, b: &u64| a == b;
        let mut tc = TrackedCollect::new();
        for j in 0..regs.len() {
            let out = tc.advance_one(P0, &regs, j, false, same);
            assert_eq!(out, SlotOutcome::Cloned { changed: true });
        }
        assert_eq!(tc.records(), &[0, 1, 2]);
        assert_eq!(tc.advance_one(P0, &regs, 1, false, same), SlotOutcome::ReusedByVersion);
    }

    #[test]
    fn invalidate_forces_a_fresh_prime() {
        let backend = EpochBackend::new();
        let regs: Vec<_> = (0..2u64).map(|i| backend.cell(i)).collect();
        let same = |a: &u64, b: &u64| a == b;
        let mut tc = TrackedCollect::new();
        tc.advance(P0, &regs, false, same);
        tc.invalidate();
        assert!(!tc.is_primed());
        let pass = tc.advance(P0, &regs, false, same);
        assert_eq!(pass.cloned, 2);
    }

    // -----------------------------------------------------------------------
    // subset_collect
    // -----------------------------------------------------------------------

    #[test]
    fn quiescent_subset_collect_costs_k_reads() {
        let backend = EpochBackend::new();
        let regs: Vec<_> = (0..64u64).map(|i| backend.cell(i * 10)).collect();
        let slots = [&regs[3], &regs[41]];
        match subset_collect(P0, &slots, 4) {
            SubsetOutcome::Clean { records, rounds, reads } => {
                assert_eq!(records, vec![30, 410]);
                assert_eq!(rounds, 1, "one confirmation pass suffices when quiet");
                assert_eq!(reads, 2, "the priming pass reads each slot once");
            }
            other => panic!("quiescent collect must certify: {other:?}"),
        }
    }

    #[test]
    fn hintless_registers_are_reported_unsupported_before_any_read() {
        let backend = MutexBackend::new();
        let regs: Vec<_> = (0..4u64).map(|i| backend.cell(i)).collect();
        let slots = [&regs[0], &regs[2]];
        assert!(matches!(subset_collect(P0, &slots, 4), SubsetOutcome::Unsupported));
    }

    #[test]
    fn a_write_between_passes_forces_a_reread_then_certifies() {
        let backend = EpochBackend::new();
        let regs: Vec<_> = (0..8u64).map(|i| backend.cell(i)).collect();
        // Dirty the slot between the priming read and the first probe
        // pass cannot be staged from one thread, but a write *before*
        // priming and another after a full collect round-trips the same
        // machinery: run once, write, run again — the second run must see
        // the new value with the same O(k) cost.
        regs[5].write(ProcessId::new(1), 55);
        match subset_collect(P0, &[&regs[5], &regs[7]], 4) {
            SubsetOutcome::Clean { records, reads, .. } => {
                assert_eq!(records, vec![55, 7]);
                assert_eq!(reads, 2);
            }
            other => panic!("collect after a completed write must certify: {other:?}"),
        }
    }

    #[test]
    fn contended_slot_exhausts_the_round_budget() {
        // A register whose version moves on every probe: the filter must
        // give up with `Contended` after exactly `max_rounds` passes, not
        // spin or certify.
        struct Restless(std::sync::atomic::AtomicU64);
        impl Register<u64> for Restless {
            fn read(&self, _reader: ProcessId) -> u64 {
                0
            }
            fn write(&self, _writer: ProcessId, _value: u64) {}
            fn version_hint(&self) -> Option<u64> {
                Some(self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed))
            }
        }
        let slots = [Restless(std::sync::atomic::AtomicU64::new(0))];
        match subset_collect(P0, &slots, 3) {
            SubsetOutcome::Contended { rounds, reads } => {
                assert_eq!(rounds, 3);
                // Priming read + one re-read per dirty pass (the last
                // pass's mismatch still re-reads before giving up).
                assert_eq!(reads, 4);
            }
            other => panic!("a restless version must exhaust the budget: {other:?}"),
        }
    }
}
