use std::fmt;

use parking_lot::Mutex;

use crate::{ProcessId, Register, TryRegister};

/// A blocking register baseline: the value behind a [`parking_lot::Mutex`].
///
/// Linearizable but *not* wait-free in the strict sense (a reader can be
/// delayed by a writer holding the lock). It exists as a benchmark baseline
/// and as a sanity cross-check for the lock-free [`EpochCell`]: every test
/// and experiment in the workspace can be re-run over this backend.
///
/// [`EpochCell`]: crate::EpochCell
///
/// # Example
///
/// ```
/// use snapshot_registers::{MutexCell, ProcessId, Register};
///
/// let cell = MutexCell::new(1u8);
/// cell.write(ProcessId::new(0), 2);
/// assert_eq!(cell.read(ProcessId::new(1)), 2);
/// ```
pub struct MutexCell<T> {
    slot: Mutex<T>,
}

impl<T: Clone + Send> MutexCell<T> {
    /// Creates a register holding `init`.
    pub fn new(init: T) -> Self {
        MutexCell {
            slot: Mutex::new(init),
        }
    }
}

impl<T: Clone + Send> Register<T> for MutexCell<T> {
    fn read(&self, _reader: ProcessId) -> T {
        self.slot.lock().clone()
    }

    fn write(&self, _writer: ProcessId, value: T) {
        *self.slot.lock() = value;
    }

    fn read_with<U>(&self, _reader: ProcessId, f: impl FnOnce(&T) -> U) -> U {
        // Borrow under the lock instead of cloning out; `f` must stay
        // short (see the trait docs) since it runs with the lock held.
        f(&self.slot.lock())
    }
}

impl<T: Clone + Send> TryRegister<T> for MutexCell<T> {
    type Error = std::convert::Infallible;

    fn try_read(&self, reader: ProcessId) -> Result<T, Self::Error> {
        Ok(self.read(reader))
    }

    fn try_write(&self, writer: ProcessId, value: T) -> Result<(), Self::Error> {
        self.write(writer, value);
        Ok(())
    }
}

impl<T> fmt::Debug for MutexCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutexCell").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let cell = MutexCell::new(vec![0u8]);
        cell.write(ProcessId::new(0), vec![1, 2]);
        assert_eq!(cell.read(ProcessId::new(1)), vec![1, 2]);
    }

    #[test]
    fn concurrent_writers_do_not_tear() {
        let cell = MutexCell::new((0u64, 0u64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cell = &cell;
                s.spawn(move || {
                    for i in 0..500 {
                        let v = t * 500 + i;
                        cell.write(ProcessId::new(t as usize), (v, v * 7));
                    }
                });
            }
            let cell = &cell;
            s.spawn(move || {
                for _ in 0..2_000 {
                    let (a, b) = cell.read(ProcessId::new(4));
                    assert_eq!(b, a * 7);
                }
            });
        });
    }
}
