use std::fmt;

/// Identity of one of the `n` processes sharing a snapshot object.
///
/// Process ids are dense indices `0..n`; the paper writes them `P_1 .. P_n`.
/// The id doubles as the index of the process's own segment in a
/// single-writer snapshot memory.
///
/// # Example
///
/// ```
/// use snapshot_registers::ProcessId;
///
/// let p = ProcessId::new(3);
/// assert_eq!(p.get(), 3);
/// assert_eq!(p.to_string(), "P3");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process id from its dense index.
    pub const fn new(index: usize) -> Self {
        ProcessId(index)
    }

    /// Returns the dense index of this process.
    pub const fn get(self) -> usize {
        self.0
    }

    /// Iterates over all process ids `0..n`.
    ///
    /// ```
    /// use snapshot_registers::ProcessId;
    /// let ids: Vec<_> = ProcessId::all(3).map(|p| p.get()).collect();
    /// assert_eq!(ids, [0, 1, 2]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> + Clone {
        (0..n).map(ProcessId)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

impl From<ProcessId> for usize {
    fn from(pid: ProcessId) -> Self {
        pid.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}
