use std::fmt;
use std::ops::{Deref, DerefMut};

use crate::{ProcessId, Register};

/// Pads and aligns a value to 128 bytes so that neighbouring values never
/// share a cache line.
///
/// The snapshot constructions keep one register per process in a dense
/// array (`Box<[Cell]>`), and every process hammers its own slot on every
/// update while scanners sweep all of them. Without padding, two
/// processes' registers can land on the same cache line and every write
/// invalidates the neighbour's line — *false sharing*, a pure
/// constant-factor tax the paper's `O(n²)` step bounds know nothing
/// about. The alignment is 128 (not 64) because adjacent-line hardware
/// prefetchers on x86 pull cache lines in pairs, and several ARM cores
/// use 128-byte lines outright.
///
/// `CachePadded<R>` is transparent: it derefs to the inner value and
/// forwards the [`Register`] interface (including the clone-free
/// [`Register::read_with`] path and [`Register::version_hint`]), so a
/// padded cell array drops into any code that held a plain one.
///
/// # Example
///
/// ```
/// use snapshot_registers::CachePadded;
///
/// let padded = CachePadded::new(7u64);
/// assert_eq!(*padded, 7);
/// assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
/// assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

// The padding claim the counters rely on, checked at compile time: even a
// bare 8-byte atomic occupies a full aligned block once padded, so two
// padded slots can never share a line.
const _: () = assert!(std::mem::size_of::<CachePadded<std::sync::atomic::AtomicU64>>() >= 128);
const _: () = assert!(std::mem::align_of::<CachePadded<std::sync::atomic::AtomicU64>>() == 128);

impl<T> CachePadded<T> {
    /// Pads `value` to its own cache-line block.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consumes the padding, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T, R: Register<T>> Register<T> for CachePadded<R> {
    fn read(&self, reader: ProcessId) -> T {
        self.value.read(reader)
    }

    fn write(&self, writer: ProcessId, value: T) {
        self.value.write(writer, value)
    }

    fn read_with<U>(&self, reader: ProcessId, f: impl FnOnce(&T) -> U) -> U {
        self.value.read_with(reader, f)
    }

    fn version_hint(&self) -> Option<u64> {
        self.value.version_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EpochCell;
    use std::mem::{align_of, size_of};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn padded_atomics_do_not_share_cache_lines() {
        assert!(size_of::<CachePadded<AtomicU64>>() >= 128);
        assert_eq!(align_of::<CachePadded<AtomicU64>>(), 128);
        // Array layout: consecutive elements are a full block apart.
        let arr = [CachePadded::new(0u8), CachePadded::new(0u8)];
        let a = &arr[0] as *const _ as usize;
        let b = &arr[1] as *const _ as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn register_interface_passes_through() {
        let p = ProcessId::new(0);
        let cell = CachePadded::new(EpochCell::new(3u32));
        assert_eq!(cell.read(p), 3);
        cell.write(p, 4);
        assert_eq!(cell.read_with(p, |v| *v + 1), 5);
        // The version hint of the inner cell is visible through the pad.
        let v0 = cell.version_hint().expect("EpochCell has versions");
        cell.write(p, 5);
        assert_ne!(cell.version_hint(), Some(v0));
    }

    #[test]
    fn deref_reaches_the_inner_value() {
        let mut padded = CachePadded::new(vec![1, 2]);
        padded.push(3);
        assert_eq!(padded.into_inner(), vec![1, 2, 3]);
    }
}
