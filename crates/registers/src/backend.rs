use std::fmt;

use crate::{BitCell, EpochCell, MutexCell, Register};

/// Values that may be stored in a register cell.
///
/// This is a blanket alias — every `Clone + Send + Sync + 'static` type
/// qualifies. Snapshot records keep their wide fields behind `Arc`, so
/// cloning on read stays cheap.
pub trait RegisterValue: Clone + Send + Sync + 'static {}

impl<T: Clone + Send + Sync + 'static> RegisterValue for T {}

/// A factory for atomic register cells.
///
/// The snapshot algorithms are generic over a `Backend`, so the *same*
/// algorithm code runs over the lock-free [`EpochCell`], the blocking
/// [`MutexCell`] baseline, an instrumented/step-counted wrapper
/// ([`Instrumented`]), the scheduler-gated deterministic simulator, or the
/// multi-writer-from-single-writer compound construction
/// ([`CompoundBackend`]).
///
/// [`Instrumented`]: crate::Instrumented
/// [`CompoundBackend`]: crate::CompoundBackend
///
/// # Example
///
/// ```
/// use snapshot_registers::{Backend, EpochBackend, ProcessId, Register};
///
/// fn fill<B: Backend>(backend: &B) -> Vec<B::Cell<u32>> {
///     (0..4).map(|i| backend.cell(i)).collect()
/// }
///
/// let cells = fill(&EpochBackend::default());
/// assert_eq!(cells[2].read(ProcessId::new(0)), 2);
/// ```
pub trait Backend: Send + Sync + 'static {
    /// The register cell type produced for values of type `T`.
    type Cell<T: RegisterValue>: Register<T>;

    /// The register type used for one-bit handshake registers.
    type Bit: Register<bool>;

    /// Creates a register cell holding `init`.
    fn cell<T: RegisterValue>(&self, init: T) -> Self::Cell<T>;

    /// Creates a one-bit register holding `init`.
    fn bit(&self, init: bool) -> Self::Bit;
}

/// The default backend: lock-free [`EpochCell`] registers and hardware
/// [`BitCell`] handshake bits.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochBackend;

impl EpochBackend {
    /// Creates the default backend.
    pub fn new() -> Self {
        EpochBackend
    }
}

impl Backend for EpochBackend {
    type Cell<T: RegisterValue> = EpochCell<T>;
    type Bit = BitCell;

    fn cell<T: RegisterValue>(&self, init: T) -> EpochCell<T> {
        EpochCell::new(init)
    }

    fn bit(&self, init: bool) -> BitCell {
        BitCell::new(init)
    }
}

/// A blocking baseline backend: every register is a [`MutexCell`].
#[derive(Clone, Copy, Default)]
pub struct MutexBackend;

impl MutexBackend {
    /// Creates the mutex baseline backend.
    pub fn new() -> Self {
        MutexBackend
    }
}

impl Backend for MutexBackend {
    type Cell<T: RegisterValue> = MutexCell<T>;
    type Bit = BitCell;

    fn cell<T: RegisterValue>(&self, init: T) -> MutexCell<T> {
        MutexCell::new(init)
    }

    fn bit(&self, init: bool) -> BitCell {
        BitCell::new(init)
    }
}

impl fmt::Debug for MutexBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MutexBackend")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessId;

    fn exercise<B: Backend>(backend: &B) {
        let p = ProcessId::new(0);
        let cell = backend.cell(10u64);
        assert_eq!(cell.read(p), 10);
        cell.write(p, 20);
        assert_eq!(cell.read(p), 20);

        let bit = backend.bit(true);
        assert!(bit.read(p));
        bit.write(p, false);
        assert!(!bit.read(p));
    }

    #[test]
    fn epoch_backend_round_trips() {
        exercise(&EpochBackend::new());
    }

    #[test]
    fn mutex_backend_round_trips() {
        exercise(&MutexBackend::new());
    }
}
