use std::fmt;
use std::sync::Arc;

use crate::{Backend, CachePadded, ProcessId, Register, RegisterValue};

/// A value stamped with a totally-ordered `(seq, pid)` tag.
///
/// Tags order the writes of the [`MwmrFromSwmr`] construction: larger
/// sequence number wins, ties broken by writer id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tagged<V> {
    /// Unbounded sequence number (the construction's whole point of
    /// divergence from the bounded constructions of \[PB87\]/\[LTV89\] — see
    /// DESIGN.md's substitution table).
    pub seq: u64,
    /// The process whose write produced this tag.
    pub pid: usize,
    /// The stored value.
    pub value: V,
}

impl<V> Tagged<V> {
    fn tag(&self) -> (u64, usize) {
        (self.seq, self.pid)
    }
}

/// An n-writer, n-reader atomic register built from `n` single-writer
/// multi-reader registers.
///
/// This is the classic unbounded-timestamp construction (in the style of
/// Vitányi–Awerbuch): each process owns one single-writer register holding
/// a [`Tagged`] value.
///
/// * **write(v)** — collect all `n` tags, pick `seq` one larger than the
///   maximum seen, write `(seq, self, v)` to the own register:
///   `n` reads + 1 write.
/// * **read()** — collect all `n` tagged values, take the maximum tag,
///   *write it back* to the own register (so later readers cannot observe
///   an older maximum: the standard fix for new/old inversion), return the
///   value: `n` reads + 1 write.
///
/// Both operations cost `Θ(n)` single-writer register operations, which is
/// the per-operation factor Section 6 of the paper uses when it credits the
/// multi-writer snapshot with `O(n³)` single-writer operations end-to-end.
/// The experiment `E4` counts exactly these operations through an
/// instrumented inner backend.
///
/// # Example
///
/// ```
/// use snapshot_registers::{EpochBackend, MwmrFromSwmr, ProcessId, Register};
///
/// let reg = MwmrFromSwmr::new(&EpochBackend::default(), 3, 0u64);
/// reg.write(ProcessId::new(2), 42);
/// assert_eq!(reg.read(ProcessId::new(0)), 42);
/// reg.write(ProcessId::new(0), 7);
/// assert_eq!(reg.read(ProcessId::new(1)), 7);
/// ```
pub struct MwmrFromSwmr<V: RegisterValue, B: Backend> {
    // One single-writer cell per process, each written only by its owner:
    // the canonical false-sharing layout, hence the padding.
    cells: Box<[CachePadded<B::Cell<Tagged<V>>>]>,
}

impl<V: RegisterValue, B: Backend> MwmrFromSwmr<V, B> {
    /// Builds the register for `n` processes over single-writer cells from
    /// `backend`, holding `init`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(backend: &B, n: usize, init: V) -> Self {
        assert!(n > 0, "a multi-writer register needs at least one process");
        MwmrFromSwmr {
            cells: (0..n)
                .map(|pid| {
                    CachePadded::new(backend.cell(Tagged {
                        seq: 0,
                        pid,
                        value: init.clone(),
                    }))
                })
                .collect(),
        }
    }

    /// Number of embedded single-writer registers (= processes).
    pub fn width(&self) -> usize {
        self.cells.len()
    }

    fn max_tagged(&self, reader: ProcessId) -> Tagged<V> {
        self.cells
            .iter()
            .map(|c| c.read(reader))
            .max_by_key(Tagged::tag)
            .expect("width > 0 by construction")
    }
}

impl<V: RegisterValue, B: Backend> Register<V> for MwmrFromSwmr<V, B> {
    /// # Panics
    ///
    /// Panics if `reader.get() >= n`.
    fn read(&self, reader: ProcessId) -> V {
        let best = self.max_tagged(reader);
        // Write-back: publish the maximum we observed so that a read
        // starting after we return can never see an older maximum
        // (new/old-inversion freedom, required for atomicity).
        self.cells[reader.get()].write(reader, best.clone());
        best.value
    }

    /// # Panics
    ///
    /// Panics if `writer.get() >= n`.
    fn write(&self, writer: ProcessId, value: V) {
        let max_seq = self
            .cells
            .iter()
            .map(|c| c.read(writer).seq)
            .max()
            .expect("width > 0 by construction");
        self.cells[writer.get()].write(
            writer,
            Tagged {
                seq: max_seq + 1,
                pid: writer.get(),
                value,
            },
        );
    }
}

impl<V: RegisterValue, B: Backend> fmt::Debug for MwmrFromSwmr<V, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MwmrFromSwmr")
            .field("width", &self.cells.len())
            .finish()
    }
}

/// A [`Backend`] whose every cell is a full [`MwmrFromSwmr`] register over
/// an inner backend's single-writer cells.
///
/// Plugging this into the multi-writer snapshot algorithm yields the
/// *compound construction* of Section 6: multi-writer snapshot → multi-writer
/// registers → single-writer registers, with `O(n³)` single-writer
/// operations per snapshot operation. Handshake bits and view registers are
/// single-writer in the algorithm, so [`Backend::bit`] delegates directly to
/// the inner backend.
#[derive(Debug)]
pub struct CompoundBackend<B> {
    n: usize,
    inner: Arc<B>,
}

impl<B: Backend> CompoundBackend<B> {
    /// Creates a compound backend for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, inner: B) -> Self {
        assert!(n > 0, "a compound backend needs at least one process");
        CompoundBackend {
            n,
            inner: Arc::new(inner),
        }
    }

    /// The inner (single-writer) backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: Backend> Backend for CompoundBackend<B> {
    type Cell<T: RegisterValue> = MwmrFromSwmr<T, B>;
    type Bit = B::Bit;

    fn cell<T: RegisterValue>(&self, init: T) -> Self::Cell<T> {
        MwmrFromSwmr::new(&*self.inner, self.n, init)
    }

    fn bit(&self, init: bool) -> Self::Bit {
        self.inner.bit(init)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EpochBackend, Instrumented, OpCounters};

    #[test]
    fn initial_value_is_returned() {
        let reg = MwmrFromSwmr::new(&EpochBackend::new(), 4, 99u32);
        for p in ProcessId::all(4) {
            assert_eq!(reg.read(p), 99);
        }
    }

    #[test]
    fn later_writes_supersede_earlier_ones() {
        let reg = MwmrFromSwmr::new(&EpochBackend::new(), 3, 0u32);
        reg.write(ProcessId::new(0), 1);
        reg.write(ProcessId::new(1), 2);
        reg.write(ProcessId::new(2), 3);
        assert_eq!(reg.read(ProcessId::new(0)), 3);
    }

    #[test]
    fn reads_are_monotone_per_reader_after_write_back() {
        let reg = MwmrFromSwmr::new(&EpochBackend::new(), 2, 0u32);
        reg.write(ProcessId::new(1), 5);
        assert_eq!(reg.read(ProcessId::new(0)), 5);
        // The write-back means P0's own cell now carries the tag of P1's
        // write; a subsequent write by P0 must dominate it.
        reg.write(ProcessId::new(0), 6);
        assert_eq!(reg.read(ProcessId::new(1)), 6);
    }

    #[test]
    fn operation_cost_is_linear_in_n() {
        for n in [2usize, 4, 8] {
            let counters = Arc::new(OpCounters::new(n));
            let backend =
                Instrumented::new(EpochBackend::new()).with_counters(Arc::clone(&counters));
            let reg = MwmrFromSwmr::new(&backend, n, 0u8);
            let p = ProcessId::new(0);

            let before = counters.snapshot(p);
            reg.write(p, 1);
            let write_cost = counters.snapshot(p) - before;
            assert_eq!(write_cost.reads, n as u64);
            assert_eq!(write_cost.writes, 1);

            let before = counters.snapshot(p);
            reg.read(p);
            let read_cost = counters.snapshot(p) - before;
            assert_eq!(read_cost.reads, n as u64);
            assert_eq!(read_cost.writes, 1);
        }
    }

    #[test]
    fn no_stale_read_under_concurrency() {
        // After a writer finishes writing k, any read that *starts* later
        // must return >= k (tags grow).
        let reg = Arc::new(MwmrFromSwmr::new(&EpochBackend::new(), 4, 0u64));
        std::thread::scope(|s| {
            for t in 0..2 {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    let p = ProcessId::new(t);
                    for k in 0..500u64 {
                        reg.write(p, k);
                    }
                });
            }
            for t in 2..4 {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    let p = ProcessId::new(t);
                    let mut last = 0u64;
                    for _ in 0..500 {
                        let v = reg.read(p);
                        // Values from one writer are increasing; across two
                        // writers monotonicity of *tags* implies the value
                        // can regress only between writers, never below a
                        // value this reader already observed from the same
                        // writer sequence. Weak sanity check: no panic and
                        // values stay in range.
                        assert!(v < 500);
                        last = last.max(v);
                    }
                    assert!(last < 500);
                });
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_is_rejected() {
        let _ = MwmrFromSwmr::new(&EpochBackend::new(), 0, 0u8);
    }
}
