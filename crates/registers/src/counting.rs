use std::fmt;
use std::ops::{Add, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{CachePadded, ProcessId};

/// The kind of a primitive register operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A register read.
    Read,
    /// A register write.
    Write,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => f.write_str("read"),
            OpKind::Write => f.write_str("write"),
        }
    }
}

/// Per-process counters of primitive register operations.
///
/// The paper's complexity claims (Lemmas 3.4, 4.4 and the Section 6
/// comparison) are stated in *reads and writes to the component shared
/// registers*. Wrapping any [`Backend`] in [`Instrumented`] with an
/// `OpCounters` makes those counts observable, so the experiments measure
/// exactly the quantity the paper bounds.
///
/// [`Backend`]: crate::Backend
/// [`Instrumented`]: crate::Instrumented
///
/// # Example
///
/// ```
/// use snapshot_registers::{OpCounters, OpKind, ProcessId};
///
/// let counters = OpCounters::new(2);
/// counters.record(ProcessId::new(0), OpKind::Read);
/// counters.record(ProcessId::new(0), OpKind::Write);
/// let snap = counters.snapshot(ProcessId::new(0));
/// assert_eq!((snap.reads, snap.writes), (1, 1));
/// ```
pub struct OpCounters {
    // Each process increments its own slot on every register operation of
    // every instrumented cell — the hottest write traffic in a counted
    // run. Padding keeps neighbouring processes' counters off each
    // other's cache lines (see `CachePadded`).
    reads: Box<[CachePadded<AtomicU64>]>,
    writes: Box<[CachePadded<AtomicU64>]>,
}

impl OpCounters {
    /// Creates zeroed counters for `n` processes.
    pub fn new(n: usize) -> Self {
        OpCounters {
            reads: (0..n).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            writes: (0..n).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
        }
    }

    /// Number of processes tracked.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// Whether the counter set tracks zero processes.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// Records one operation by `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range for the tracked process count.
    pub fn record(&self, pid: ProcessId, op: OpKind) {
        let i = pid.get();
        // Relaxed throughout this type: the counters are diagnostics, not
        // part of the register semantics the proofs rely on — only the
        // eventual totals matter, and fetch_add is atomic per slot.
        match op {
            OpKind::Read => self.reads[i].fetch_add(1, Ordering::Relaxed),
            OpKind::Write => self.writes[i].fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Current counts for one process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range for the tracked process count.
    pub fn snapshot(&self, pid: ProcessId) -> OpSnapshot {
        let i = pid.get();
        OpSnapshot {
            reads: self.reads[i].load(Ordering::Relaxed),
            writes: self.writes[i].load(Ordering::Relaxed),
        }
    }

    /// Sum of counts over all processes.
    pub fn total(&self) -> OpSnapshot {
        let mut acc = OpSnapshot::default();
        for i in 0..self.len() {
            acc = acc + self.snapshot(ProcessId::new(i));
        }
        acc
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        for c in self.reads.iter().chain(self.writes.iter()) {
            c.store(0, Ordering::Relaxed);
        }
    }
}

impl fmt::Debug for OpCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpCounters")
            .field("processes", &self.len())
            .field("total", &self.total())
            .finish()
    }
}

/// A point-in-time reading of one process's (or the aggregate) operation
/// counts. Subtract two snapshots to get the cost of a code region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpSnapshot {
    /// Number of register reads.
    pub reads: u64,
    /// Number of register writes.
    pub writes: u64,
}

impl OpSnapshot {
    /// Total primitive operations (reads + writes).
    pub fn total(self) -> u64 {
        self.reads + self.writes
    }
}

impl Add for OpSnapshot {
    type Output = OpSnapshot;

    fn add(self, rhs: OpSnapshot) -> OpSnapshot {
        OpSnapshot {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
        }
    }
}

impl Sub for OpSnapshot {
    type Output = OpSnapshot;

    fn sub(self, rhs: OpSnapshot) -> OpSnapshot {
        OpSnapshot {
            reads: self.reads - rhs.reads,
            writes: self.writes - rhs.writes,
        }
    }
}

impl fmt::Display for OpSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}r+{}w", self.reads, self.writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_attributed_per_process() {
        let c = OpCounters::new(3);
        c.record(ProcessId::new(0), OpKind::Read);
        c.record(ProcessId::new(2), OpKind::Write);
        c.record(ProcessId::new(2), OpKind::Write);
        assert_eq!(c.snapshot(ProcessId::new(0)).reads, 1);
        assert_eq!(c.snapshot(ProcessId::new(1)).total(), 0);
        assert_eq!(c.snapshot(ProcessId::new(2)).writes, 2);
        assert_eq!(c.total().total(), 3);
    }

    #[test]
    fn snapshot_deltas_measure_regions() {
        let c = OpCounters::new(1);
        let p = ProcessId::new(0);
        c.record(p, OpKind::Read);
        let before = c.snapshot(p);
        c.record(p, OpKind::Read);
        c.record(p, OpKind::Write);
        let delta = c.snapshot(p) - before;
        assert_eq!(
            delta,
            OpSnapshot {
                reads: 1,
                writes: 1
            }
        );
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = OpCounters::new(2);
        c.record(ProcessId::new(1), OpKind::Read);
        c.reset();
        assert_eq!(c.total(), OpSnapshot::default());
    }

    #[test]
    fn counter_slots_are_cache_padded() {
        // The padding claim, asserted here as well as at compile time in
        // `pad.rs`: per-process counter slots occupy distinct lines.
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 128);
        let c = OpCounters::new(2);
        let a = &c.reads[0] as *const _ as usize;
        let b = &c.reads[1] as *const _ as usize;
        assert!(b.abs_diff(a) >= 128);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let c = OpCounters::new(4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = &c;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        c.record(ProcessId::new(t), OpKind::Read);
                    }
                });
            }
        });
        assert_eq!(c.total().reads, 4_000);
    }
}
