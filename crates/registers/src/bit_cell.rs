use std::sync::atomic::{AtomicBool, Ordering};

use crate::{ProcessId, Register};

/// A one-bit atomic register backed directly by an [`AtomicBool`].
///
/// The bounded algorithms (Figures 3 and 4 of the paper) communicate
/// through *handshake bits* `q_{i,j}` — single-writer, single-reader
/// boolean registers. A hardware atomic boolean implements that primitive
/// exactly, with no indirection.
///
/// # Example
///
/// ```
/// use snapshot_registers::{BitCell, ProcessId, Register};
///
/// let bit = BitCell::new(false);
/// bit.write(ProcessId::new(0), true);
/// assert!(bit.read(ProcessId::new(1)));
/// ```
#[derive(Debug, Default)]
pub struct BitCell {
    bit: AtomicBool,
}

impl BitCell {
    /// Creates a bit register holding `init`.
    pub fn new(init: bool) -> Self {
        BitCell {
            bit: AtomicBool::new(init),
        }
    }
}

impl Register<bool> for BitCell {
    // Memory-ordering audit: both accesses are SeqCst and must stay so.
    // The handshake arguments (PROOFS.md Lemma 4.1, proving Figure 3's
    // Observation 2 analogue) order a scanner's write of q_{i,j} against
    // the updater's read of p_{j,i} *and* against both parties' later
    // accesses to the data register r_j — three different memory
    // locations placed in one real-time total order. Acquire/Release only
    // constrains same-location access pairs and admits IRIW outcomes in
    // which two observers disagree about the order of two independent
    // writes; under such an outcome an updater could see the scanner's
    // handshake flip yet miss the collect it signals, voiding the lemma.
    // SeqCst membership in the single total order S is exactly the
    // "atomic register" premise the proofs import.
    fn read(&self, _reader: ProcessId) -> bool {
        self.bit.load(Ordering::SeqCst)
    }

    fn write(&self, _writer: ProcessId, value: bool) {
        self.bit.store(value, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flips_round_trip() {
        let bit = BitCell::new(false);
        let p = ProcessId::new(0);
        assert!(!bit.read(p));
        bit.write(p, true);
        assert!(bit.read(p));
        bit.write(p, false);
        assert!(!bit.read(p));
    }

    #[test]
    fn default_is_false() {
        assert!(!BitCell::default().read(ProcessId::new(0)));
    }
}
