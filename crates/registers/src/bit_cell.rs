use std::sync::atomic::{AtomicBool, Ordering};

use crate::{ProcessId, Register};

/// A one-bit atomic register backed directly by an [`AtomicBool`].
///
/// The bounded algorithms (Figures 3 and 4 of the paper) communicate
/// through *handshake bits* `q_{i,j}` — single-writer, single-reader
/// boolean registers. A hardware atomic boolean implements that primitive
/// exactly, with no indirection.
///
/// # Example
///
/// ```
/// use snapshot_registers::{BitCell, ProcessId, Register};
///
/// let bit = BitCell::new(false);
/// bit.write(ProcessId::new(0), true);
/// assert!(bit.read(ProcessId::new(1)));
/// ```
#[derive(Debug, Default)]
pub struct BitCell {
    bit: AtomicBool,
}

impl BitCell {
    /// Creates a bit register holding `init`.
    pub fn new(init: bool) -> Self {
        BitCell {
            bit: AtomicBool::new(init),
        }
    }
}

impl Register<bool> for BitCell {
    fn read(&self, _reader: ProcessId) -> bool {
        self.bit.load(Ordering::SeqCst)
    }

    fn write(&self, _writer: ProcessId, value: bool) {
        self.bit.store(value, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flips_round_trip() {
        let bit = BitCell::new(false);
        let p = ProcessId::new(0);
        assert!(!bit.read(p));
        bit.write(p, true);
        assert!(bit.read(p));
        bit.write(p, false);
        assert!(!bit.read(p));
    }

    #[test]
    fn default_is_false() {
        assert!(!BitCell::default().read(ProcessId::new(0)));
    }
}
